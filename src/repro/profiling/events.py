"""Structured profiling events and their tuple encodings.

The instrumentation layer observes rich machine events (loads with
addresses, branches with directions); the profiler consumes flat
tuples.  These records keep the rich form for analyses that want it and
define the canonical encodings of Section 3:

* value profiling: ``<load PC, loaded value>``
* edge profiling: ``<branch PC, target PC>``
* cache-miss profiling (a Section 2 motivation): ``<load PC, miss
  address>``
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tuples import EventKind, ProfileTuple, make_tuple


@dataclass(frozen=True)
class LoadEvent:
    """One committed load: where, from where, and what it read."""

    pc: int
    address: int
    value: int

    def value_tuple(self) -> ProfileTuple:
        """The value-profiling name ``<pc, value>``."""
        return make_tuple(self.pc, self.value)

    def address_tuple(self) -> ProfileTuple:
        """``<pc, address>`` -- the cache-miss-style name."""
        return make_tuple(self.pc, self.address)


@dataclass(frozen=True)
class BranchEvent:
    """One control transfer: branch PC, destination, and direction.

    ``taken`` is ``False`` only for a fall-through conditional branch;
    unconditional and indirect transfers are always taken.
    """

    pc: int
    target: int
    taken: bool

    def edge_tuple(self) -> ProfileTuple:
        """The edge-profiling name ``<branch pc, target pc>``.

        Fall-through edges are real edges too: the destination encodes
        the direction, so ``<pc, fallthrough>`` and ``<pc, taken>``
        are distinct tuples, matching edge-profile semantics.
        """
        return make_tuple(self.pc, self.target)


@dataclass(frozen=True)
class StoreEvent:
    """One committed store (not profiled by the paper; kept for
    extensions such as silent-store detection)."""

    pc: int
    address: int
    value: int

    def value_tuple(self) -> ProfileTuple:
        """``<pc, stored value>``."""
        return make_tuple(self.pc, self.value)


def tuple_for(kind: EventKind, event) -> ProfileTuple:
    """Encode a structured event as the tuple for *kind*.

    Raises :class:`TypeError` when the event cannot produce the
    requested kind (e.g. a branch event for value profiling).
    """
    if kind is EventKind.VALUE:
        if isinstance(event, (LoadEvent, StoreEvent)):
            return event.value_tuple()
        raise TypeError(f"value profiling needs load/store events, got "
                        f"{type(event).__name__}")
    if kind is EventKind.EDGE:
        if isinstance(event, BranchEvent):
            return event.edge_tuple()
        raise TypeError(f"edge profiling needs branch events, got "
                        f"{type(event).__name__}")
    if kind is EventKind.CACHE_MISS:
        if isinstance(event, LoadEvent):
            return event.address_tuple()
        raise TypeError(f"cache-miss profiling needs load events, got "
                        f"{type(event).__name__}")
    raise ValueError(f"unsupported event kind {kind!r}")
