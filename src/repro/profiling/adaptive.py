"""Adaptive profile-interval selection (Section 5.6.1's proposal).

The paper observes that different interval lengths suit different
programs -- m88ksim and vortex need long intervals to see their bursty
candidates, deltablue's coarse phases make very long intervals
unstable -- and suggests "one can potentially adaptively pick the
appropriate interval length for a given program".  This module
implements that proposal as a measurement-driven selector: candidate
lengths are scored by how *stable* their candidate sets are across
consecutive intervals, and the shortest length whose instability is
within a tolerance of the best is chosen (shorter intervals give a
more responsive profiler, the paper's "timely" goal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..workloads.analysis import candidate_variation, interval_statistics
from ..workloads.generators import TupleStreamGenerator


@dataclass(frozen=True)
class IntervalChoice:
    """Outcome of adaptive selection for one stream.

    ``mean_variation`` maps each candidate length to its mean
    consecutive-interval candidate variation (percent); ``selected``
    is the chosen length.
    """

    selected: int
    mean_variation: Dict[int, float]

    def variation_of(self, length: int) -> float:
        return self.mean_variation[length]


def select_interval_length(generator: TupleStreamGenerator,
                           lengths: Sequence[int],
                           threshold: float = 0.001,
                           intervals_per_length: int = 8,
                           tolerance: float = 5.0) -> IntervalChoice:
    """Choose a profile-interval length by candidate stability.

    Each candidate *length* is probed with *intervals_per_length*
    intervals (the generator is rewound between probes so every length
    sees the same stream prefix); its score is the mean percent
    candidate variation between consecutive intervals.  The shortest
    length whose score is within *tolerance* percentage points of the
    minimum wins -- responsiveness breaks ties.

    The candidate *threshold* is a fraction of the interval, matching
    the paper's percentage-of-interval-length definition.
    """
    if not lengths:
        raise ValueError("at least one candidate length is required")
    if intervals_per_length < 2:
        raise ValueError(
            f"need at least two intervals to measure variation, got "
            f"{intervals_per_length}")
    mean_variation: Dict[int, float] = {}
    for length in lengths:
        generator.reset()
        statistics = interval_statistics(generator, length,
                                         intervals_per_length,
                                         thresholds=(threshold,))
        variations = candidate_variation(
            statistics.candidate_sets[threshold])
        mean_variation[length] = (sum(variations) / len(variations)
                                  if variations else 0.0)
    generator.reset()
    best = min(mean_variation.values())
    for length in sorted(lengths):
        if mean_variation[length] <= best + tolerance:
            return IntervalChoice(selected=length,
                                  mean_variation=mean_variation)
    # Unreachable: the minimum itself always satisfies the bound.
    raise AssertionError("no candidate length satisfied its own minimum")
