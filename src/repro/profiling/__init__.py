"""Instrumentation and session driving."""

from .atom import EventLog, Instrumenter, trace_events
from .events import BranchEvent, LoadEvent, StoreEvent, tuple_for
from .session import (ProfilerResult, ProfilingSession, SessionFeeder,
                      SessionResult, profile_stream)

__all__ = [
    "BranchEvent",
    "EventLog",
    "Instrumenter",
    "LoadEvent",
    "ProfilerResult",
    "ProfilingSession",
    "SessionFeeder",
    "SessionResult",
    "StoreEvent",
    "profile_stream",
    "trace_events",
    "tuple_for",
]
