"""ATOM-like instrumentation over the SimpleAlpha machine.

The paper gathers its traces with ATOM, a binary-instrumentation tool
that inserts analysis callbacks at loads and branches.  This module
plays that role for our simulator: an :class:`Instrumenter` attaches to
a :class:`~repro.simulator.machine.Machine`'s hooks and either collects
structured events, streams profile tuples straight into a hardware
profiler, or records a replayable trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from ..core.base import HardwareProfiler
from ..core.tuples import EventKind, ProfileTuple, make_tuple
from ..simulator.machine import Machine
from ..simulator.program import Program
from ..workloads.traces import Trace
from .events import BranchEvent, LoadEvent, StoreEvent

#: Sink receiving each profile tuple as it is observed.
TupleSink = Callable[[ProfileTuple], None]


@dataclass
class EventLog:
    """Structured events collected from one instrumented run."""

    loads: List[LoadEvent] = field(default_factory=list)
    branches: List[BranchEvent] = field(default_factory=list)
    stores: List[StoreEvent] = field(default_factory=list)

    def tuples(self, kind: EventKind) -> List[ProfileTuple]:
        """Flatten the log into profile tuples for *kind*, in order."""
        if kind is EventKind.VALUE:
            return [event.value_tuple() for event in self.loads]
        if kind is EventKind.EDGE:
            return [event.edge_tuple() for event in self.branches]
        if kind is EventKind.CACHE_MISS:
            return [event.address_tuple() for event in self.loads]
        raise ValueError(f"unsupported event kind {kind!r}")


class Instrumenter:
    """Attach profiling observation to a machine, ATOM-style.

    Use :meth:`collect` for a full structured log, :meth:`stream_to`
    to drive a hardware profiler during execution (the pure-hardware
    deployment the paper proposes), or :func:`trace_events` for a
    compact replayable trace.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._detachers: List[Callable[[], None]] = []

    def on_load(self, hook: Callable[[LoadEvent], None]) -> None:
        """Invoke *hook* with a :class:`LoadEvent` at every load."""
        def adapter(pc: int, address: int, value: int) -> None:
            hook(LoadEvent(pc=pc, address=address, value=value))

        self.machine.load_hooks.append(adapter)
        self._detachers.append(
            lambda: self.machine.load_hooks.remove(adapter))

    def on_branch(self, hook: Callable[[BranchEvent], None]) -> None:
        """Invoke *hook* with a :class:`BranchEvent` at every transfer."""
        def adapter(pc: int, target: int, taken: bool) -> None:
            hook(BranchEvent(pc=pc, target=target, taken=taken))

        self.machine.branch_hooks.append(adapter)
        self._detachers.append(
            lambda: self.machine.branch_hooks.remove(adapter))

    def on_store(self, hook: Callable[[StoreEvent], None]) -> None:
        """Invoke *hook* with a :class:`StoreEvent` at every store."""
        def adapter(pc: int, address: int, value: int) -> None:
            hook(StoreEvent(pc=pc, address=address, value=value))

        self.machine.store_hooks.append(adapter)
        self._detachers.append(
            lambda: self.machine.store_hooks.remove(adapter))

    def detach(self) -> None:
        """Remove every hook this instrumenter installed."""
        for detacher in self._detachers:
            detacher()
        self._detachers.clear()

    def collect(self, max_instructions: int = 10_000_000) -> EventLog:
        """Run the machine to completion, logging structured events."""
        log = EventLog()
        self.on_load(log.loads.append)
        self.on_branch(log.branches.append)
        self.on_store(log.stores.append)
        try:
            self.machine.run(max_instructions)
        finally:
            self.detach()
        return log

    def stream_to(self, profiler: HardwareProfiler, kind: EventKind,
                  max_instructions: int = 10_000_000) -> HardwareProfiler:
        """Run the machine, feeding *profiler* tuples of *kind* live.

        This is the paper's deployment model: the profiler watches the
        pipeline's committed events directly, with no trace in between.
        Interval boundaries remain the caller's job (call
        ``profiler.end_interval()`` afterwards or segment with
        ``profiler.run`` over a trace for exact intervals).
        """
        if kind is EventKind.VALUE:
            self.on_load(lambda event: profiler.observe(
                make_tuple(event.pc, event.value)))
        elif kind is EventKind.EDGE:
            self.on_branch(lambda event: profiler.observe(
                make_tuple(event.pc, event.target)))
        elif kind is EventKind.CACHE_MISS:
            self.on_load(lambda event: profiler.observe(
                make_tuple(event.pc, event.address)))
        else:
            raise ValueError(f"unsupported event kind {kind!r}")
        try:
            self.machine.run(max_instructions)
        finally:
            self.detach()
        return profiler


def trace_events(program: Program, kind: EventKind,
                 max_instructions: int = 10_000_000) -> Trace:
    """Run *program* and record its profile tuples as a trace.

    The equivalent of an ATOM trace run: execute once, keep the tuple
    stream, replay it into as many profiler configurations as needed.
    """
    machine = Machine(program)
    pcs: List[int] = []
    values: List[int] = []

    def sink(event_tuple: ProfileTuple) -> None:
        pcs.append(event_tuple[0])
        values.append(event_tuple[1])

    instrumenter = Instrumenter(machine)
    if kind is EventKind.VALUE:
        instrumenter.on_load(lambda event: sink(event.value_tuple()))
    elif kind is EventKind.EDGE:
        instrumenter.on_branch(lambda event: sink(event.edge_tuple()))
    elif kind is EventKind.CACHE_MISS:
        instrumenter.on_load(lambda event: sink(event.address_tuple()))
    else:
        raise ValueError(f"unsupported event kind {kind!r}")
    try:
        machine.run(max_instructions)
    finally:
        instrumenter.detach()
    return Trace(pcs=np.array(pcs, dtype=np.uint64),
                 values=np.array(values, dtype=np.uint64),
                 kind=kind, source=f"simulator:{len(program)} insns")
