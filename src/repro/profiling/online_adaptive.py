"""Online adaptive interval-length control (Section 5.6.1, realized).

The paper observes that the right interval length is program-specific
and suggests adapting it at run time.  :mod:`repro.profiling.adaptive`
implements the *offline* selector; this module implements the *online*
mechanism: a wrapper around any interval profiler that watches the
candidate-set churn between consecutive intervals and adjusts the
interval length geometrically --

* churn above ``grow_threshold`` means candidates do not survive an
  interval (bursty behaviour, m88ksim-style): **lengthen** intervals to
  average the bursts out;
* churn below ``shrink_threshold`` for several consecutive intervals
  means behaviour is stable: **shorten** intervals for responsiveness
  (the paper's "timely" goal), down to the configured floor.

The controller needs only state the hardware already has (the previous
interval's accumulator contents), so it remains a pure-hardware
mechanism: a comparator over the retained candidate set and a shift of
the interval-length register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from ..core.base import HardwareProfiler, IntervalProfile
from ..core.config import IntervalSpec, ProfilerConfig
from ..core.multi_hash import build_profiler
from ..core.tuples import ProfileTuple


@dataclass(frozen=True)
class AdaptivePolicy:
    """Controller parameters for online interval adaptation."""

    min_length: int = 10_000
    max_length: int = 1_000_000
    grow_threshold: float = 40.0
    shrink_threshold: float = 10.0
    stable_intervals_to_shrink: int = 3
    scale_factor: int = 4

    def __post_init__(self) -> None:
        if self.min_length < 1 or self.max_length < self.min_length:
            raise ValueError(
                f"need 1 <= min_length <= max_length, got "
                f"{self.min_length}..{self.max_length}")
        if not 0 <= self.shrink_threshold < self.grow_threshold <= 100:
            raise ValueError(
                f"need 0 <= shrink < grow <= 100, got "
                f"{self.shrink_threshold} / {self.grow_threshold}")
        if self.scale_factor < 2:
            raise ValueError(f"scale_factor must be >= 2, got "
                             f"{self.scale_factor}")


@dataclass
class AdaptationEvent:
    """One controller decision, for inspection and tests."""

    at_interval: int
    churn: float
    old_length: int
    new_length: int


class OnlineAdaptiveProfiler:
    """Wrap a profiler configuration with interval-length control.

    The wrapped profiler is rebuilt whenever the length changes (its
    threshold *fraction* is preserved, so the accumulator bound is
    unchanged).  Candidate history carries across rebuilds through the
    churn measurement only -- exactly what retained accumulator state
    would give hardware.
    """

    def __init__(self, config: ProfilerConfig,
                 policy: AdaptivePolicy = AdaptivePolicy()) -> None:
        self.base_config = config
        self.policy = policy
        length = min(max(config.interval.length, policy.min_length),
                     policy.max_length)
        self._threshold = config.interval.threshold
        self.current_length = length
        self.profiler = self._build(length)
        self._previous: Optional[Set[ProfileTuple]] = None
        self._stable_streak = 0
        self._intervals = 0
        #: Every length change the controller made.
        self.adaptations: List[AdaptationEvent] = []
        self.profiles: List[IntervalProfile] = []

    def _build(self, length: int) -> HardwareProfiler:
        from dataclasses import replace

        config = replace(self.base_config,
                         interval=IntervalSpec(length, self._threshold))
        return build_profiler(config)

    def run(self, events: Iterable[ProfileTuple],
            max_intervals: Optional[int] = None) -> List[IntervalProfile]:
        """Consume *events*, adapting the interval length as it goes."""
        pending = 0
        for event in events:
            self.profiler.observe(event)
            pending += 1
            if pending < self.current_length:
                continue
            pending = 0
            self._finish_interval()
            if max_intervals is not None \
                    and self._intervals >= max_intervals:
                break
        return self.profiles

    def _finish_interval(self) -> None:
        profile = self.profiler.end_interval()
        self.profiles.append(profile)
        self._intervals += 1
        current = set(profile.candidates)
        if self._previous is not None:
            churn = _churn(self._previous, current)
            self._steer(churn)
        self._previous = current

    def _steer(self, churn: float) -> None:
        policy = self.policy
        if churn > policy.grow_threshold \
                and self.current_length < policy.max_length:
            self._resize(min(policy.max_length,
                             self.current_length * policy.scale_factor),
                         churn)
            self._stable_streak = 0
            return
        if churn < policy.shrink_threshold:
            self._stable_streak += 1
            if (self._stable_streak
                    >= policy.stable_intervals_to_shrink
                    and self.current_length > policy.min_length):
                self._resize(max(policy.min_length,
                                 self.current_length
                                 // policy.scale_factor), churn)
                self._stable_streak = 0
        else:
            self._stable_streak = 0

    def _resize(self, new_length: int, churn: float) -> None:
        if new_length == self.current_length:
            return
        self.adaptations.append(AdaptationEvent(
            at_interval=self._intervals, churn=churn,
            old_length=self.current_length, new_length=new_length))
        self.current_length = new_length
        self.profiler = self._build(new_length)
        # Candidate sets at different lengths are not comparable; start
        # the churn measurement fresh.
        self._previous = None


def _churn(previous: Set[ProfileTuple],
           current: Set[ProfileTuple]) -> float:
    union = previous | current
    if not union:
        return 0.0
    return 100.0 * len(previous ^ current) / len(union)
