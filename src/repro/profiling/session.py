"""Profiling sessions: one stream, many profilers, scored intervals.

A :class:`ProfilingSession` feeds a single event stream simultaneously
to any number of hardware profiler configurations, closes intervals in
lockstep, and scores each hardware profile against exact per-interval
ground truth with the paper's error metric.  Feeding all configurations
in one pass is how the design-space figures (7, 10-12) are produced
efficiently: the stream is generated once per benchmark, not once per
configuration.

Two execution paths produce identical results (tested):

* the **per-event path** accepts any iterable of tuples and runs a
  :class:`~repro.core.perfect.PerfectProfiler` alongside the hardware
  profilers;
* the **chunked path** accepts array-chunk sources (stream generators,
  traces), pre-hashes whole chunks vectorized, drives the profilers'
  ``observe_chunk`` fast loops, and derives ground truth per interval
  with one ``numpy.unique`` instead of a per-event dictionary.  This is
  roughly an order of magnitude faster and makes the paper's
  million-event intervals practical in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple, Union)

import numpy as np

from ..core.base import HardwareProfiler, IntervalProfile
from ..core.batched import BatchedKernelRunner
from ..core.config import IntervalSpec, ProfilerConfig
from ..core.hashing import TupleHashFunction
from ..core.multi_hash import MultiHashProfiler, build_profiler
from ..core.perfect import PerfectProfiler
from ..core.single_hash import SingleHashProfiler
from ..core.tuples import ProfileTuple
from ..metrics.error import ErrorSummary, interval_error
from ..workloads.generators import TupleStreamGenerator
from ..workloads.traces import Trace

ConfigOrProfiler = Union[ProfilerConfig, HardwareProfiler]

#: Events processed per vectorized chunk.
CHUNK_EVENTS = 1 << 16

#: Structured dtype giving tuples a total order for ``numpy.unique``.
_PAIR_DTYPE = np.dtype([("p", np.uint64), ("v", np.uint64)])


@dataclass
class ProfilerResult:
    """Everything recorded for one hardware profiler over a session."""

    name: str
    profiler: HardwareProfiler
    summary: ErrorSummary = field(default_factory=ErrorSummary)
    profiles: List[IntervalProfile] = field(default_factory=list)


@dataclass
class SessionResult:
    """Outcome of a profiling session.

    ``perfect_profiles`` holds the oracle's per-interval candidate
    reports; ``distinct_per_interval`` feeds the Figure 4 analysis;
    ``results`` holds each hardware profiler's scored run, keyed by
    profiler name.
    """

    interval: IntervalSpec
    results: Dict[str, ProfilerResult]
    perfect_profiles: List[IntervalProfile]
    distinct_per_interval: List[int]

    @property
    def candidate_sets(self) -> List[Set[ProfileTuple]]:
        """Per-interval perfect candidate sets (Figure 6 variation)."""
        return [set(profile.candidates) for profile in self.perfect_profiles]

    @property
    def candidates_per_interval(self) -> List[int]:
        """Per-interval perfect candidate counts (Figure 5)."""
        return [len(profile) for profile in self.perfect_profiles]

    def summary_of(self, name: str) -> ErrorSummary:
        return self.results[name].summary

    def single(self) -> ProfilerResult:
        """The sole result, for single-profiler sessions."""
        if len(self.results) != 1:
            raise ValueError(
                f"session has {len(self.results)} profilers; name one of: "
                f"{', '.join(self.results)}")
        return next(iter(self.results.values()))

    @property
    def summary(self) -> ErrorSummary:
        """Error summary of a single-profiler session."""
        return self.single().summary


class _TraceReader:
    """Chunk cursor over a recorded trace."""

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._cursor = 0

    def chunk(self, count: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        start, stop = self._cursor, self._cursor + count
        if stop > len(self._trace):
            return None
        self._cursor = stop
        return self._trace.pcs[start:stop], self._trace.values[start:stop]


class _GeneratorReader:
    """Chunk cursor over an endless stream generator."""

    def __init__(self, generator: TupleStreamGenerator) -> None:
        self._generator = generator

    def chunk(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._generator.chunk(count)


class ProfilingSession:
    """Drive one stream through profilers and score every interval.

    Parameters
    ----------
    profilers:
        One configuration/profiler or a sequence of them.  Configs are
        instantiated via :func:`~repro.core.multi_hash.build_profiler`.
        All profilers must share one interval spec (hardware intervals
        are a global event count, not per-structure).
    keep_profiles:
        Retain every per-interval :class:`IntervalProfile`.  Off by
        default to bound memory on long runs; error summaries are
        always kept.
    """

    def __init__(self,
                 profilers: Union[ConfigOrProfiler,
                                  Sequence[ConfigOrProfiler]],
                 keep_profiles: bool = False) -> None:
        if isinstance(profilers, (ProfilerConfig, HardwareProfiler)):
            profilers = [profilers]
        if not profilers:
            raise ValueError("at least one profiler is required")
        self.profilers: List[HardwareProfiler] = []
        for item in profilers:
            profiler = (build_profiler(item)
                        if isinstance(item, ProfilerConfig) else item)
            self.profilers.append(profiler)
        intervals = {p.interval for p in self.profilers}
        if len(intervals) != 1:
            raise ValueError(
                f"all profilers must share one interval spec, got "
                f"{sorted((i.length, i.threshold) for i in intervals)}")
        self.interval = self.profilers[0].interval
        self.keep_profiles = keep_profiles
        self._names = self._unique_names()

    def _unique_names(self) -> List[str]:
        names: List[str] = []
        seen: Dict[str, int] = {}
        for profiler in self.profilers:
            base = profiler.name
            ordinal = seen.get(base, 0)
            seen[base] = ordinal + 1
            names.append(base if ordinal == 0 else f"{base}#{ordinal}")
        return names

    def run(self,
            source: Union[Iterable[ProfileTuple], TupleStreamGenerator,
                          Trace],
            max_intervals: Optional[int] = None) -> SessionResult:
        """Profile *source* and return scored results.

        Stream generators and traces take the chunked fast path; any
        other iterable of tuples is consumed per event.  Chunked
        sources are recognized by a callable ``chunk`` attribute
        (:class:`TupleStreamGenerator`,
        :class:`~repro.workloads.scenarios.ScenarioStream`, ...); they
        are endless, so *max_intervals* is required for them.  Traces
        and iterables stop at exhaustion (a trailing partial interval
        is discarded -- the paper's metrics are defined over full
        intervals only).
        """
        if isinstance(source, Trace):
            limit = max_intervals
            available = len(source) // self.interval.length
            return self._run_chunked(
                _TraceReader(source),
                available if limit is None else min(limit, available))
        if callable(getattr(source, "chunk", None)):
            if max_intervals is None:
                raise ValueError(
                    "max_intervals is required for endless stream "
                    "generators")
            return self._run_chunked(_GeneratorReader(source),
                                     max_intervals)
        return self._run_events(source, max_intervals)

    # ------------------------------------------------------------------
    # Per-event path
    # ------------------------------------------------------------------

    def _run_events(self, events: Iterable[ProfileTuple],
                    max_intervals: Optional[int]) -> SessionResult:
        perfect = PerfectProfiler(self.interval)
        results = self._new_results()
        perfect_profiles: List[IntervalProfile] = []

        length = self.interval.length
        threshold = self.interval.threshold_count
        profilers = self.profilers
        pending = 0
        intervals_done = 0
        for event in events:
            perfect.observe(event)
            for profiler in profilers:
                profiler.observe(event)
            pending += 1
            if pending < length:
                continue
            pending = 0
            truth = perfect.interval_counts()
            perfect_profiles.append(perfect.end_interval())
            self._score_interval(results, truth, threshold)
            intervals_done += 1
            if max_intervals is not None and intervals_done >= max_intervals:
                break

        return SessionResult(
            interval=self.interval,
            results=results,
            perfect_profiles=perfect_profiles,
            distinct_per_interval=list(perfect.distinct_history),
        )

    # ------------------------------------------------------------------
    # Chunked path
    # ------------------------------------------------------------------

    def feeder(self) -> "SessionFeeder":
        """An incremental driver over this session's profilers.

        Used by long-running consumers (the profile service) that
        receive event batches over time instead of owning a finite
        source; :meth:`run` is itself implemented on top of it.
        """
        return SessionFeeder(self)

    def _run_chunked(self, reader, num_intervals: int) -> SessionResult:
        feeder = self.feeder()
        length = self.interval.length
        while feeder.intervals_completed < num_intervals:
            piece = reader.chunk(
                min(CHUNK_EVENTS, length - feeder.pending_events))
            if piece is None:
                break
            feeder.feed(*piece)
        return feeder.finish()

    @staticmethod
    def _hash_functions(profiler: HardwareProfiler
                        ) -> Optional[List[TupleHashFunction]]:
        """Hash functions to pre-compute for *profiler* (None = no
        vectorizable front end; its observe_chunk falls back)."""
        if isinstance(profiler, MultiHashProfiler):
            return profiler.hash_functions
        if isinstance(profiler, SingleHashProfiler):
            return [profiler.hash_function]
        return None

    # ------------------------------------------------------------------
    # Shared scoring
    # ------------------------------------------------------------------

    def _new_results(self) -> Dict[str, ProfilerResult]:
        return {name: ProfilerResult(name=name, profiler=profiler)
                for name, profiler in zip(self._names, self.profilers)}

    def _score_interval(self, results: Dict[str, ProfilerResult],
                        truth, threshold: int) -> None:
        for name, profiler in zip(self._names, self.profilers):
            profile = profiler.end_interval()
            true_counts = (truth if isinstance(truth, dict)
                           else truth.counts_for(profile))
            result = results[name]
            result.summary.add(
                interval_error(true_counts, profile, threshold))
            if self.keep_profiles:
                result.profiles.append(profile)


class SessionFeeder:
    """Incremental chunked driver for a :class:`ProfilingSession`.

    Accepts event batches of arbitrary size via :meth:`feed`, splits
    them at interval boundaries, drives every profiler's
    ``observe_chunk`` fast path with vectorized pre-hashing, and closes
    and scores an interval the moment its event count is reached --
    exactly the session's chunked path, but push- instead of
    pull-driven.  This is what a profile-service worker owns per
    stream: batches arrive over the wire over minutes or hours, and a
    consistent :class:`SessionResult` view is available at any time via
    :meth:`snapshot`.

    Equivalence guarantee (tested): feeding a stream in any batch
    partitioning yields results identical to ``session.run`` over the
    same events, because per-event observation order and interval
    boundaries are preserved regardless of how batches are split.
    """

    def __init__(self, session: ProfilingSession) -> None:
        self._session = session
        self._results = session._new_results()
        self._perfect_profiles: List[IntervalProfile] = []
        self._distinct: List[int] = []
        self._functions = [session._hash_functions(profiler)
                           for profiler in session.profilers]
        #: Folds chunks of every ``backend="batched"`` profiler -- of
        #: this feeder, and of any other feeder sharing the runner via
        #: :func:`feed_many` -- into one kernel dispatch per piece.
        self.runner = BatchedKernelRunner()
        self._pieces: List[Tuple[np.ndarray, np.ndarray]] = []
        self._pending = 0
        self._intervals = 0
        self.events_fed = 0

    @property
    def interval(self) -> IntervalSpec:
        return self._session.interval

    @property
    def pending_events(self) -> int:
        """Events observed in the currently-open interval."""
        return self._pending

    @property
    def intervals_completed(self) -> int:
        return self._intervals

    def feed(self, pcs: np.ndarray, values: np.ndarray) -> int:
        """Feed one batch of events; returns intervals closed by it.

        The arrays must be parallel 1-D ``uint64`` PC/value arrays (any
        integer dtype is coerced).  Batches may be any size: a batch
        smaller than an interval leaves the interval open, a larger one
        closes several intervals.
        """
        pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if pcs.shape != values.shape or pcs.ndim != 1:
            raise ValueError(
                f"batch arrays must be parallel and 1-D, got shapes "
                f"{pcs.shape} vs {values.shape}")
        length = self.interval.length
        closed = 0
        offset = 0
        total = len(pcs)
        while offset < total:
            take = min(total - offset, length - self._pending)
            self._observe_piece(pcs[offset:offset + take],
                                values[offset:offset + take])
            offset += take
            if self._pending == length:
                self._close_interval(length)
                closed += 1
        return closed

    def _observe_piece(self, pcs: np.ndarray, values: np.ndarray) -> None:
        requests = self._piece_requests(pcs, values)
        if requests:
            self.runner.dispatch(requests)
        self._account_piece(pcs, values)

    def _piece_requests(self, pcs: np.ndarray, values: np.ndarray
                        ) -> List[Tuple[HardwareProfiler,
                                        np.ndarray, np.ndarray]]:
        """Feed every non-batched profiler; return the batch requests.

        Profilers flagged ``batched_dispatch`` are *not* fed here --
        their ``(profiler, pcs, values)`` requests are returned so the
        caller can fold them (with other tenants' requests, see
        :func:`feed_many`) into one
        :meth:`BatchedKernelRunner.dispatch`.
        """
        requests: List[Tuple[HardwareProfiler,
                             np.ndarray, np.ndarray]] = []
        events = None
        for profiler, functions in zip(self._session.profilers,
                                       self._functions):
            if profiler.batched_dispatch:
                requests.append((profiler, pcs, values))
                continue
            if profiler.supports_array_chunks:
                # Kernel-backed profilers consume the arrays natively;
                # no per-event tuple list is ever materialized.
                profiler.observe_array_chunk(pcs, values)
                continue
            if events is None:
                events = list(zip(pcs.tolist(), values.tolist()))
            if functions is None:
                profiler.observe_chunk(events, None)
            else:
                index_lists = [function.index_array(pcs, values).tolist()
                               for function in functions]
                profiler.observe_chunk(events, index_lists)
        return requests

    def _account_piece(self, pcs: np.ndarray, values: np.ndarray) -> None:
        """Record a fully-observed piece in the interval bookkeeping."""
        self._pieces.append((pcs, values))
        self._pending += len(pcs)
        self.events_fed += len(pcs)

    def _close_interval(self, events_observed: int) -> None:
        threshold = self.interval.threshold_count
        truth, distinct = _interval_truth(self._pieces, threshold)
        self._distinct.append(distinct)
        self._perfect_profiles.append(IntervalProfile(
            index=self._intervals,
            candidates=truth.candidates,
            events_observed=events_observed))
        self._session._score_interval(self._results, truth, threshold)
        self._pieces = []
        self._pending = 0
        self._intervals += 1

    def flush(self) -> bool:
        """Close the open interval early, if any events are pending.

        The flushed interval is scored against exact truth over its
        partial event count, with the full interval's candidate
        threshold (``events_observed`` records the true size).  Used on
        stream close / graceful server shutdown so trailing events are
        reported rather than silently dropped.  Returns whether an
        interval was flushed.
        """
        if not self._pending:
            return False
        self._close_interval(self._pending)
        return True

    def snapshot(self) -> SessionResult:
        """Current results over all *completed* intervals.

        The returned object shares state with the feeder; treat it as
        a read-only view.
        """
        return SessionResult(
            interval=self.interval,
            results=self._results,
            perfect_profiles=self._perfect_profiles,
            distinct_per_interval=self._distinct,
        )

    def finish(self, flush_partial: bool = False) -> SessionResult:
        """Stop feeding and return the final results.

        With ``flush_partial`` the open interval (if any) is closed and
        scored; otherwise trailing events are discarded, matching
        :meth:`ProfilingSession.run` (the paper's metrics are defined
        over full intervals only).
        """
        if flush_partial:
            self.flush()
        else:
            self._pieces = []
            self._pending = 0
        return self.snapshot()

    def trim(self, max_profiles: int) -> None:
        """Bound memory on endless streams: keep only the most recent
        *max_profiles* per-interval profiles (error summaries still
        cover every interval)."""
        if max_profiles < 0:
            raise ValueError(f"max_profiles must be >= 0, "
                             f"got {max_profiles}")
        del self._perfect_profiles[:max(
            0, len(self._perfect_profiles) - max_profiles)]
        for result in self._results.values():
            del result.profiles[:max(0, len(result.profiles)
                                     - max_profiles)]


def feed_many(items: Sequence[Tuple["SessionFeeder",
                                    np.ndarray, np.ndarray]],
              runner: Optional[BatchedKernelRunner] = None) -> List[int]:
    """Feed one batch into each of several feeders, folding dispatches.

    *items* holds ``(feeder, pcs, values)`` triples -- one pending
    batch per feeder (stream).  Equivalent to calling
    ``feeder.feed(pcs, values)`` on each in turn (the feeders'
    split-invariance guarantee makes per-stream results independent of
    how other streams interleave), but all ``backend="batched"``
    profilers across *all* feeders are folded into one
    :meth:`BatchedKernelRunner.dispatch` per round instead of one per
    feeder.  This is the profile service's per-shard fold: a worker
    holding batches for many streams pays one kernel dispatch chain
    per tick, not one per session.

    Rounds advance every feeder at most one interval-bounded piece at
    a time so chunks never span an interval boundary (the kernels'
    documented precondition).  Returns the number of intervals each
    item's batch closed, in *items* order.

    A *runner* may be shared across calls to keep cumulative dispatch
    counters; by default each call uses a fresh one.
    """
    if runner is None:
        runner = BatchedKernelRunner()
    if len({id(feeder) for feeder, _, _ in items}) != len(items):
        # One item per feeder: interval splits are computed per round,
        # so a feeder's second batch must be concatenated into its
        # first (split-invariance makes that equivalent), not listed.
        raise ValueError("feed_many requires at most one batch per "
                         "feeder; concatenate per-stream batches first")
    batches = []
    for feeder, pcs, values in items:
        pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if pcs.shape != values.shape or pcs.ndim != 1:
            raise ValueError(
                f"batch arrays must be parallel and 1-D, got shapes "
                f"{pcs.shape} vs {values.shape}")
        batches.append((feeder, pcs, values))
    closed = [0] * len(batches)
    offsets = [0] * len(batches)
    while True:
        requests: List[Tuple[HardwareProfiler,
                             np.ndarray, np.ndarray]] = []
        round_pieces = []
        for position, (feeder, pcs, values) in enumerate(batches):
            offset = offsets[position]
            if offset >= len(pcs):
                continue
            take = min(len(pcs) - offset,
                       feeder.interval.length - feeder.pending_events)
            piece = (pcs[offset:offset + take],
                     values[offset:offset + take])
            offsets[position] = offset + take
            requests.extend(feeder._piece_requests(*piece))
            round_pieces.append((position, feeder, piece))
        if not round_pieces:
            return closed
        if requests:
            runner.dispatch(requests)
        for position, feeder, piece in round_pieces:
            feeder._account_piece(*piece)
            if feeder.pending_events == feeder.interval.length:
                feeder._close_interval(feeder.interval.length)
                closed[position] += 1


class _IntervalTruth:
    """Ground truth for one interval, backed by sorted unique arrays.

    ``candidates`` maps every above-threshold tuple to its exact count;
    :meth:`counts_for` extends that with the true (sub-threshold)
    counts of whatever tuples a hardware profile reported, which is all
    the error metric ever looks up.
    """

    def __init__(self, unique: np.ndarray, counts: np.ndarray,
                 threshold: int) -> None:
        self._unique = unique
        self._counts = counts
        over = counts >= threshold
        self.candidates: Dict[ProfileTuple, int] = {
            (int(pair["p"]), int(pair["v"])): int(count)
            for pair, count in zip(unique[over], counts[over])}

    def lookup(self, event: ProfileTuple) -> int:
        """Exact count of *event* in the interval (0 if absent)."""
        key = np.zeros((), dtype=_PAIR_DTYPE)
        key["p"], key["v"] = event
        position = int(np.searchsorted(self._unique, key))
        if (position < len(self._unique)
                and self._unique[position] == key):
            return int(self._counts[position])
        return 0

    def counts_for(self, profile: IntervalProfile
                   ) -> Dict[ProfileTuple, int]:
        """True counts covering the error metric's candidate universe."""
        true_counts = dict(self.candidates)
        for event in profile.candidates:
            if event not in true_counts:
                true_counts[event] = self.lookup(event)
        return true_counts


def _interval_truth(pieces: List[Tuple[np.ndarray, np.ndarray]],
                    threshold: int) -> Tuple[_IntervalTruth, int]:
    """Exact per-interval counting via one sort (``numpy.unique``)."""
    total = sum(len(pcs) for pcs, _ in pieces)
    structured = np.empty(total, dtype=_PAIR_DTYPE)
    cursor = 0
    for pcs, values in pieces:
        structured["p"][cursor:cursor + len(pcs)] = pcs
        structured["v"][cursor:cursor + len(pcs)] = values
        cursor += len(pcs)
    unique, counts = np.unique(structured, return_counts=True)
    return _IntervalTruth(unique, counts, threshold), len(unique)


def profile_stream(config: ProfilerConfig,
                   source,
                   max_intervals: Optional[int] = None) -> SessionResult:
    """One-shot convenience: profile *source* under one configuration."""
    return ProfilingSession(config).run(source, max_intervals=max_intervals)
