"""SimpleAlpha: the ISA, assembler, machine and synthetic programs.

This package is the substitute for the paper's DEC Alpha + ATOM
testbed: programs run on :class:`~repro.simulator.machine.Machine`,
whose load/branch hooks feed the instrumentation layer in
:mod:`repro.profiling.atom`.
"""

from .assembler import AssemblyError, assemble
from .isa import (CONDITIONAL_OPCODES, CONTROL_OPCODES, INSTRUCTION_BYTES,
                  LINK_REGISTER, NUM_REGISTERS, WORD_MASK, Instruction,
                  Opcode)
from .machine import Machine, MachineFault, MachineState
from .memory import Memory
from .program import Program
from .branch_predictor import GSharePredictor, PredictorStats, TwoBitPredictor
from .cache import (CacheConfig, CachedMachineMemory, CacheStats,
                    SetAssociativeCache)
from .synth import (dispatch_program, dispatch_source, mixed_program,
                    mixed_source, regional_program, regional_source,
                    skewed_values, value_locality_program,
                    value_locality_source)

__all__ = [
    "CacheConfig",
    "CachedMachineMemory",
    "CacheStats",
    "GSharePredictor",
    "PredictorStats",
    "SetAssociativeCache",
    "TwoBitPredictor",
    "AssemblyError",
    "CONDITIONAL_OPCODES",
    "CONTROL_OPCODES",
    "INSTRUCTION_BYTES",
    "Instruction",
    "LINK_REGISTER",
    "Machine",
    "MachineFault",
    "MachineState",
    "Memory",
    "NUM_REGISTERS",
    "Opcode",
    "Program",
    "WORD_MASK",
    "assemble",
    "dispatch_program",
    "dispatch_source",
    "mixed_program",
    "mixed_source",
    "regional_program",
    "regional_source",
    "skewed_values",
    "value_locality_program",
    "value_locality_source",
]
