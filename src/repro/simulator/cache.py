"""Set-associative data-cache model.

Substrate for the cache-oriented motivations of Section 2 (cache
replacement, prefetching): classifies each load as hit or miss so the
profiler can be fed ``<load PC, miss address>`` tuples, and hosts the
prefetch client (:mod:`repro.clients.prefetch`) that consumes the
resulting profile.  LRU replacement, word-addressed lines, optional
next-line allocation on prefetch requests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache: ``sets x ways`` lines of ``line_words``."""

    sets: int = 64
    ways: int = 2
    line_words: int = 8

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError(f"sets must be a positive power of two, "
                             f"got {self.sets}")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")
        if self.line_words <= 0 or self.line_words & (self.line_words - 1):
            raise ValueError(f"line_words must be a positive power of "
                             f"two, got {self.line_words}")

    @property
    def total_lines(self) -> int:
        return self.sets * self.ways

    @property
    def capacity_words(self) -> int:
        return self.total_lines * self.line_words


@dataclass
class CacheStats:
    """Access accounting, split by demand and prefetch traffic."""

    accesses: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched lines that served a later demand hit."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued


class SetAssociativeCache:
    """An LRU set-associative cache of 64-bit words.

    Lines are tracked by line number (``address // line_words``); the
    model holds no data, only presence, which is all hit/miss
    classification needs.
    """

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        # One LRU-ordered {line_number: was_prefetched} map per set.
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(config.sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> Tuple[int, OrderedDict]:
        line_number = address // self.config.line_words
        return line_number, self._sets[line_number % self.config.sets]

    def access(self, address: int) -> bool:
        """One demand access; returns ``True`` on a miss (and fills)."""
        self.stats.accesses += 1
        line_number, ways = self._locate(address)
        if line_number in ways:
            if ways[line_number]:
                # First demand touch of a prefetched line.
                self.stats.prefetch_hits += 1
                ways[line_number] = False
            ways.move_to_end(line_number)
            return False
        self.stats.misses += 1
        self._fill(ways, line_number, prefetched=False)
        return True

    def prefetch(self, address: int) -> bool:
        """Bring a line in ahead of demand; returns ``True`` if it was
        absent (a useful issue)."""
        line_number, ways = self._locate(address)
        if line_number in ways:
            return False
        self.stats.prefetches_issued += 1
        self._fill(ways, line_number, prefetched=True)
        return True

    def _fill(self, ways: OrderedDict, line_number: int,
              prefetched: bool) -> None:
        if len(ways) >= self.config.ways:
            ways.popitem(last=False)  # evict LRU
        ways[line_number] = prefetched

    def contains(self, address: int) -> bool:
        """Presence check without side effects (diagnostic)."""
        line_number, ways = self._locate(address)
        return line_number in ways

    def flush(self) -> None:
        """Invalidate every line (statistics are preserved)."""
        for ways in self._sets:
            ways.clear()

    def line_address(self, address: int) -> int:
        """The first word address of *address*'s line (the natural
        second tuple member for miss profiling)."""
        words = self.config.line_words
        return (address // words) * words


class CachedMachineMemory:
    """Attach a cache model to a running machine's loads.

    Registers a load hook on *machine* that classifies every load and
    invokes *on_miss* (if given) with the structured miss information.
    The machine's architectural memory is unaffected -- the cache is a
    performance model, exactly like the paper's decoupled profiling
    hardware.
    """

    def __init__(self, machine, cache: Optional[SetAssociativeCache] = None,
                 on_miss=None) -> None:
        self.machine = machine
        self.cache = cache or SetAssociativeCache()
        self.on_miss = on_miss
        self.miss_pcs: Dict[int, int] = {}
        machine.load_hooks.append(self._observe)

    def _observe(self, pc: int, address: int, value: int) -> None:
        if self.cache.access(address):
            self.miss_pcs[pc] = self.miss_pcs.get(pc, 0) + 1
            if self.on_miss is not None:
                self.on_miss(pc, address, value)

    def detach(self) -> None:
        self.machine.load_hooks.remove(self._observe)
