"""Two-pass assembler for SimpleAlpha source text.

Syntax, one statement per line::

    ; full-line or trailing comments with ';'
    label:                      ; labels stand alone or prefix a line
    loop: add r1, r2, r3
          ld   r4, r2, 8        ; rd, base, displacement
          beqz r4, done         ; branch targets may be labels
          ldi  r5, table        ; immediates may be labels (addresses)
          br   loop
    done: halt

    .data table 5, 6, 7         ; words at the next data address
    .base 0x2000                ; code base (default 0x1000)
    .dbase 0x100000             ; data base (default 0x10_0000)

Pass one collects label addresses (code labels get PCs, ``.data``
labels get word addresses); pass two encodes instructions, resolving
label immediates.  Errors carry the offending line number and text.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .isa import (INSTRUCTION_BYTES, NUM_REGISTERS, OPERAND_SHAPES,
                  Instruction, Opcode)
from .program import Program

#: Default address of the first data word.
DEFAULT_DATA_BASE = 0x10_0000

_LABEL_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REGISTER_PATTERN = re.compile(r"^r([0-9]+)$")

_MNEMONICS = {opcode.value: opcode for opcode in Opcode}


class AssemblyError(ValueError):
    """A source error, annotated with line number and text."""

    def __init__(self, line_number: int, line: str, message: str) -> None:
        super().__init__(f"line {line_number}: {message} -- {line.strip()!r}")
        self.line_number = line_number
        self.line = line


def assemble(source: str, code_base: int = 0x1000) -> Program:
    """Assemble *source* into a :class:`~repro.simulator.program.Program`."""
    statements = _parse(source)
    code_base, data_base = _scan_directives(statements, code_base)
    symbols = _collect_symbols(statements, code_base, data_base)
    instructions: List[Instruction] = []
    data: Dict[int, int] = {}
    data_cursor = data_base
    for statement in statements:
        kind = statement["kind"]
        if kind == "instruction":
            instructions.append(_encode(statement, symbols))
        elif kind == "data":
            for value in statement["values"]:
                data[data_cursor] = _resolve(value, symbols, statement)
                data_cursor += 1
    if not instructions:
        raise AssemblyError(0, "", "program has no instructions")
    return Program(instructions=instructions, data=data, symbols=symbols,
                   code_base=code_base)


def _parse(source: str) -> List[dict]:
    """Split source into labelled statements (labels, code, data)."""
    statements: List[dict] = []
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while True:
            head, colon, rest = line.partition(":")
            if colon and _LABEL_PATTERN.match(head.strip()):
                statements.append({"kind": "label",
                                   "name": head.strip(),
                                   "line_number": line_number,
                                   "line": raw})
                line = rest.strip()
                if not line:
                    break
                continue
            break
        if not line:
            continue
        if line.startswith("."):
            statements.append(_parse_directive(line, line_number, raw))
        else:
            statements.append(_parse_instruction(line, line_number, raw))
    return statements


def _parse_directive(line: str, line_number: int, raw: str) -> dict:
    parts = line.split(None, 1)
    directive = parts[0]
    body = parts[1] if len(parts) > 1 else ""
    if directive == ".data":
        pieces = body.split(None, 1)
        if len(pieces) != 2:
            raise AssemblyError(line_number, raw,
                                ".data needs a label and at least one value")
        name, values_text = pieces
        if not _LABEL_PATTERN.match(name):
            raise AssemblyError(line_number, raw,
                                f"bad data label {name!r}")
        values = [value.strip() for value in values_text.split(",")]
        if not all(values):
            raise AssemblyError(line_number, raw, "empty data value")
        return {"kind": "data", "name": name, "values": values,
                "line_number": line_number, "line": raw}
    if directive in (".base", ".dbase"):
        try:
            address = int(body.strip(), 0)
        except ValueError:
            raise AssemblyError(line_number, raw,
                                f"bad address for {directive}") from None
        return {"kind": directive[1:], "address": address,
                "line_number": line_number, "line": raw}
    raise AssemblyError(line_number, raw,
                        f"unknown directive {directive!r}")


def _parse_instruction(line: str, line_number: int, raw: str) -> dict:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    opcode = _MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AssemblyError(line_number, raw,
                            f"unknown mnemonic {mnemonic!r}")
    operands = ([operand.strip() for operand in parts[1].split(",")]
                if len(parts) > 1 else [])
    if operands and not all(operands):
        raise AssemblyError(line_number, raw, "empty operand")
    return {"kind": "instruction", "opcode": opcode, "operands": operands,
            "line_number": line_number, "line": raw}


def _scan_directives(statements: List[dict],
                     code_base: int) -> Tuple[int, int]:
    data_base = DEFAULT_DATA_BASE
    for statement in statements:
        if statement["kind"] == "base":
            code_base = statement["address"]
        elif statement["kind"] == "dbase":
            data_base = statement["address"]
    return code_base, data_base


def _collect_symbols(statements: List[dict], code_base: int,
                     data_base: int) -> Dict[str, int]:
    symbols: Dict[str, int] = {}
    pc = code_base
    data_cursor = data_base
    pending_labels: List[dict] = []
    for statement in statements:
        kind = statement["kind"]
        if kind == "label":
            pending_labels.append(statement)
        elif kind == "instruction":
            for label in pending_labels:
                _define(symbols, label, pc)
            pending_labels.clear()
            pc += INSTRUCTION_BYTES
        elif kind == "data":
            for label in pending_labels:
                _define(symbols, label, data_cursor)
            pending_labels.clear()
            _define(symbols, statement, data_cursor)
            data_cursor += len(statement["values"])
    for label in pending_labels:
        # Trailing labels point one past the last instruction.
        _define(symbols, label, pc)
    return symbols


def _define(symbols: Dict[str, int], statement: dict, address: int) -> None:
    name = statement["name"]
    if name in symbols:
        raise AssemblyError(statement["line_number"], statement["line"],
                            f"duplicate label {name!r}")
    symbols[name] = address


def _encode(statement: dict, symbols: Dict[str, int]) -> Instruction:
    opcode: Opcode = statement["opcode"]
    num_registers, has_immediate = OPERAND_SHAPES[opcode]
    operands: List[str] = statement["operands"]
    expected = num_registers + (1 if has_immediate else 0)
    if len(operands) != expected:
        raise AssemblyError(
            statement["line_number"], statement["line"],
            f"{opcode.value} takes {expected} operand(s), got "
            f"{len(operands)}")
    registers = tuple(_register(operand, statement)
                      for operand in operands[:num_registers])
    immediate: Optional[int] = None
    if has_immediate:
        immediate = _resolve(operands[-1], symbols, statement)
    return Instruction(opcode=opcode, registers=registers,
                       immediate=immediate)


def _register(text: str, statement: dict) -> int:
    match = _REGISTER_PATTERN.match(text)
    if not match:
        raise AssemblyError(statement["line_number"], statement["line"],
                            f"expected a register, got {text!r}")
    number = int(match.group(1))
    if number >= NUM_REGISTERS:
        raise AssemblyError(statement["line_number"], statement["line"],
                            f"register r{number} out of range")
    return number


def _resolve(text: str, symbols: Dict[str, int], statement: dict) -> int:
    if _LABEL_PATTERN.match(text):
        if text in symbols:
            return symbols[text]
        raise AssemblyError(statement["line_number"], statement["line"],
                            f"undefined label {text!r}")
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(statement["line_number"], statement["line"],
                            f"bad immediate {text!r}") from None
