"""The SimpleAlpha instruction set.

A compact 64-bit register machine standing in for the paper's DEC Alpha
testbed.  It is deliberately small but complete enough to write real
programs: 32 general registers, word-addressed memory, ALU ops,
loads/stores with displacement, conditional branches, direct and
indirect jumps, and call/return through a link register -- everything
the instrumentation layer needs to observe load values and branch edges
(the paper's two profiled event kinds).

Instructions are fixed four-byte words; PCs therefore advance by
:data:`INSTRUCTION_BYTES` and branch targets are instruction addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

#: Number of general-purpose registers (r0-r31).
NUM_REGISTERS = 32

#: Link register used by CALL/RET.
LINK_REGISTER = 31

#: Bytes per instruction; PCs step by this.
INSTRUCTION_BYTES = 4

#: Register width; all arithmetic wraps modulo 2**64.
WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class Opcode(enum.Enum):
    """Every SimpleAlpha operation."""

    # ALU register-register: rd <- ra OP rb
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMPLT = "cmplt"  # rd <- 1 if ra < rb else 0 (unsigned)
    CMPEQ = "cmpeq"
    # ALU register-immediate: rd <- ra OP imm
    ADDI = "addi"
    MULI = "muli"
    ANDI = "andi"
    XORI = "xori"
    # Constant load: rd <- imm
    LDI = "ldi"
    # Memory: LD rd, ra, imm  /  ST rs, ra, imm  (address = ra + imm)
    LD = "ld"
    ST = "st"
    # Control flow
    BEQZ = "beqz"  # if ra == 0 jump to imm
    BNEZ = "bnez"  # if ra != 0 jump to imm
    BR = "br"      # unconditional direct jump to imm
    JR = "jr"      # indirect jump to address in ra
    CALL = "call"  # r31 <- return pc; jump to imm
    RET = "ret"    # jump to address in r31
    # Misc
    NOP = "nop"
    HALT = "halt"


#: Opcodes that terminate basic blocks (all transfers of control).
CONTROL_OPCODES = frozenset({
    Opcode.BEQZ, Opcode.BNEZ, Opcode.BR, Opcode.JR, Opcode.CALL,
    Opcode.RET, Opcode.HALT,
})

#: Conditional branches (profiled as edges when taken or fall-through).
CONDITIONAL_OPCODES = frozenset({Opcode.BEQZ, Opcode.BNEZ})

#: Operand shape per opcode: (num_registers, has_immediate).
OPERAND_SHAPES = {
    Opcode.ADD: (3, False), Opcode.SUB: (3, False),
    Opcode.MUL: (3, False), Opcode.AND: (3, False),
    Opcode.OR: (3, False), Opcode.XOR: (3, False),
    Opcode.SHL: (3, False), Opcode.SHR: (3, False),
    Opcode.CMPLT: (3, False), Opcode.CMPEQ: (3, False),
    Opcode.ADDI: (2, True), Opcode.MULI: (2, True),
    Opcode.ANDI: (2, True), Opcode.XORI: (2, True),
    Opcode.LDI: (1, True),
    Opcode.LD: (2, True), Opcode.ST: (2, True),
    Opcode.BEQZ: (1, True), Opcode.BNEZ: (1, True),
    Opcode.BR: (0, True), Opcode.JR: (1, False),
    Opcode.CALL: (0, True), Opcode.RET: (0, False),
    Opcode.NOP: (0, False), Opcode.HALT: (0, False),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``registers`` holds the register operands in opcode order (for
    three-operand ALU ops: destination, source a, source b; for LD:
    destination, base; for ST: source, base).  ``immediate`` is the
    constant / displacement / branch target when the shape has one.
    """

    opcode: Opcode
    registers: Tuple[int, ...] = ()
    immediate: Optional[int] = None

    def __post_init__(self) -> None:
        shape = OPERAND_SHAPES[self.opcode]
        num_registers, has_immediate = shape
        if len(self.registers) != num_registers:
            raise ValueError(
                f"{self.opcode.value} takes {num_registers} register "
                f"operand(s), got {len(self.registers)}")
        for register in self.registers:
            if not 0 <= register < NUM_REGISTERS:
                raise ValueError(
                    f"register r{register} out of range 0..{NUM_REGISTERS - 1}")
        if has_immediate and self.immediate is None:
            raise ValueError(f"{self.opcode.value} requires an immediate")
        if not has_immediate and self.immediate is not None:
            raise ValueError(
                f"{self.opcode.value} takes no immediate, got "
                f"{self.immediate}")

    @property
    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPCODES

    @property
    def is_conditional(self) -> bool:
        return self.opcode in CONDITIONAL_OPCODES

    def render(self) -> str:
        """Assembler-syntax rendering of the instruction."""
        parts = [self.opcode.value]
        operands = [f"r{register}" for register in self.registers]
        if self.immediate is not None:
            operands.append(str(self.immediate))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
