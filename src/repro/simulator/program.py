"""Program container: instructions plus an initial data image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .isa import INSTRUCTION_BYTES, Instruction


@dataclass
class Program:
    """An assembled SimpleAlpha program.

    ``instructions[i]`` lives at PC ``code_base + i * INSTRUCTION_BYTES``.
    ``data`` is the initial memory image (word address -> value);
    ``symbols`` maps labels (code and data) to their addresses for
    debugging and for tests that need to locate program points.
    """

    instructions: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    code_base: int = 0x1000

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("a program needs at least one instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def entry_point(self) -> int:
        """PC of the first instruction."""
        return self.code_base

    @property
    def end_pc(self) -> int:
        """PC one past the last instruction."""
        return self.code_base + len(self.instructions) * INSTRUCTION_BYTES

    def pc_of(self, index: int) -> int:
        """PC of instruction *index*."""
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"instruction index {index} out of range "
                             f"0..{len(self.instructions) - 1}")
        return self.code_base + index * INSTRUCTION_BYTES

    def fetch(self, pc: int) -> Instruction:
        """Decode the instruction at *pc*.

        Raises :class:`ValueError` for PCs outside the code segment or
        not aligned to an instruction boundary -- the simulated machine
        treats both as a fatal fetch fault.
        """
        offset = pc - self.code_base
        if offset < 0 or pc >= self.end_pc:
            raise ValueError(
                f"fetch fault: pc {pc:#x} outside code segment "
                f"[{self.code_base:#x}, {self.end_pc:#x})")
        index, remainder = divmod(offset, INSTRUCTION_BYTES)
        if remainder:
            raise ValueError(f"fetch fault: pc {pc:#x} is misaligned")
        return self.instructions[index]

    def address_of(self, label: str) -> int:
        """Address of a label, failing with the known labels listed."""
        try:
            return self.symbols[label]
        except KeyError:
            known = ", ".join(sorted(self.symbols)) or "(none)"
            raise KeyError(f"unknown label {label!r}; known: {known}") \
                from None

    def listing(self) -> str:
        """Human-readable disassembly with addresses and labels."""
        by_address: Dict[int, List[str]] = {}
        for label, address in self.symbols.items():
            by_address.setdefault(address, []).append(label)
        lines = []
        for index, instruction in enumerate(self.instructions):
            pc = self.pc_of(index)
            for label in sorted(by_address.get(pc, ())):
                lines.append(f"{label}:")
            lines.append(f"  {pc:#08x}  {instruction.render()}")
        return "\n".join(lines)
