"""The SimpleAlpha interpreter with observation hooks.

The machine is observable in exactly the way ATOM instruments binaries:
callbacks fire on committed loads (with PC, address and loaded value),
on control transfers (with branch PC, target and direction) and on
stores.  The profiling layer (:mod:`repro.profiling.atom`) turns those
callbacks into the paper's ``<pc, value>`` and ``<branchPC, targetPC>``
tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .isa import (INSTRUCTION_BYTES, LINK_REGISTER, NUM_REGISTERS,
                  WORD_MASK, Instruction, Opcode)
from .memory import Memory
from .program import Program

#: ``hook(pc, address, value)`` for loads and stores.
MemoryHook = Callable[[int, int, int], None]

#: ``hook(pc, target, taken)`` for control transfers.
BranchHook = Callable[[int, int, bool], None]


class MachineFault(RuntimeError):
    """Fatal execution fault (bad fetch, division by zero, bad jump)."""


@dataclass
class MachineState:
    """Execution statistics for one run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    halted: bool = False


class Machine:
    """Interprets a :class:`~repro.simulator.program.Program`.

    Hooks are lists so several observers (e.g. a value profiler and an
    edge profiler) can watch one execution, mirroring how one ATOM run
    feeds multiple analyses.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.memory = Memory()
        for address, value in program.data.items():
            self.memory.store(address, value)
        self.pc = program.entry_point
        self.state = MachineState()
        self.load_hooks: List[MemoryHook] = []
        self.store_hooks: List[MemoryHook] = []
        self.branch_hooks: List[BranchHook] = []

    def read_register(self, number: int) -> int:
        return self.registers[number]

    def write_register(self, number: int, value: int) -> None:
        self.registers[number] = value & WORD_MASK

    def step(self) -> bool:
        """Execute one instruction; returns ``False`` once halted."""
        if self.state.halted:
            return False
        pc = self.pc
        try:
            instruction = self.program.fetch(pc)
        except ValueError as error:
            raise MachineFault(str(error)) from error
        self.state.instructions += 1
        next_pc = pc + INSTRUCTION_BYTES
        self.pc = self._execute(instruction, pc, next_pc)
        return not self.state.halted

    def run(self, max_instructions: int = 10_000_000) -> MachineState:
        """Run until HALT or the instruction budget is exhausted."""
        if max_instructions <= 0:
            raise ValueError(f"max_instructions must be positive, got "
                             f"{max_instructions}")
        budget = max_instructions
        while budget > 0 and self.step():
            budget -= 1
        return self.state

    def _execute(self, instruction: Instruction, pc: int,
                 next_pc: int) -> int:
        opcode = instruction.opcode
        registers = self.registers
        operands = instruction.registers

        if opcode is Opcode.ADD:
            rd, ra, rb = operands
            registers[rd] = (registers[ra] + registers[rb]) & WORD_MASK
        elif opcode is Opcode.SUB:
            rd, ra, rb = operands
            registers[rd] = (registers[ra] - registers[rb]) & WORD_MASK
        elif opcode is Opcode.MUL:
            rd, ra, rb = operands
            registers[rd] = (registers[ra] * registers[rb]) & WORD_MASK
        elif opcode is Opcode.AND:
            rd, ra, rb = operands
            registers[rd] = registers[ra] & registers[rb]
        elif opcode is Opcode.OR:
            rd, ra, rb = operands
            registers[rd] = registers[ra] | registers[rb]
        elif opcode is Opcode.XOR:
            rd, ra, rb = operands
            registers[rd] = registers[ra] ^ registers[rb]
        elif opcode is Opcode.SHL:
            rd, ra, rb = operands
            registers[rd] = (registers[ra]
                             << (registers[rb] & 63)) & WORD_MASK
        elif opcode is Opcode.SHR:
            rd, ra, rb = operands
            registers[rd] = registers[ra] >> (registers[rb] & 63)
        elif opcode is Opcode.CMPLT:
            rd, ra, rb = operands
            registers[rd] = 1 if registers[ra] < registers[rb] else 0
        elif opcode is Opcode.CMPEQ:
            rd, ra, rb = operands
            registers[rd] = 1 if registers[ra] == registers[rb] else 0
        elif opcode is Opcode.ADDI:
            rd, ra = operands
            registers[rd] = (registers[ra] + instruction.immediate) \
                & WORD_MASK
        elif opcode is Opcode.MULI:
            rd, ra = operands
            registers[rd] = (registers[ra] * instruction.immediate) \
                & WORD_MASK
        elif opcode is Opcode.ANDI:
            rd, ra = operands
            registers[rd] = registers[ra] & (instruction.immediate
                                             & WORD_MASK)
        elif opcode is Opcode.XORI:
            rd, ra = operands
            registers[rd] = registers[ra] ^ (instruction.immediate
                                             & WORD_MASK)
        elif opcode is Opcode.LDI:
            (rd,) = operands
            registers[rd] = instruction.immediate & WORD_MASK
        elif opcode is Opcode.LD:
            rd, ra = operands
            address = (registers[ra] + instruction.immediate) & WORD_MASK
            value = self.memory.load(address)
            registers[rd] = value
            self.state.loads += 1
            for hook in self.load_hooks:
                hook(pc, address, value)
        elif opcode is Opcode.ST:
            rs, ra = operands
            address = (registers[ra] + instruction.immediate) & WORD_MASK
            value = registers[rs]
            self.memory.store(address, value)
            self.state.stores += 1
            for hook in self.store_hooks:
                hook(pc, address, value)
        elif opcode is Opcode.BEQZ:
            (ra,) = operands
            return self._branch(pc, next_pc, instruction.immediate,
                                taken=registers[ra] == 0)
        elif opcode is Opcode.BNEZ:
            (ra,) = operands
            return self._branch(pc, next_pc, instruction.immediate,
                                taken=registers[ra] != 0)
        elif opcode is Opcode.BR:
            return self._jump(pc, instruction.immediate)
        elif opcode is Opcode.JR:
            (ra,) = operands
            return self._jump(pc, registers[ra])
        elif opcode is Opcode.CALL:
            registers[LINK_REGISTER] = next_pc
            return self._jump(pc, instruction.immediate)
        elif opcode is Opcode.RET:
            return self._jump(pc, registers[LINK_REGISTER])
        elif opcode is Opcode.HALT:
            self.state.halted = True
        elif opcode is Opcode.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Opcode
            raise MachineFault(f"unimplemented opcode {opcode!r}")
        return next_pc

    def _branch(self, pc: int, next_pc: int, target: int,
                taken: bool) -> int:
        self.state.branches += 1
        if taken:
            self.state.taken_branches += 1
        destination = target if taken else next_pc
        for hook in self.branch_hooks:
            hook(pc, destination, taken)
        return destination

    def _jump(self, pc: int, target: int) -> int:
        self.state.branches += 1
        self.state.taken_branches += 1
        for hook in self.branch_hooks:
            hook(pc, target, True)
        return target
