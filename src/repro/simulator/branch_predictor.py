"""Branch-direction predictors.

Substrate for the Multiple Path Execution motivation (Section 2): the
profiler's job there is to find the *hard* branches -- those a
conventional predictor keeps mispredicting -- so the expensive
dual-path machinery is spent only on them.  This module provides the
conventional predictors whose mispredictions generate those profiling
events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class PredictorStats:
    """Prediction accounting."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions


class TwoBitPredictor:
    """Classic 2-bit saturating-counter bimodal predictor.

    ``entries`` counters indexed by branch PC (word-granular); counter
    states 0-1 predict not-taken, 2-3 predict taken.
    """

    def __init__(self, entries: int = 1024) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, "
                             f"got {entries}")
        self.entries = entries
        self._counters: List[int] = [1] * entries  # weakly not-taken
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns ``True`` on a misprediction."""
        index = self._index(pc)
        predicted = self._counters[index] >= 2
        mispredicted = predicted != taken
        self.stats.predictions += 1
        if mispredicted:
            self.stats.mispredictions += 1
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        return mispredicted


class GSharePredictor:
    """Gshare: global history XORed into the counter index.

    Captures correlated branches the bimodal predictor cannot; the
    hard-branch client compares both to show that the profiler finds
    branches hard for *either* predictor.
    """

    def __init__(self, entries: int = 1024, history_bits: int = 8) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, "
                             f"got {entries}")
        if not 0 < history_bits <= 20:
            raise ValueError(f"history_bits must be in (0, 20], got "
                             f"{history_bits}")
        self.entries = entries
        self.history_bits = history_bits
        self._history = 0
        self._counters: List[int] = [1] * entries
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        index = self._index(pc)
        predicted = self._counters[index] >= 2
        mispredicted = predicted != taken
        self.stats.predictions += 1
        if mispredicted:
            self.stats.mispredictions += 1
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)
        return mispredicted
