"""Synthetic SimpleAlpha benchmark programs.

Programs with the behaviours the paper profiles:

* :func:`value_locality_program` -- a loop nest scanning an array whose
  contents follow a skewed (few-hot-values) distribution, the load
  pattern behind value profiling (Zhang et al.'s observation that ~50 %
  of accesses are dominated by ten values, Section 2);
* :func:`dispatch_program` -- an interpreter-style dispatch loop with
  an indirect jump through a handler table, producing the skewed branch
  edges that edge profiling targets;
* :func:`mixed_program` -- both behaviours behind a subroutine-call
  outer loop, for end-to-end examples.

Each generator emits assembler source (also useful for reading) and a
convenience wrapper assembles it.  Contents are drawn deterministically
from a seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .assembler import assemble
from .program import Program


def skewed_values(count: int, hot_values: Sequence[int],
                  hot_mass: float, seed: int,
                  cold_range: int = 1 << 32) -> List[int]:
    """Array contents: *hot_mass* of entries from *hot_values* (Zipf
    weighted), the rest uniform over *cold_range*."""
    if not hot_values:
        raise ValueError("need at least one hot value")
    if not 0.0 <= hot_mass <= 1.0:
        raise ValueError(f"hot_mass must be in [0, 1], got {hot_mass}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(hot_values))]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    contents = []
    for _ in range(count):
        if rng.random() < hot_mass:
            pick = rng.random()
            for rank, edge in enumerate(cumulative):
                if pick <= edge:
                    contents.append(hot_values[rank])
                    break
        else:
            contents.append(rng.randrange(cold_range))
    return contents


def value_locality_source(array_size: int = 512,
                          iterations: int = 20,
                          hot_values: Sequence[int] = (0, 1, 7, 42, 255),
                          hot_mass: float = 0.7,
                          seed: int = 1) -> str:
    """Assembler source for the value-locality scan loop.

    The single load at label ``scan_load`` reads ``array_size *
    iterations`` values whose distribution is dominated by
    *hot_values* -- a value profiler should report exactly those.
    """
    contents = skewed_values(array_size, hot_values, hot_mass, seed)
    data_words = ", ".join(str(value) for value in contents)
    return f"""
; value-locality scan: {array_size} words x {iterations} passes
.data arr {data_words}
main:
    ldi  r1, arr
    ldi  r10, {iterations}
outer:
    beqz r10, done
    ldi  r2, 0
    ldi  r3, {array_size}
inner:
    cmplt r5, r2, r3
    beqz r5, outer_step
    add  r6, r1, r2
scan_load:
    ld   r7, r6, 0          ; the profiled load
    xor  r8, r8, r7         ; consume the value
    addi r2, r2, 1
    br   inner
outer_step:
    addi r10, r10, -1
    br   outer
done:
    halt
"""


def value_locality_program(**kwargs) -> Program:
    """Assembled :func:`value_locality_source`."""
    return assemble(value_locality_source(**kwargs))


def dispatch_source(num_handlers: int = 8,
                    code_length: int = 256,
                    iterations: int = 40,
                    hot_mass: float = 0.8,
                    seed: int = 2) -> str:
    """Assembler source for the interpreter-style dispatch loop.

    A "bytecode" array selects one of *num_handlers* handlers through a
    jump table; handler indices are Zipf-skewed so a few dispatch edges
    dominate, which is what the edge profiler must find.
    """
    if not 2 <= num_handlers <= 32:
        raise ValueError(f"num_handlers must be in [2, 32], got "
                         f"{num_handlers}")
    opcodes = skewed_values(code_length,
                            hot_values=list(range(num_handlers)),
                            hot_mass=hot_mass, seed=seed,
                            cold_range=num_handlers)
    table = ", ".join(f"handler_{index}" for index in range(num_handlers))
    code_words = ", ".join(str(opcode) for opcode in opcodes)
    handlers = "\n".join(
        f"handler_{index}:\n"
        f"    addi r4, r4, {index + 1}\n"
        f"    br   next"
        for index in range(num_handlers))
    return f"""
; dispatch loop: {code_length} ops x {iterations} passes over
; {num_handlers} handlers
.data table {table}
.data codes {code_words}
main:
    ldi  r1, codes
    ldi  r10, {iterations}
outer:
    beqz r10, done
    ldi  r2, 0
    ldi  r3, {code_length}
loop:
    cmplt r5, r2, r3
    beqz r5, outer_step
    add  r6, r1, r2
    ld   r7, r6, 0          ; fetch "bytecode"
    ldi  r8, table
    add  r8, r8, r7
    ld   r9, r8, 0          ; handler address
dispatch:
    jr   r9                 ; the profiled indirect edge
{handlers}
next:
    addi r2, r2, 1
    br   loop
outer_step:
    addi r10, r10, -1
    br   outer
done:
    halt
"""


def dispatch_program(**kwargs) -> Program:
    """Assembled :func:`dispatch_source`."""
    return assemble(dispatch_source(**kwargs))


def mixed_source(array_size: int = 256,
                 num_handlers: int = 6,
                 iterations: int = 30,
                 seed: int = 3) -> str:
    """A program exercising both behaviours behind CALL/RET.

    The outer loop calls a scan routine (value locality) then a
    dispatch routine (edge locality) each iteration; used by the
    end-to-end example that value-profiles and edge-profiles one run.
    """
    rng = random.Random(seed)
    hot_values = [rng.randrange(1, 1000) for _ in range(6)]
    contents = skewed_values(array_size, hot_values, hot_mass=0.75,
                             seed=seed + 1)
    opcodes = skewed_values(array_size,
                            hot_values=list(range(num_handlers)),
                            hot_mass=0.8, seed=seed + 2,
                            cold_range=num_handlers)
    data_words = ", ".join(str(value) for value in contents)
    code_words = ", ".join(str(opcode) for opcode in opcodes)
    table = ", ".join(f"mixed_handler_{index}"
                      for index in range(num_handlers))
    handlers = "\n".join(
        f"mixed_handler_{index}:\n"
        f"    addi r4, r4, {index + 1}\n"
        f"    br   dispatch_next"
        for index in range(num_handlers))
    return f"""
; mixed workload: scan + dispatch behind calls, {iterations} iterations
.data arr {data_words}
.data codes {code_words}
.data table {table}
main:
    ldi  r10, {iterations}
main_loop:
    beqz r10, done
    call scan
    call dispatch_routine
    addi r10, r10, -1
    br   main_loop
done:
    halt

scan:
    ldi  r1, arr
    ldi  r2, 0
    ldi  r3, {array_size}
scan_loop:
    cmplt r5, r2, r3
    beqz r5, scan_done
    add  r6, r1, r2
    ld   r7, r6, 0
    xor  r8, r8, r7
    addi r2, r2, 1
    br   scan_loop
scan_done:
    ret

dispatch_routine:
    ldi  r1, codes
    ldi  r2, 0
    ldi  r3, {array_size}
dispatch_loop:
    cmplt r5, r2, r3
    beqz r5, dispatch_done
    add  r6, r1, r2
    ld   r7, r6, 0
    ldi  r8, table
    add  r8, r8, r7
    ld   r9, r8, 0
    jr   r9
{handlers}
dispatch_next:
    addi r2, r2, 1
    br   dispatch_loop
dispatch_done:
    ret
"""


def mixed_program(**kwargs) -> Program:
    """Assembled :func:`mixed_source`."""
    return assemble(mixed_source(**kwargs))


def regional_source(num_regions: int = 4,
                    iterations: int = 20,
                    seed: int = 4) -> str:
    """A multi-region program with data-dependent control flow.

    Each region is a subroutine looping over its own data array of
    biased 0/1 words; every element drives a conditional branch whose
    two arms run different ALU mixes.  Regions differ in array length,
    branch bias, and arithmetic, so the program exhibits distinct
    per-region value and edge behaviour -- the phase structure the
    paper's interval profiling is designed to track.
    """
    if not 1 <= num_regions <= 16:
        raise ValueError(f"num_regions must be in [1, 16], got "
                         f"{num_regions}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    rng = random.Random(seed)
    data_sections = []
    routines = []
    calls = []
    for region in range(num_regions):
        length = rng.randrange(24, 96)
        bias = rng.uniform(0.15, 0.85)
        bits = [1 if rng.random() < bias else 0 for _ in range(length)]
        scale = rng.randrange(3, 11)
        mask = rng.randrange(1, 256)
        data_sections.append(
            f".data region_{region}_bits "
            + ", ".join(str(bit) for bit in bits))
        calls.append(f"    call region_{region}")
        routines.append(f"""
region_{region}:
    ldi  r1, region_{region}_bits
    ldi  r2, 0
    ldi  r3, {length}
r{region}_loop:
    cmplt r5, r2, r3
    beqz r5, r{region}_end
    add  r6, r1, r2
    ld   r7, r6, 0
r{region}_branch:
    bnez r7, r{region}_then
    addi r8, r8, {region + 1}
    br   r{region}_join
r{region}_then:
    muli r8, r8, {scale}
    xori r8, r8, {mask}
r{region}_join:
    addi r2, r2, 1
    br   r{region}_loop
r{region}_end:
    ret
""")
    newline = "\n"
    return f"""
; regional workload: {num_regions} regions x {iterations} iterations
{newline.join(data_sections)}
main:
    ldi  r10, {iterations}
main_loop:
    beqz r10, done
{newline.join(calls)}
    addi r10, r10, -1
    br   main_loop
done:
    halt
{newline.join(routines)}
"""


def regional_program(**kwargs) -> Program:
    """Assembled :func:`regional_source`."""
    return assemble(regional_source(**kwargs))
