"""Sparse word-addressed memory for the SimpleAlpha machine."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .isa import WORD_MASK


class Memory:
    """A sparse 64-bit word memory.

    Addresses are arbitrary non-negative integers (word granularity --
    the machine has no sub-word accesses).  Unwritten words read as
    zero, like zero-filled pages.  Values wrap to 64 bits on store.
    """

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def load(self, address: int) -> int:
        """Read one word (0 when never written)."""
        self._check_address(address)
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        """Write one word (masked to 64 bits)."""
        self._check_address(address)
        self._words[address] = value & WORD_MASK

    def load_block(self, address: int, count: int) -> list:
        """Read *count* consecutive words."""
        return [self.load(address + offset) for offset in range(count)]

    def store_block(self, address: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at *address*."""
        for offset, value in enumerate(values):
            self.store(address + offset, value)

    def written_words(self) -> Tuple[Tuple[int, int], ...]:
        """All (address, value) pairs ever stored (diagnostic)."""
        return tuple(sorted(self._words.items()))

    def footprint(self) -> int:
        """Number of distinct words written."""
        return len(self._words)

    def clear(self) -> None:
        self._words.clear()

    @staticmethod
    def _check_address(address: int) -> None:
        if address < 0:
            raise ValueError(f"negative memory address {address}")
