"""The paper's hardware hash function family (Section 5.3).

For a tuple ``<pc, value>`` the hash index is computed as::

    npc   = flip(randomize(pc))
    nv    = randomize(value)
    index = xor_fold(npc ^ nv, index_bits)

where

* ``randomize`` substitutes every byte of its input through a 256-entry
  random number table (an S-box), magnifying the small variation between
  temporally-close PCs and values,
* ``flip`` reverses the byte order, moving the PC's variation into the
  high-order bytes so that XOR-ing with the value spreads entropy, and
* ``xor_fold(v, n)`` splits ``v`` into ``n``-bit chunks and XORs them
  down to an ``n``-bit table index.

The multi-hash architecture (Section 6) needs many *independent* hash
functions; per the paper these are obtained "by just choosing different
random number tables used by the function randomize".
:class:`HashFunctionFamily` derives any number of such functions from a
single seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

from .tuples import FIELD_BITS, ProfileTuple

#: Bytes per hashed field (64-bit fields).
_FIELD_BYTES = FIELD_BITS // 8

#: Size of each random substitution table -- one entry per byte value.
RANDOM_TABLE_ENTRIES = 256


def xor_fold(value: int, index_bits: int) -> int:
    """Fold *value* down to ``index_bits`` bits by XOR-ing chunks.

    ``xor-fold(v, n) splits v into chunks of n-bits and xors those
    chunks to get the final value`` (Section 5.3).
    """
    if index_bits <= 0:
        raise ValueError(f"index_bits must be positive, got {index_bits}")
    mask = (1 << index_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= index_bits
    return folded


def flip(value: int, width_bytes: int = _FIELD_BYTES) -> int:
    """Reverse the byte order of *value* (``flip(v)`` in the paper)."""
    flipped = 0
    for _ in range(width_bytes):
        flipped = (flipped << 8) | (value & 0xFF)
        value >>= 8
    return flipped


class TupleHashFunction:
    """One hardware hash function: ``xor_fold(flip(rand(pc)) ^ rand(value))``.

    The substitution tables would be hardwired into the table lookup in a
    real implementation; here they are derived deterministically from
    *seed* so experiments are reproducible.  A separate 256-entry byte
    table is drawn for every byte position of each field, which keeps the
    substitution a pure per-byte operation (implementable as eight
    parallel 256x8 ROMs per field) while decorrelating byte positions.

    Parameters
    ----------
    index_bits:
        Width of the produced index; the function addresses a table of
        ``2**index_bits`` counters.
    seed:
        Seed for the random number tables.  Functions built from
        different seeds are independent in the sense required by the
        multi-hash analysis of Section 6.2.
    """

    __slots__ = ("index_bits", "table_size", "_pc_tables", "_value_tables",
                 "_np_pc_tables", "_np_value_tables", "_fold_pc",
                 "_fold_value", "_fold_base")

    def __init__(self, index_bits: int, seed: int) -> None:
        if not 1 <= index_bits <= 30:
            raise ValueError(
                f"index_bits must be in [1, 30] for a realistic table, "
                f"got {index_bits}")
        self.index_bits = index_bits
        self.table_size = 1 << index_bits
        rng = random.Random(seed)
        self._pc_tables = _draw_tables(rng)
        self._value_tables = _draw_tables(rng)
        self._np_pc_tables = np.array(self._pc_tables, dtype=np.uint64)
        self._np_value_tables = np.array(self._value_tables, dtype=np.uint64)
        self._fold_pc = None
        self._fold_value = None
        self._fold_base = 0

    def randomize_pc(self, pc: int) -> int:
        """Apply the per-byte substitution to a PC field."""
        return _substitute(pc, self._pc_tables)

    def randomize_value(self, value: int) -> int:
        """Apply the per-byte substitution to a value field."""
        return _substitute(value, self._value_tables)

    def __call__(self, event: ProfileTuple) -> int:
        """Return the table index for *event*."""
        pc, value = event
        npc = flip(self.randomize_pc(pc))
        nv = self.randomize_value(value)
        return xor_fold(npc ^ nv, self.index_bits)

    def index_array(self, pcs: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__` over arrays of PCs and values.

        Used by trace preprocessing to hash a whole interval at once.
        Inputs must be ``uint64`` arrays of equal shape; the result is an
        ``int64`` array of table indices.

        The whole ``xor_fold(flip(rand(pc)) ^ rand(value))`` pipeline is
        XOR-linear in the per-byte substitutions, so it precomputes into
        one folded lookup table per 16-bit input chunk (zero-normalized:
        entry 0 is 0, with the all-zero-bytes contribution hoisted into a
        constant).  A chunk above the data's actual width then costs
        nothing, which collapses the usual case -- PCs and values far
        narrower than 64 bits -- to a couple of gathers and XORs.
        """
        if self._fold_pc is None:
            self._build_fold_tables()
        out = None
        mask = np.uint64(0xFFFF)
        for tables, field in ((self._fold_pc, pcs),
                              (self._fold_value, values)):
            top = int(field.max()) if field.size else 0
            for chunk in range(_FIELD_BYTES // 2):
                if chunk and not top >> (16 * chunk):
                    break
                piece = (field if chunk == 0 and top < 0x10000
                         else (field >> np.uint64(16 * chunk)) & mask)
                gathered = tables[chunk].take(piece.astype(np.intp))
                if out is None:
                    out = gathered
                else:
                    out ^= gathered
        if self._fold_base:
            out ^= np.int32(self._fold_base)
        return out.astype(np.int64)

    def _build_fold_tables(self) -> None:
        """Precompute the zero-normalized folded 16-bit chunk tables."""
        per_byte_pc = []
        per_byte_value = []
        for position in range(_FIELD_BYTES):
            flipped = _FIELD_BYTES - 1 - position
            per_byte_pc.append(np.array(
                [xor_fold(entry << (8 * flipped), self.index_bits)
                 for entry in self._pc_tables[position]], dtype=np.int32))
            per_byte_value.append(np.array(
                [xor_fold(entry << (8 * position), self.index_bits)
                 for entry in self._value_tables[position]], dtype=np.int32))
        base = 0
        fold_pc = []
        fold_value = []
        for chunk in range(_FIELD_BYTES // 2):
            for per_byte, fold in ((per_byte_pc, fold_pc),
                                   (per_byte_value, fold_value)):
                low = per_byte[2 * chunk]
                high = per_byte[2 * chunk + 1]
                table = low[np.newaxis, :] ^ high[:, np.newaxis]
                zero = int(table[0, 0])
                base ^= zero
                fold.append((table ^ zero).reshape(-1))
        self._fold_pc = fold_pc
        self._fold_value = fold_value
        self._fold_base = base


def _draw_tables(rng: random.Random) -> List[List[int]]:
    """Draw one 256-entry random byte table per byte position."""
    return [[rng.getrandbits(8) for _ in range(RANDOM_TABLE_ENTRIES)]
            for _ in range(_FIELD_BYTES)]


def _substitute(value: int, tables: Sequence[Sequence[int]]) -> int:
    """Per-byte substitution of *value* through per-position tables."""
    out = 0
    for position in range(_FIELD_BYTES):
        byte = (value >> (8 * position)) & 0xFF
        out |= tables[position][byte] << (8 * position)
    return out


def _substitute_array(values: np.ndarray, tables: np.ndarray,
                      flip_bytes: bool) -> np.ndarray:
    """Vectorized per-byte substitution (optionally byte-flipped).

    *tables* is an ``(8, 256)`` ``uint64`` array.  When *flip_bytes* is
    true the substituted byte for input position ``i`` is placed at
    output position ``7 - i``, fusing :func:`flip` into the substitution.
    """
    out = np.zeros_like(values)
    for position in range(_FIELD_BYTES):
        byte = (values >> np.uint64(8 * position)) & np.uint64(0xFF)
        substituted = tables[position][byte.astype(np.intp)]
        out_position = (_FIELD_BYTES - 1 - position) if flip_bytes else position
        out |= substituted << np.uint64(8 * out_position)
    return out


class HashFunctionFamily:
    """A family of independent hash functions sharing one master seed.

    ``family[i]`` is the i-th function; the family grows lazily, so a
    multi-hash profiler with ``n`` tables simply takes ``family.take(n)``.
    Two families with the same seed produce identical functions, which
    makes profiler runs reproducible.
    """

    def __init__(self, index_bits: int, seed: int = 0x5EED) -> None:
        self.index_bits = index_bits
        self.seed = seed
        self._functions: List[TupleHashFunction] = []

    def __getitem__(self, position: int) -> TupleHashFunction:
        if position < 0:
            raise IndexError("hash function index must be non-negative")
        while len(self._functions) <= position:
            ordinal = len(self._functions)
            self._functions.append(
                TupleHashFunction(self.index_bits,
                                  seed=_derive_seed(self.seed, ordinal)))
        return self._functions[position]

    def take(self, count: int) -> List[TupleHashFunction]:
        """Return the first *count* functions of the family."""
        return [self[i] for i in range(count)]


def _derive_seed(master: int, ordinal: int) -> int:
    """Mix *ordinal* into *master* (splitmix64 finalizer)."""
    mixed = (master + 0x9E3779B97F4A7C15 * (ordinal + 1)) & (2 ** 64 - 1)
    mixed ^= mixed >> 30
    mixed = (mixed * 0xBF58476D1CE4E5B9) & (2 ** 64 - 1)
    mixed ^= mixed >> 27
    mixed = (mixed * 0x94D049BB133111EB) & (2 ** 64 - 1)
    mixed ^= mixed >> 31
    return mixed
