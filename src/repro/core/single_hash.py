"""The single-hash interval profiler (Section 5).

One tagless counter table filters the event stream; an accumulator
table captures tuples whose counter crosses the candidate threshold.
Three mechanisms from the paper are implemented:

* **shielding** (Section 5.2) -- once a tuple is resident in the
  accumulator it is counted there directly and never touches the hash
  table again that interval, relieving pressure on the shared counters;
* **retaining** (``P1``, Section 5.4.1) -- above-threshold accumulator
  entries survive into the next interval (replaceable, count zeroed) so
  recurring candidates stay shielded from the first event of the next
  interval;
* **resetting** (``R1``, Section 5.4.2) -- the hash counter is zeroed
  when its tuple is promoted, so other tuples aliasing onto it must
  earn the threshold on their own, cutting false positives at the cost
  of occasional false negatives for the aliased tuples.

At the end of every interval the hash table is flushed.
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import HardwareProfiler
from .config import ProfilerConfig
from .hashing import HashFunctionFamily, TupleHashFunction
from .tables import AccumulatorTable, CounterTable
from .tuples import ProfileTuple


class SingleHashProfiler(HardwareProfiler):
    """Interval-based profiler with one tagless hash table (Figure 2)."""

    def __init__(self, config: ProfilerConfig,
                 hash_function: Optional[TupleHashFunction] = None) -> None:
        if config.num_tables != 1:
            raise ValueError(
                f"SingleHashProfiler requires num_tables == 1, got "
                f"{config.num_tables}; use MultiHashProfiler instead")
        super().__init__(config.interval)
        self.config = config
        #: True when the caller supplied an explicit hash function; the
        #: batched runner only folds profilers whose functions derive
        #: from the config seed (and are therefore shared per seed).
        self.custom_hash = hash_function is not None
        self.hash_function = hash_function or HashFunctionFamily(
            config.index_bits, seed=config.hash_seed)[0]
        if self.hash_function.table_size != config.entries_per_table:
            raise ValueError(
                f"hash function addresses {self.hash_function.table_size} "
                f"entries but the table has {config.entries_per_table}")
        self.table = CounterTable(config.entries_per_table,
                                  config.counter_bits)
        self.accumulator = AccumulatorTable(config.accumulator_capacity)
        self._index_cache: Dict[ProfileTuple, int] = {}

    @property
    def name(self) -> str:
        return self.config.label

    def observe(self, event: ProfileTuple) -> None:
        self._count_event()
        threshold = self.interval.threshold_count

        # Residency is decided before the event can promote itself: a
        # promotion's initial count already includes this occurrence,
        # so the unshielded hit below must not count it again.
        resident = event in self.accumulator

        # Shielded path: resident tuples are counted associatively and
        # bypass the hash table (Section 5.2).
        if self.config.shielding and resident:
            self.accumulator.record_hit(event, threshold)
            self.stats.accumulator_hits += 1
            return

        index = self._index_of(event)
        count = self.table.increment(index)
        self.stats.hash_updates += 1
        if count >= threshold and not resident:
            self._promote(event, index, count)

        # Without shielding (ablation only), resident tuples also count
        # in the accumulator so their reported frequency stays exact.
        if not self.config.shielding and resident:
            self.accumulator.record_hit(event, threshold)
            self.stats.accumulator_hits += 1

    def _promote(self, event: ProfileTuple, index: int, count: int) -> None:
        """Move *event* into the accumulator once its counter crosses."""
        if event in self.accumulator:
            return
        if self.accumulator.insert(event, initial_count=count):
            self.stats.promotions += 1
            if self.config.resetting:
                self.table.reset(index)
        else:
            self.stats.rejected_promotions += 1

    def observe_chunk(self, events, index_lists=None):
        """Batched :meth:`observe` with precomputed hash indices.

        Behaviourally identical to calling :meth:`observe` per event
        (verified by the equivalence tests); exists because per-event
        Python hashing dominates runtime on million-event intervals.
        """
        if index_lists is None:
            for event in events:
                self.observe(event)
            return
        (indices,) = index_lists
        threshold = self.interval.threshold_count
        resident = self.accumulator.raw_entries()
        counters = self.table._counters
        max_value = self.table.max_value
        shielding = self.config.shielding
        resetting = self.config.resetting
        stats = self.stats
        accumulator_hits = 0
        hash_updates = 0
        for position, event in enumerate(events):
            entry = resident.get(event)
            if shielding and entry is not None:
                entry.count += 1
                if entry.replaceable and entry.count >= threshold:
                    entry.replaceable = False
                    self.accumulator.replaceable_count -= 1
                accumulator_hits += 1
                continue
            index = indices[position]
            count = counters[index] + 1
            if count > max_value:
                count = max_value
            counters[index] = count
            hash_updates += 1
            if count >= threshold and entry is None:
                if self.accumulator.insert(event, initial_count=count):
                    stats.promotions += 1
                    if resetting:
                        counters[index] = 0
                else:
                    stats.rejected_promotions += 1
            if not shielding and entry is not None:
                entry.count += 1
                if entry.replaceable and entry.count >= threshold:
                    entry.replaceable = False
                    self.accumulator.replaceable_count -= 1
                accumulator_hits += 1
        stats.accumulator_hits += accumulator_hits
        stats.hash_updates += hash_updates
        stats.events += len(events)
        self._events_this_interval += len(events)

    def _index_of(self, event: ProfileTuple) -> int:
        cache = self._index_cache
        index = cache.get(event)
        if index is None:
            index = self.hash_function(event)
            cache[event] = index
        return index

    def _close_interval(self) -> Dict[ProfileTuple, int]:
        report = self.accumulator.end_interval(
            self.interval.threshold_count, retaining=self.config.retaining)
        self.table.flush()
        self.stats.evictions = self.accumulator.evictions
        return report
