"""NumPy batch kernels for the hash-table profilers.

The scalar profilers (:mod:`repro.core.single_hash`,
:mod:`repro.core.multi_hash`) walk one Python loop iteration per event,
which caps throughput far below the "fast as the hardware allows" goal
of the ROADMAP.  These kernels process whole ``(pcs, values)`` uint64
chunks with NumPy and are **bit-identical** to the scalar reference --
same candidate sets, same counts, same :class:`ProfilerStats`, proven
by the differential parity harness (``tests/test_kernel_parity.py``).

The obstacle to vectorizing a profiler is that promotions mutate shared
state mid-stream: a promoted tuple becomes shielded (later events stop
hashing), may evict a retained entry, and under ``R1`` resets its
counter(s).  The kernels therefore use a **segmented** design:

1. Snapshot residency and counters at the start of a window.
2. From the snapshot alone, compute for every event the counter value
   it would see -- occurrence numbering turns "counter after this
   event" into ``min(base + k, max)`` where ``k`` is the event's rank
   among equal indices -- and locate the *first* promotion attempt.
3. Everything strictly before that boundary is state-change free, so
   counter bumps and accumulator hits are applied in bulk (their order
   within the segment is immaterial: counts are additive and the
   retained->pinned flag only ever flips one way).
4. The boundary event itself runs through an exact scalar step
   (:meth:`observe` semantics, including victim selection and
   resetting), then the remainder of the window is re-segmented.

Two refinements keep pathological streams fast:

* **Saturated accumulator short-cut** -- once the accumulator is full
  of pinned entries, rejection is an absorbing state for the rest of
  the interval (pins never clear mid-interval and entries only leave
  by being evicted, which requires a successful insert).  All attempts
  in the window are then counted as rejections in bulk, with no
  segment breaks at all.
* **Conservative-update fixpoint solving** (``C1``) -- only the
  minimum counter(s) are bumped, which serializes events through the
  counters they share.  Writing the update as
  ``c_t <- max(c_t, min(m + 1, cap))`` shows the minimum ``M`` each
  event observes satisfies an *acyclic* min-max recurrence over
  per-counter chains; :class:`_ConservativeSpan` solves it exactly
  with a monotone Jacobi iteration whose inner step is one segmented
  prefix-max scan (details on the class).  The solved minima give the
  promotion boundaries, the per-table update counts, and the final
  counters, all in bulk.

A window that degenerates (more than :data:`MAX_WINDOW_BOUNDARIES`
promotions) falls back to the scalar step loop for its remainder,
bounding the worst case at scalar speed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .config import ProfilerConfig
from .hashing import TupleHashFunction
from .multi_hash import MultiHashProfiler
from .single_hash import SingleHashProfiler
from .tables import AccumulatorEntry, AccumulatorTable, CounterTable
from .tuples import ProfileTuple

#: Structured dtype giving tuples a total order for ``numpy`` sorting.
PAIR_DTYPE = np.dtype([("p", np.uint64), ("v", np.uint64)])

#: Events re-segmented together.  Each promotion boundary restarts the
#: remainder of its window, so the window size bounds the per-boundary
#: recompute cost; 4K keeps that cost small while amortizing the NumPy
#: call overhead over thousands of events.
WINDOW_EVENTS = 4096

#: Window size for the conservative-update (``C1``) path.  Jacobi
#: convergence needs one pass per level of the longest dependency
#: chain through shared counters, and chains deepen with the window,
#: so total solver work scales superlinearly in window size: smaller
#: windows win even though they amortize call overhead less well.
C1_WINDOW_EVENTS = 768

#: Promotion boundaries tolerated per window before its remainder is
#: handed to the exact scalar loop (degenerate streams promote on
#: nearly every event; re-segmenting would go quadratic).
MAX_WINDOW_BOUNDARIES = 24

#: Widest saturating counter the int64 kernels can hold without
#: overflow headroom for in-window occurrence offsets.
MAX_KERNEL_COUNTER_BITS = 62

#: Jacobi passes from above before the C1 fixpoint solver switches to
#: sandwich certification.  Convergence needs as many passes as the
#: longest dependency chain through shared counters, which stays short
#: once tables are warm but can spike on cold, heavily aliased spans.
MAX_SOLVER_PASSES = 24

#: Passes from below used to bracket (and thereby certify) events
#: before the sequential straggler walk takes over.
CERTIFY_PASSES = 6

#: C1 hash spans smaller than this run through the scalar loop; the
#: solver's argsort/scan setup dominates tiny spans.
MIN_SOLVER_SPAN = 32


class NumpyCounterTable(CounterTable):
    """A :class:`CounterTable` backed by an ``int64`` ndarray.

    Scalar accessors keep exact :class:`CounterTable` semantics (and
    plain-``int`` returns) so per-event code paths still work; the
    kernels index :attr:`array` directly.
    """

    def __init__(self, size: int, counter_bits: int = 24) -> None:
        if counter_bits > MAX_KERNEL_COUNTER_BITS:
            raise ValueError(
                f"NumpyCounterTable holds counters in int64; "
                f"counter_bits must be <= {MAX_KERNEL_COUNTER_BITS}, "
                f"got {counter_bits}")
        super().__init__(size, counter_bits)
        self._counters = np.zeros(size, dtype=np.int64)

    @property
    def array(self) -> np.ndarray:
        """The raw counter array (kernel fast path)."""
        return self._counters

    def read(self, index: int) -> int:
        return int(self._counters[index])

    def increment(self, index: int, amount: int = 1) -> int:
        value = int(self._counters[index]) + amount
        if value > self.max_value:
            value = self.max_value
        self._counters[index] = value
        return value

    def flush(self) -> None:
        self._counters[:] = 0

    def occupancy(self) -> int:
        return int(np.count_nonzero(self._counters))

    def __iter__(self):
        return iter(self._counters.tolist())


def _dedupe_pairs(pcs: np.ndarray,
                  values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique ``(pc, value)`` pairs plus per-event tuple ids.

    Equivalent to ``np.unique(structured, return_inverse=True)`` but
    via ``lexsort`` over the parallel arrays, which is measurably
    faster than sorting a structured dtype.  When both fields fit in
    32 bits (the common case for real traces) the pair packs into a
    single ``uint64`` key whose numeric order matches the structured
    order, and one plain sort replaces the two lexsort passes.
    """
    if (pcs.size and int(pcs.max()) < 1 << 32
            and int(values.max()) < 1 << 32):
        packed = (pcs << np.uint64(32)) | values
        unique_keys, event_ids = np.unique(packed, return_inverse=True)
        unique = np.empty(len(unique_keys), dtype=PAIR_DTYPE)
        unique["p"] = unique_keys >> np.uint64(32)
        unique["v"] = unique_keys & np.uint64(0xFFFFFFFF)
        return unique, event_ids.astype(np.int64, copy=False)
    order = np.lexsort((values, pcs))
    sorted_pcs = pcs[order]
    sorted_values = values[order]
    starts = np.empty(len(pcs), dtype=bool)
    starts[0] = True
    np.logical_or(sorted_pcs[1:] != sorted_pcs[:-1],
                  sorted_values[1:] != sorted_values[:-1],
                  out=starts[1:])
    group = np.cumsum(starts) - 1
    event_ids = np.empty(len(pcs), dtype=np.int64)
    event_ids[order] = group
    unique = np.empty(int(group[-1]) + 1, dtype=PAIR_DTYPE)
    unique["p"] = sorted_pcs[starts]
    unique["v"] = sorted_values[starts]
    return unique, event_ids


def _stable_sort(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(order, keys[order])`` for a stable sort of non-negative *keys*.

    Packs ``key * n + position`` into one int64 so a single plain sort
    (quicksort beats stable mergesort several-fold at kernel window
    sizes) replaces ``argsort(kind="stable")`` plus the gather, with the
    position low bits providing the stability tie-break.  Falls back to
    the stable argsort when the packed key could overflow.
    """
    n = len(keys)
    top = int(keys.max()) if n else 0
    if n and top < (1 << 62) // (n + 1):
        composite = keys * n + np.arange(n, dtype=np.int64)
        composite.sort()
        return composite % n, composite // n
    order = np.argsort(keys, kind="stable")
    return order, keys[order]


def _occurrence_numbers(keys: np.ndarray) -> np.ndarray:
    """1-based rank of every element among equal *keys*, in order.

    ``keys = [5, 3, 5, 5, 3]`` yields ``[1, 1, 2, 3, 2]``: with a
    counter snapshot taken before the run, the counter value after the
    k-th occurrence of an index is exactly ``base + k`` (saturation
    aside), which is what lets a whole segment be scored at once.
    """
    order, sorted_keys = _stable_sort(keys)
    positions = np.arange(len(keys), dtype=np.int64)
    starts = np.empty(len(keys), dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    group_start = np.maximum.accumulate(np.where(starts, positions, 0))
    occurrence = positions - group_start + 1
    out = np.empty(len(keys), dtype=np.int64)
    out[order] = occurrence
    return out


def _bulk_increment(counters: np.ndarray, hash_indices: np.ndarray,
                    max_value: int) -> None:
    """Apply one saturating increment per element of *hash_indices*."""
    if not len(hash_indices):
        return
    unique_indices, bumps = np.unique(hash_indices, return_counts=True)
    merged = counters[unique_indices] + bumps
    np.minimum(merged, max_value, out=merged)
    counters[unique_indices] = merged


class _ChunkAccumulator:
    """Chunk-scoped vectorized view over one :class:`AccumulatorTable`.

    Tracks residency as a boolean flag per unique tuple of the chunk
    (rebuilt per chunk, so interleaved per-event :meth:`observe` calls
    stay safe) plus a running count of replaceable entries, which is
    what makes the saturated-accumulator short-cut an O(1) check.  All
    mutations go through this wrapper so flags, the replaceable count
    and :class:`ProfilerStats` stay consistent with the table.

    Hits are *deferred*: :meth:`bulk_hits` only accumulates per-tuple
    counts in an array, and :meth:`flush` folds them into the entry
    objects.  Deferral is exact because hit counts are additive and
    the only state hits can change -- the replaceable flag, which pins
    one way -- is read solely at flush points: every promotion
    boundary (victim selection) and the end of the chunk.  The
    :attr:`saturated` check may see pending hits un-applied, but that
    errs only toward *not* taking the shortcut, and the boundary it
    then runs starts with a flush.
    """

    __slots__ = ("table", "unique", "threshold", "stats", "resident",
                 "replaceable", "entry_refs", "pending", "_dirty")

    def __init__(self, table: AccumulatorTable, unique: np.ndarray,
                 threshold: int, stats,
                 resident: Optional[np.ndarray] = None,
                 entry_refs=None,
                 scan: bool = True) -> None:
        self.table = table
        self.unique = unique
        self.threshold = threshold
        self.stats = stats
        # The batched runner passes per-tenant *views* into one shared
        # residency array (and a matching object-dtype entry-ref array)
        # so a whole multi-session batch gathers residency and scatters
        # entry references in single indexing operations; mutations
        # through the views stay visible to the batch kernels.
        if resident is None:
            resident = np.zeros(len(unique), dtype=bool)
        self.resident = resident
        self.replaceable = 0
        if entry_refs is None:
            entry_refs = [None] * len(unique)
        self.entry_refs = entry_refs
        self.pending = np.zeros(len(unique), dtype=np.int64)
        self._dirty = False
        if not scan:
            # The batched runner locates every tenant's entries in one
            # group-wide pass and fills ``resident``/``entry_refs``/
            # ``replaceable`` itself (see ``_Batch.__init__``).
            return
        entries = table.raw_entries()
        if entries:
            entry_list = list(entries.values())
            key_fields = np.fromiter(entries.keys(),
                                     dtype=np.dtype((np.uint64, 2)),
                                     count=len(entries))
            keys = key_fields.reshape(-1).view(PAIR_DTYPE)
            for entry in entry_list:
                if entry.replaceable:
                    self.replaceable += 1
            locations = np.searchsorted(unique, keys)
            np.clip(locations, 0, len(unique) - 1, out=locations)
            matched = unique[locations] == keys
            self.resident[locations[matched]] = True
            refs = self.entry_refs
            hits = np.flatnonzero(matched)
            for position, location in zip(hits.tolist(),
                                          locations[hits].tolist()):
                refs[location] = entry_list[position]

    @property
    def saturated(self) -> bool:
        """Full of pinned entries: every further insert is rejected."""
        return (len(self.table) >= self.table.capacity
                and self.replaceable == 0)

    def locate(self, event: ProfileTuple) -> Optional[int]:
        """Unique-tuple id of *event* within this chunk, if present."""
        key = np.zeros((), dtype=PAIR_DTYPE)
        key["p"], key["v"] = event
        position = int(np.searchsorted(self.unique, key))
        if position < len(self.unique) and self.unique[position] == key:
            return position
        return None

    def hit_entry(self, entry: AccumulatorEntry) -> None:
        """One :meth:`AccumulatorTable.record_hit`, mirrored."""
        entry.count += 1
        if entry.replaceable and entry.count >= self.threshold:
            entry.replaceable = False
            self.replaceable -= 1
            self.table.replaceable_count -= 1
        self.stats.accumulator_hits += 1

    def bulk_hits(self, event_ids: np.ndarray) -> None:
        """Count a batch of resident-tuple occurrences, deferred.

        Equivalent to per-event :meth:`hit_entry` once flushed because
        counts are additive and the replaceable flag clears at the
        same final state no matter where inside the batch the
        threshold was crossed (no eviction can observe the difference
        mid-segment -- evictions always flush first).
        """
        if not len(event_ids):
            return
        self.pending += np.bincount(event_ids, minlength=len(self.pending))
        self._dirty = True
        self.stats.accumulator_hits += len(event_ids)

    def flush(self) -> None:
        """Fold the deferred hit counts into the entry objects."""
        if not self._dirty:
            return
        hit_ids = np.flatnonzero(self.pending)
        refs = self.entry_refs
        threshold = self.threshold
        table = self.table
        for event_id, count in zip(hit_ids.tolist(),
                                   self.pending[hit_ids].tolist()):
            entry = refs[event_id]
            entry.count += count
            if entry.replaceable and entry.count >= threshold:
                entry.replaceable = False
                self.replaceable -= 1
                table.replaceable_count -= 1
        self.pending[hit_ids] = 0
        self._dirty = False

    def insert(self, event: ProfileTuple, event_id: int,
               initial_count: int) -> bool:
        """Tracked :meth:`AccumulatorTable.insert`, keeping flags live."""
        inserted, evicted = self.table.insert_tracked(event, initial_count)
        if not inserted:
            return False
        if evicted is not None:
            # Victims are replaceable by definition; the evicted tuple
            # may lie outside this chunk's unique set.
            self.replaceable -= 1
            position = self.locate(evicted)
            if position is not None:
                self.resident[position] = False
                self.entry_refs[position] = None
        self.resident[event_id] = True
        self.entry_refs[event_id] = self.table.raw_entries()[event]
        return True


def _check_kernel_config(config: ProfilerConfig) -> None:
    if config.counter_bits > MAX_KERNEL_COUNTER_BITS:
        raise ValueError(
            f"vectorized kernels support counter_bits <= "
            f"{MAX_KERNEL_COUNTER_BITS}, got {config.counter_bits}; "
            f"use backend='scalar'")


class VectorizedSingleHashProfiler(SingleHashProfiler):
    """Segmented NumPy kernel for the single-hash profiler.

    Bit-identical to :class:`SingleHashProfiler` (candidates, counts
    and stats), verified by ``tests/test_kernel_parity.py``.
    """

    supports_array_chunks = True

    def __init__(self, config: ProfilerConfig,
                 hash_function: Optional[TupleHashFunction] = None) -> None:
        _check_kernel_config(config)
        super().__init__(config, hash_function)
        self.table = NumpyCounterTable(config.entries_per_table,
                                       config.counter_bits)

    def observe_chunk(self, events, index_lists=None):
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if not events:
            return
        pairs = np.asarray(events, dtype=np.uint64)
        self.observe_array_chunk(pairs[:, 0], pairs[:, 1])

    def observe_array_chunk(self, pcs: np.ndarray,
                            values: np.ndarray) -> None:
        pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        total = len(pcs)
        if not total:
            return
        unique, event_ids = _dedupe_pairs(pcs, values)
        indices = self.hash_function.index_array(pcs, values)
        accumulator = _ChunkAccumulator(self.accumulator, unique,
                                        self.interval.threshold_count,
                                        self.stats)
        for start in range(0, total, WINDOW_EVENTS):
            self._window(pcs, values, event_ids, indices, accumulator,
                         start, min(total, start + WINDOW_EVENTS))
        accumulator.flush()
        self.stats.events += total
        self._events_this_interval += total

    # -- windowed kernel ----------------------------------------------

    def _window(self, pcs, values, event_ids, indices, accumulator,
                start, stop):
        threshold = self.interval.threshold_count
        max_value = self.table.max_value
        counters = self.table.array
        shielding = self.config.shielding
        stats = self.stats
        boundaries = 0
        while start < stop:
            if boundaries >= MAX_WINDOW_BOUNDARIES:
                self._scalar_span(pcs, values, event_ids, indices,
                                  accumulator, start, stop)
                return
            ids = event_ids[start:stop]
            resident = accumulator.resident[ids]
            hashed = (np.flatnonzero(~resident) if shielding
                      else np.arange(stop - start))
            if not len(hashed):
                accumulator.bulk_hits(ids)
                return
            hash_indices = indices[start:stop][hashed]
            occurrence = _occurrence_numbers(hash_indices)
            counted = counters[hash_indices] + occurrence
            np.minimum(counted, max_value, out=counted)
            attempts = counted >= threshold
            if not shielding:
                attempts &= ~resident[hashed]
            attempt_positions = np.flatnonzero(attempts)
            if not len(attempt_positions) or accumulator.saturated:
                if len(attempt_positions):
                    stats.rejected_promotions += len(attempt_positions)
                    self.accumulator.rejected_inserts += \
                        len(attempt_positions)
                _bulk_increment(counters, hash_indices, max_value)
                stats.hash_updates += len(hash_indices)
                accumulator.bulk_hits(ids[resident])
                return
            cut = int(attempt_positions[0])
            boundary = int(hashed[cut])
            _bulk_increment(counters, hash_indices[:cut], max_value)
            stats.hash_updates += cut
            accumulator.bulk_hits(ids[:boundary][resident[:boundary]])
            self._scalar_span(pcs, values, event_ids, indices, accumulator,
                              start + boundary, start + boundary + 1)
            boundaries += 1
            start += boundary + 1

    def _scalar_span(self, pcs, values, event_ids, indices, accumulator,
                     start, stop):
        """Exact per-event reference over ``[start, stop)``.

        Mirrors the scalar ``observe_chunk`` loop verbatim (the parity
        harness pins both); handles promotion boundaries and the
        degenerate-window fallback.
        """
        accumulator.flush()
        threshold = self.interval.threshold_count
        max_value = self.table.max_value
        counters = self.table.array
        shielding = self.config.shielding
        resetting = self.config.resetting
        stats = self.stats
        entries = self.accumulator.raw_entries()
        for position in range(start, stop):
            event = (int(pcs[position]), int(values[position]))
            entry = entries.get(event)
            if shielding and entry is not None:
                accumulator.hit_entry(entry)
                continue
            index = int(indices[position])
            count = int(counters[index]) + 1
            if count > max_value:
                count = max_value
            counters[index] = count
            stats.hash_updates += 1
            if count >= threshold and entry is None:
                if accumulator.insert(event, int(event_ids[position]),
                                      count):
                    stats.promotions += 1
                    if resetting:
                        counters[index] = 0
                else:
                    stats.rejected_promotions += 1
            if not shielding and entry is not None:
                accumulator.hit_entry(entry)


class _ConservativeSpan:
    """Exact batch solver for one span of conservative-update events.

    Conservative update (``C1``) bumps only the minimum counter(s), so
    writing the bump as ``c_t <- max(c_t, min(m + 1, cap))`` -- a no-op
    on every non-minimum counter, which already holds at least
    ``m + 1`` -- turns each event into a pure *max* write of a single
    value ``D = min(M + 1, cap)`` into all of its counters, where
    ``M`` is the minimum the event observed.  That minimum satisfies

        M[e] = min over tables t of
               max(snapshot[t][e], max D[e'] over earlier events e'
                                   sharing e's counter in table t)

    a min-max recurrence whose dependency graph is acyclic (events read
    only strictly earlier events), hence with a **unique** fixpoint:
    the exact scalar execution.  The solver runs a Jacobi iteration on
    it.  One step evaluates the recurrence for every event at once:
    the (table, event) pairs are sorted by counter chain once at
    construction, and each step is a segmented exclusive prefix-max
    scan (segment ids are folded into the keys so a single
    ``np.maximum.accumulate`` covers all chains).

    Iterating downward from the traffic bound ``snapshot + rank``
    keeps every iterate above the fixpoint, and a *stable* iterate
    equals it: stability means ``x <= F(x)``, and induction over
    stream order on the acyclic system turns that into
    ``x <= fixpoint``.  Stability therefore certifies exactness -- the
    kernel never promotes off an approximate count.

    Convergence needs as many passes as the longest dependency chain,
    which interleaved tuples on shared counters can make deep.  After
    :data:`MAX_SOLVER_PASSES` the solver brackets instead: a few
    passes upward from the snapshot minima give a lower iterate,
    events where the brackets meet are certified exact, and the
    remaining stragglers are resolved by a sequential walk seeded with
    the certified events' contributions from one masked scan.
    """

    __slots__ = ("cap", "num_tables", "length", "counter_arrays",
                 "table_size", "chains", "order", "event_sorted",
                 "starts", "sorted_chains", "seg_base", "rank", "init",
                 "init_sorted", "minima", "overflow")

    def __init__(self, rows: List[np.ndarray],
                 counter_arrays: List[np.ndarray], cap: int) -> None:
        self.cap = cap
        self.counter_arrays = counter_arrays
        self.num_tables = num_tables = len(rows)
        self.length = length = len(rows[0])
        self.table_size = table_size = len(counter_arrays[0])
        total = num_tables * length
        chains = np.empty(total, dtype=np.int64)
        init = np.empty((num_tables, length), dtype=np.int64)
        for t, row in enumerate(rows):
            chains[t * length:(t + 1) * length] = row + t * table_size
            init[t] = counter_arrays[t][row]
        self.chains = chains.reshape(num_tables, length)
        # Counter values stay below both the cap and snapshot + span
        # length, so this stride packs (segment, value) into one int64
        # sort key; the guard catches configs where it cannot.
        stride = min(int(init.max()) + length, cap) + 2
        self.overflow = stride > (1 << 62) // (total + 1)
        if self.overflow:
            return
        order, sorted_chains = _stable_sort(chains)
        self.order = order
        self.event_sorted = order % length
        self.sorted_chains = sorted_chains
        starts = np.empty(total, dtype=bool)
        starts[0] = True
        np.not_equal(sorted_chains[1:], sorted_chains[:-1], out=starts[1:])
        self.starts = starts
        positions = np.arange(total, dtype=np.int64)
        rank_sorted = positions - np.maximum.accumulate(
            np.where(starts, positions, 0))
        rank = np.empty(total, dtype=np.int64)
        rank[order] = rank_sorted
        self.rank = rank.reshape(num_tables, length)
        self.init = init
        self.init_sorted = init.reshape(-1)[order]
        self.seg_base = (np.cumsum(starts) - 1) * stride
        self.minima = None

    def _step(self, minima: np.ndarray) -> np.ndarray:
        """One Jacobi evaluation of the recurrence, all events at once."""
        deltas = np.minimum(minima + 1, self.cap)
        key = self.seg_base + deltas[self.event_sorted]
        np.maximum.accumulate(key, out=key)
        exclusive = np.empty_like(key)
        exclusive[1:] = key[:-1]
        exclusive[0] = 0
        exclusive -= self.seg_base
        exclusive[self.starts] = 0
        np.maximum(exclusive, self.init_sorted, out=exclusive)
        per_table = np.empty(len(key), dtype=np.int64)
        per_table[self.order] = exclusive
        return per_table.reshape(self.num_tables, self.length).min(axis=0)

    def solve(self) -> np.ndarray:
        """Exact per-event observed minima for the whole span."""
        minima = np.minimum((self.init + self.rank).min(axis=0), self.cap)
        for _ in range(MAX_SOLVER_PASSES):
            refined = np.minimum(self._step(minima), minima)
            if np.array_equal(refined, minima):
                self.minima = minima
                return minima
            minima = refined
        lower = self.init.min(axis=0)
        for _ in range(CERTIFY_PASSES):
            refined = np.maximum(self._step(lower), lower)
            if np.array_equal(refined, lower):
                # Stable from below is the fixpoint outright.
                self.minima = refined
                return refined
            lower = refined
        if not np.array_equal(lower, minima):
            self._walk_stragglers(minima, lower)
        self.minima = minima
        return minima

    def _walk_stragglers(self, minima: np.ndarray,
                         lower: np.ndarray) -> None:
        """Resolve the events the pass budget left unbracketed.

        ``lower <= exact <= minima`` throughout, so events where the
        brackets meet are already exact.  Their writes fold into
        per-(table, event) bases via one masked scan; the stragglers
        are then walked sequentially in stream order against those
        bases plus a running per-chain maximum of straggler writes.
        Updates *minima* in place to the exact fixpoint.
        """
        frozen = lower == minima
        deltas = np.where(frozen, np.minimum(minima + 1, self.cap), 0)
        key = self.seg_base + deltas[self.event_sorted]
        np.maximum.accumulate(key, out=key)
        exclusive = np.empty_like(key)
        exclusive[1:] = key[:-1]
        exclusive[0] = 0
        exclusive -= self.seg_base
        exclusive[self.starts] = 0
        np.maximum(exclusive, self.init_sorted, out=exclusive)
        bases = np.empty(len(key), dtype=np.int64)
        bases[self.order] = exclusive
        bases = bases.reshape(self.num_tables, self.length)
        stragglers = np.flatnonzero(~frozen)
        chain_columns = [self.chains[t, stragglers].tolist()
                         for t in range(self.num_tables)]
        base_columns = [bases[t, stragglers].tolist()
                        for t in range(self.num_tables)]
        running: dict = {}
        resolved = [0] * len(stragglers)
        cap = self.cap
        tables = range(self.num_tables)
        for i in range(len(stragglers)):
            minimum = None
            for t in tables:
                value = base_columns[t][i]
                top = running.get(chain_columns[t][i])
                if top is not None and top > value:
                    value = top
                if minimum is None or value < minimum:
                    minimum = value
            resolved[i] = minimum
            delta = minimum + 1
            if delta > cap:
                delta = cap
            for t in tables:
                chain = chain_columns[t][i]
                top = running.get(chain)
                if top is None or top < delta:
                    running[chain] = delta
        minima[stragglers] = resolved

    def apply(self, cut: int) -> int:
        """Write the first *cut* events' counter updates back.

        Returns the scalar-equivalent hash-update count (one per table
        holding the event's minimum, saturated ties included).  Exact
        for any prefix: an event's minimum depends only on earlier
        events, so truncating the span truncates the writes.
        """
        minima = self.minima
        deltas = np.minimum(minima + 1, self.cap)
        if cut < self.length:
            deltas = deltas.copy()
            deltas[cut:] = 0
        key = self.seg_base + deltas[self.event_sorted]
        np.maximum.accumulate(key, out=key)
        last = np.empty(len(key), dtype=bool)
        last[:-1] = self.starts[1:]
        last[-1] = True
        finals = key[last] - self.seg_base[last]
        exclusive = np.empty_like(key)
        exclusive[1:] = key[:-1]
        exclusive[0] = 0
        exclusive -= self.seg_base
        exclusive[self.starts] = 0
        np.maximum(exclusive, self.init_sorted, out=exclusive)
        before = np.empty(len(key), dtype=np.int64)
        before[self.order] = exclusive
        before = before.reshape(self.num_tables, self.length)
        updates = int(np.count_nonzero(
            before[:, :cut] == minima[np.newaxis, :cut]))
        np.maximum(finals, self.init_sorted[last], out=finals)
        touched = self.sorted_chains[last]
        edges = np.searchsorted(
            touched, np.arange(self.num_tables + 1) * self.table_size)
        for t in range(self.num_tables):
            low, high = int(edges[t]), int(edges[t + 1])
            self.counter_arrays[t][touched[low:high]
                                   - t * self.table_size] = finals[low:high]
        return updates

    def apply_masked(self, mask: np.ndarray) -> np.ndarray:
        """:meth:`apply` for any per-event subset, not just a prefix.

        The batched multi-session kernel truncates each tenant at its
        own promotion boundary, so the events to commit form a
        *per-chain* prefix (chains never span tenants) rather than a
        prefix of the packed span -- which is all exactness needs: an
        event's minimum depends only on earlier events of its own
        chains, and every earlier chain-mate of a committed event is
        committed too.

        Returns the per-event scalar-equivalent hash-update counts
        (zero outside *mask*) so the caller can scatter
        ``stats.hash_updates`` back to each tenant.
        """
        minima = self.minima
        deltas = np.where(mask, np.minimum(minima + 1, self.cap), 0)
        key = self.seg_base + deltas[self.event_sorted]
        np.maximum.accumulate(key, out=key)
        last = np.empty(len(key), dtype=bool)
        last[:-1] = self.starts[1:]
        last[-1] = True
        finals = key[last] - self.seg_base[last]
        exclusive = np.empty_like(key)
        exclusive[1:] = key[:-1]
        exclusive[0] = 0
        exclusive -= self.seg_base
        exclusive[self.starts] = 0
        np.maximum(exclusive, self.init_sorted, out=exclusive)
        before = np.empty(len(key), dtype=np.int64)
        before[self.order] = exclusive
        before = before.reshape(self.num_tables, self.length)
        per_event = ((before == minima[np.newaxis, :])
                     & mask[np.newaxis, :]).sum(axis=0, dtype=np.int64)
        np.maximum(finals, self.init_sorted[last], out=finals)
        touched = self.sorted_chains[last]
        edges = np.searchsorted(
            touched, np.arange(self.num_tables + 1) * self.table_size)
        for t in range(self.num_tables):
            low, high = int(edges[t]), int(edges[t + 1])
            self.counter_arrays[t][touched[low:high]
                                   - t * self.table_size] = finals[low:high]
        return per_event


class VectorizedMultiHashProfiler(MultiHashProfiler):
    """Segmented NumPy kernel for the multi-hash profiler.

    Bit-identical to :class:`MultiHashProfiler` for both the plain
    (``C0``) and conservative-update (``C1``) increment policies,
    verified by ``tests/test_kernel_parity.py``.
    """

    supports_array_chunks = True

    def __init__(self, config: ProfilerConfig,
                 hash_functions: Optional[Sequence[TupleHashFunction]] = None
                 ) -> None:
        _check_kernel_config(config)
        super().__init__(config, hash_functions)
        self.tables = [
            NumpyCounterTable(config.entries_per_table, config.counter_bits)
            for _ in range(config.num_tables)
        ]

    def observe_chunk(self, events, index_lists=None):
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if not events:
            return
        pairs = np.asarray(events, dtype=np.uint64)
        self.observe_array_chunk(pairs[:, 0], pairs[:, 1])

    def observe_array_chunk(self, pcs: np.ndarray,
                            values: np.ndarray) -> None:
        pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        total = len(pcs)
        if not total:
            return
        unique, event_ids = _dedupe_pairs(pcs, values)
        index_columns = [function.index_array(pcs, values)
                         for function in self.hash_functions]
        accumulator = _ChunkAccumulator(self.accumulator, unique,
                                        self.interval.threshold_count,
                                        self.stats)
        if self.config.conservative_update:
            window, window_events = (self._window_conservative,
                                     C1_WINDOW_EVENTS)
        else:
            window, window_events = self._window_plain, WINDOW_EVENTS
        for start in range(0, total, window_events):
            window(pcs, values, event_ids, index_columns, accumulator,
                   start, min(total, start + window_events))
        accumulator.flush()
        self.stats.events += total
        self._events_this_interval += total

    # -- plain increment (C0) -----------------------------------------

    def _window_plain(self, pcs, values, event_ids, index_columns,
                      accumulator, start, stop):
        threshold = self.interval.threshold_count
        max_value = self.tables[0].max_value
        counter_arrays = [table.array for table in self.tables]
        num_tables = len(counter_arrays)
        shielding = self.config.shielding
        stats = self.stats
        boundaries = 0
        while start < stop:
            if boundaries >= MAX_WINDOW_BOUNDARIES:
                self._scalar_span(pcs, values, event_ids, index_columns,
                                  accumulator, start, stop)
                return
            ids = event_ids[start:stop]
            resident = accumulator.resident[ids]
            hashed = (np.flatnonzero(~resident) if shielding
                      else np.arange(stop - start))
            if not len(hashed):
                accumulator.bulk_hits(ids)
                return
            # Every table is incremented on every hash event, so the
            # counter a given event sees is snapshot + per-index rank,
            # aliasing included -- exact with no per-tuple analysis.
            minimum = None
            estimate = None
            hash_index_rows = []
            for table, column in zip(counter_arrays, index_columns):
                row = column[start:stop][hashed]
                hash_index_rows.append(row)
                occurrence = _occurrence_numbers(row)
                base = table[row]
                before = np.minimum(base + occurrence - 1, max_value)
                after = np.minimum(base + occurrence, max_value)
                if minimum is None:
                    minimum, estimate = before, after
                else:
                    np.minimum(minimum, before, out=minimum)
                    np.minimum(estimate, after, out=estimate)
            attempts = (minimum < threshold) & (estimate >= threshold)
            if not shielding:
                attempts &= ~resident[hashed]
            attempt_positions = np.flatnonzero(attempts)
            if not len(attempt_positions) or accumulator.saturated:
                if len(attempt_positions):
                    stats.rejected_promotions += len(attempt_positions)
                    self.accumulator.rejected_inserts += \
                        len(attempt_positions)
                for table, row in zip(counter_arrays, hash_index_rows):
                    _bulk_increment(table, row, max_value)
                stats.hash_updates += num_tables * len(hashed)
                accumulator.bulk_hits(ids[resident])
                return
            cut = int(attempt_positions[0])
            boundary = int(hashed[cut])
            for table, row in zip(counter_arrays, hash_index_rows):
                _bulk_increment(table, row[:cut], max_value)
            stats.hash_updates += num_tables * cut
            accumulator.bulk_hits(ids[:boundary][resident[:boundary]])
            self._scalar_span(pcs, values, event_ids, index_columns,
                              accumulator, start + boundary,
                              start + boundary + 1)
            boundaries += 1
            start += boundary + 1

    # -- conservative update (C1) -------------------------------------

    def _window_conservative(self, pcs, values, event_ids, index_columns,
                             accumulator, start, stop):
        threshold = self.interval.threshold_count
        max_value = self.tables[0].max_value
        counter_arrays = [table.array for table in self.tables]
        shielding = self.config.shielding
        stats = self.stats
        boundaries = 0
        while start < stop:
            if boundaries >= MAX_WINDOW_BOUNDARIES:
                self._scalar_span(pcs, values, event_ids, index_columns,
                                  accumulator, start, stop)
                return
            ids = event_ids[start:stop]
            resident = accumulator.resident[ids]
            hashed = (np.flatnonzero(~resident) if shielding
                      else np.arange(stop - start))
            if not len(hashed):
                accumulator.bulk_hits(ids)
                return
            if len(hashed) < MIN_SOLVER_SPAN:
                self._scalar_span(pcs, values, event_ids, index_columns,
                                  accumulator, start, stop)
                return
            span = _ConservativeSpan(
                [column[start:stop][hashed] for column in index_columns],
                counter_arrays, max_value)
            if span.overflow:
                self._scalar_span(pcs, values, event_ids, index_columns,
                                  accumulator, start, stop)
                return
            minima = span.solve()
            # A crossing is minimum < threshold <= min(minimum + 1, cap),
            # which collapses to minimum == threshold - 1 and cannot
            # happen at all once the threshold exceeds the counter cap.
            if threshold <= max_value:
                attempts = minima == threshold - 1
                if not shielding:
                    attempts &= ~resident[hashed]
                attempt_positions = np.flatnonzero(attempts)
            else:
                attempt_positions = np.empty(0, dtype=np.int64)
            if not len(attempt_positions) or accumulator.saturated:
                if len(attempt_positions):
                    stats.rejected_promotions += len(attempt_positions)
                    self.accumulator.rejected_inserts += \
                        len(attempt_positions)
                stats.hash_updates += span.apply(len(hashed))
                accumulator.bulk_hits(ids[resident])
                return
            cut = int(attempt_positions[0])
            boundary = int(hashed[cut])
            stats.hash_updates += span.apply(cut)
            accumulator.bulk_hits(ids[:boundary][resident[:boundary]])
            self._scalar_span(pcs, values, event_ids, index_columns,
                              accumulator, start + boundary,
                              start + boundary + 1)
            boundaries += 1
            start += boundary + 1

    def _scalar_span(self, pcs, values, event_ids, index_columns,
                     accumulator, start, stop):
        """Exact per-event reference over ``[start, stop)``."""
        accumulator.flush()
        threshold = self.interval.threshold_count
        max_value = self.tables[0].max_value
        counter_arrays = [table.array for table in self.tables]
        num_tables = len(counter_arrays)
        shielding = self.config.shielding
        resetting = self.config.resetting
        conservative = self.config.conservative_update
        stats = self.stats
        entries = self.accumulator.raw_entries()
        for position in range(start, stop):
            event = (int(pcs[position]), int(values[position]))
            entry = entries.get(event)
            if shielding and entry is not None:
                accumulator.hit_entry(entry)
                continue
            row = [int(column[position]) for column in index_columns]
            if conservative:
                current = [int(counter_arrays[t][row[t]])
                           for t in range(num_tables)]
                minimum = min(current)
                estimate = minimum + 1
                if estimate > max_value:
                    estimate = max_value
                for t in range(num_tables):
                    if current[t] == minimum:
                        bumped = current[t] + 1
                        if bumped > max_value:
                            bumped = max_value
                        counter_arrays[t][row[t]] = bumped
                        stats.hash_updates += 1
            else:
                minimum = max_value
                estimate = max_value
                for t in range(num_tables):
                    before = int(counter_arrays[t][row[t]])
                    bumped = before + 1
                    if bumped > max_value:
                        bumped = max_value
                    counter_arrays[t][row[t]] = bumped
                    stats.hash_updates += 1
                    if before < minimum:
                        minimum = before
                    if bumped < estimate:
                        estimate = bumped
            if minimum < threshold <= estimate and entry is None:
                if accumulator.insert(event, int(event_ids[position]),
                                      estimate):
                    stats.promotions += 1
                    if resetting:
                        for t in range(num_tables):
                            counter_arrays[t][row[t]] = 0
                else:
                    stats.rejected_promotions += 1
            if not shielding and entry is not None:
                accumulator.hit_entry(entry)
