"""The multi-hash interval profiler (Section 6).

``n`` tagless counter tables, each with its own independent hash
function, share the total counter budget (``2K/n`` entries per table in
the paper's study).  A tuple is promoted to the accumulator only when
**all** of its ``n`` counters have reached the candidate threshold; two
tuples that alias in one table almost certainly diverge in another, so
false positives fall roughly as the n-th power of the single-table
aliasing probability (Section 6.2, reproduced in
:mod:`repro.core.theory`).

Optimizations:

* **conservative update** (``C1``, after Estan & Varghese) -- only the
  counter(s) holding the minimum of the tuple's ``n`` values are
  incremented.  Without aliasing all ``n`` counters are identical, so
  nothing is lost; with aliasing the inflated counters stop absorbing
  increments, sharply reducing over-count error.
* **immediate reset** (``R1``) -- all ``n`` counters are zeroed on
  promotion.  The paper finds this *hurts* the multi-hash design (it
  manufactures false negatives for tuples that legitimately shared
  counters), so the best configuration is ``C1-R0``.

Shielding and retaining behave exactly as in the single-hash design.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .base import HardwareProfiler
from .config import ProfilerConfig
from .hashing import HashFunctionFamily, TupleHashFunction
from .tables import AccumulatorTable, CounterTable
from .tuples import ProfileTuple


class MultiHashProfiler(HardwareProfiler):
    """Interval-based profiler with ``n`` hash tables (Figure 8).

    With ``num_tables == 1`` this degenerates to the single-hash design
    (and is tested to agree with :class:`SingleHashProfiler` when
    conservative update is off, since with one table C1 == C0).
    """

    def __init__(self, config: ProfilerConfig,
                 hash_functions: Optional[Sequence[TupleHashFunction]] = None
                 ) -> None:
        super().__init__(config.interval)
        self.config = config
        #: True when the caller supplied explicit hash functions; the
        #: batched runner only folds profilers whose functions derive
        #: from the config seed (and are therefore shared per seed).
        self.custom_hash = hash_functions is not None
        if hash_functions is None:
            family = HashFunctionFamily(config.index_bits,
                                        seed=config.hash_seed)
            hash_functions = family.take(config.num_tables)
        if len(hash_functions) != config.num_tables:
            raise ValueError(
                f"expected {config.num_tables} hash functions, got "
                f"{len(hash_functions)}")
        for function in hash_functions:
            if function.table_size != config.entries_per_table:
                raise ValueError(
                    f"hash function addresses {function.table_size} "
                    f"entries but each table has "
                    f"{config.entries_per_table}")
        self.hash_functions = list(hash_functions)
        self.tables: List[CounterTable] = [
            CounterTable(config.entries_per_table, config.counter_bits)
            for _ in range(config.num_tables)
        ]
        self.accumulator = AccumulatorTable(config.accumulator_capacity)
        self._index_cache: Dict[ProfileTuple, Tuple[int, ...]] = {}

    @property
    def name(self) -> str:
        return self.config.label

    def observe(self, event: ProfileTuple) -> None:
        self._count_event()
        threshold = self.interval.threshold_count

        # Residency is decided before the event can promote itself: a
        # promotion's initial count already includes this occurrence,
        # so the unshielded hit below must not count it again.
        resident = event in self.accumulator

        if self.config.shielding and resident:
            self.accumulator.record_hit(event, threshold)
            self.stats.accumulator_hits += 1
            return

        indices = self._indices_of(event)
        tables = self.tables
        if self.config.conservative_update:
            # Increment only the minimum counter(s); ties all increment.
            values = [tables[t].read(indices[t])
                      for t in range(len(tables))]
            minimum = min(values)
            estimate = min(minimum + 1, tables[0].max_value)
            for t, value in enumerate(values):
                if value == minimum:
                    tables[t].increment(indices[t])
                    self.stats.hash_updates += 1
        else:
            minimum = tables[0].max_value
            estimate = tables[0].max_value
            for t in range(len(tables)):
                before = tables[t].read(indices[t])
                after = tables[t].increment(indices[t])
                self.stats.hash_updates += 1
                if before < minimum:
                    minimum = before
                if after < estimate:
                    estimate = after

        # Promotion fires when this event makes the minimum counter
        # *cross* the threshold ("only when all of its corresponding
        # counters ... cross the threshold candidate value", Section
        # 6.1).  Transition detection -- not a plain >= check -- is
        # what keeps tuples whose counters were pushed over the
        # threshold by earlier aliases from piggybacking in wholesale;
        # when aliases push the minimum *past* the threshold between a
        # tuple's occurrences, the crossing is missed entirely and the
        # tuple becomes a false negative (the Figure 12 failure mode of
        # many-table configurations).
        if minimum < threshold <= estimate and not resident:
            self._promote(event, indices, estimate)

        if not self.config.shielding and resident:
            self.accumulator.record_hit(event, threshold)
            self.stats.accumulator_hits += 1

    def observe_chunk(self, events, index_lists=None):
        """Batched :meth:`observe` with precomputed per-table indices.

        Behaviourally identical to per-event :meth:`observe` (verified
        by the equivalence tests); the tight loop avoids per-event
        Python hashing, the dominant cost on million-event intervals.
        """
        if index_lists is None:
            for event in events:
                self.observe(event)
            return
        if len(index_lists) != len(self.tables):
            raise ValueError(
                f"expected {len(self.tables)} index lists, got "
                f"{len(index_lists)}")
        threshold = self.interval.threshold_count
        resident = self.accumulator.raw_entries()
        counter_lists = [table._counters for table in self.tables]
        max_value = self.tables[0].max_value
        shielding = self.config.shielding
        resetting = self.config.resetting
        conservative = self.config.conservative_update
        num_tables = len(counter_lists)
        table_range = range(num_tables)
        stats = self.stats
        accumulator_hits = 0
        hash_updates = 0
        for position, event in enumerate(events):
            entry = resident.get(event)
            if shielding and entry is not None:
                entry.count += 1
                if entry.replaceable and entry.count >= threshold:
                    entry.replaceable = False
                    self.accumulator.replaceable_count -= 1
                accumulator_hits += 1
                continue
            if conservative:
                values = [counter_lists[t][index_lists[t][position]]
                          for t in table_range]
                minimum = min(values)
                estimate = minimum + 1
                if estimate > max_value:
                    estimate = max_value
                for t in table_range:
                    if values[t] == minimum:
                        index = index_lists[t][position]
                        bumped = counter_lists[t][index] + 1
                        if bumped > max_value:
                            bumped = max_value
                        counter_lists[t][index] = bumped
                        hash_updates += 1
            else:
                minimum = max_value
                estimate = max_value
                for t in table_range:
                    index = index_lists[t][position]
                    before = counter_lists[t][index]
                    bumped = before + 1
                    if bumped > max_value:
                        bumped = max_value
                    counter_lists[t][index] = bumped
                    hash_updates += 1
                    if before < minimum:
                        minimum = before
                    if bumped < estimate:
                        estimate = bumped
            if minimum < threshold <= estimate and entry is None:
                if self.accumulator.insert(event, initial_count=estimate):
                    stats.promotions += 1
                    if resetting:
                        for t in table_range:
                            counter_lists[t][index_lists[t][position]] = 0
                else:
                    stats.rejected_promotions += 1
            if not shielding and entry is not None:
                entry.count += 1
                if entry.replaceable and entry.count >= threshold:
                    entry.replaceable = False
                    self.accumulator.replaceable_count -= 1
                accumulator_hits += 1
        stats.accumulator_hits += accumulator_hits
        stats.hash_updates += hash_updates
        stats.events += len(events)
        self._events_this_interval += len(events)

    def estimate(self, event: ProfileTuple) -> int:
        """Current sketch estimate for *event*: the minimum counter.

        This is the count-min estimate; exposed for the extension
        examples that use the multi-hash front end as a standalone
        frequency sketch.
        """
        indices = self._indices_of(event)
        return min(self.tables[t].read(indices[t])
                   for t in range(len(self.tables)))

    def _promote(self, event: ProfileTuple, indices: Tuple[int, ...],
                 estimate: int) -> None:
        if event in self.accumulator:
            return
        if self.accumulator.insert(event, initial_count=estimate):
            self.stats.promotions += 1
            if self.config.resetting:
                for t, index in enumerate(indices):
                    self.tables[t].reset(index)
        else:
            self.stats.rejected_promotions += 1

    def _indices_of(self, event: ProfileTuple) -> Tuple[int, ...]:
        cache = self._index_cache
        indices = cache.get(event)
        if indices is None:
            indices = tuple(function(event)
                            for function in self.hash_functions)
            cache[event] = indices
        return indices

    def _close_interval(self) -> Dict[ProfileTuple, int]:
        report = self.accumulator.end_interval(
            self.interval.threshold_count, retaining=self.config.retaining)
        for table in self.tables:
            table.flush()
        self.stats.evictions = self.accumulator.evictions
        return report


def build_profiler(config: ProfilerConfig) -> HardwareProfiler:
    """Construct the profiler matching *config*.

    Single-table configurations build a single-hash profiler
    (conservative update is meaningless with one table and must be
    off); multi-table configurations build a multi-hash profiler.
    ``config.resolved_backend`` selects between the scalar reference
    classes and the bit-identical NumPy kernels of
    :mod:`repro.core.kernels`; counters too wide for the int64 kernels
    fall back to scalar.
    """
    from .single_hash import SingleHashProfiler

    single = config.num_tables == 1 and not config.conservative_update
    backend = config.resolved_backend
    if backend in ("vectorized", "batched"):
        from .kernels import (MAX_KERNEL_COUNTER_BITS,
                              VectorizedMultiHashProfiler,
                              VectorizedSingleHashProfiler)
        if config.counter_bits <= MAX_KERNEL_COUNTER_BITS:
            profiler = (VectorizedSingleHashProfiler(config) if single
                        else VectorizedMultiHashProfiler(config))
            if backend == "batched":
                # Same kernels, same state layout; the flag is what
                # drivers (session feeder, service worker) use to fold
                # this profiler's chunks into a cross-session dispatch.
                profiler.batched_dispatch = True
            return profiler
    if single:
        return SingleHashProfiler(config)
    return MultiHashProfiler(config)
