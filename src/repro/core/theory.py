"""Theoretical false-positive analysis of the multi-hash profiler.

Section 6.2 derives a loose upper bound on the probability that an
input tuple becomes a false positive.  With a candidate threshold of
``t`` percent there can be at most ``100/t`` counters at or above the
threshold.  A single table of ``Z`` counters therefore turns a tuple
into a false positive with probability at most ``100/(tZ)``.  Splitting
the same ``Z`` counters over ``n`` independent tables of ``Z/n``
entries, a tuple must alias onto an above-threshold counter in *every*
table::

    p(n) = (100 * n / (t * Z)) ** n

The bound falls with ``n`` up to an optimum and then rises again as the
per-table aliasing probability grows -- the shape behind Figure 9 and
the empirical optimum of 4 tables in Figures 10-12.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: Total-entry curves plotted in Figure 9.
FIGURE9_ENTRY_CURVES = (500, 1000, 2000, 4000, 8000)

#: Table counts on Figure 9's x-axis.
FIGURE9_TABLE_COUNTS = tuple(range(1, 17))


def false_positive_probability(num_tables: int, total_entries: int,
                               threshold_percent: float) -> float:
    """Upper bound on the per-tuple false-positive probability.

    Parameters mirror the paper: *total_entries* counters split evenly
    over *num_tables* tables, with a candidate threshold of
    *threshold_percent* (``1.0`` means 1 %).  The returned probability
    is clamped to 1.0, since the derivation is a union-bound style
    argument that can exceed one when a single table is overloaded.
    """
    if num_tables < 1:
        raise ValueError(f"num_tables must be >= 1, got {num_tables}")
    if total_entries < num_tables:
        raise ValueError(
            f"total_entries ({total_entries}) must provide at least one "
            f"counter per table ({num_tables})")
    if threshold_percent <= 0:
        raise ValueError(f"threshold_percent must be positive, "
                         f"got {threshold_percent}")
    per_table = 100.0 * num_tables / (threshold_percent * total_entries)
    return min(1.0, per_table ** num_tables)


def false_positive_curve(total_entries: int,
                         threshold_percent: float = 1.0,
                         table_counts: Sequence[int] = FIGURE9_TABLE_COUNTS
                         ) -> List[float]:
    """One Figure 9 curve: FP probability for each table count."""
    return [false_positive_probability(n, total_entries, threshold_percent)
            for n in table_counts]


def figure9_curves(threshold_percent: float = 1.0,
                   entry_curves: Sequence[int] = FIGURE9_ENTRY_CURVES,
                   table_counts: Sequence[int] = FIGURE9_TABLE_COUNTS
                   ) -> Dict[int, List[float]]:
    """All Figure 9 curves keyed by total entry count."""
    return {entries: false_positive_curve(entries, threshold_percent,
                                          table_counts)
            for entries in entry_curves}


def optimal_table_count(total_entries: int,
                        threshold_percent: float = 1.0,
                        max_tables: int = 64) -> int:
    """Table count minimizing the bound for a fixed counter budget.

    The continuous optimum of ``(an)^n`` with ``a = 100/(tZ)`` is
    ``n = 1/(a e)``; this searches the integer neighbourhood (bounded by
    *max_tables* and by one counter per table).
    """
    best_n = 1
    best_p = false_positive_probability(1, total_entries,
                                        threshold_percent)
    limit = min(max_tables, total_entries)
    for n in range(2, limit + 1):
        p = false_positive_probability(n, total_entries, threshold_percent)
        if p < best_p:
            best_n, best_p = n, p
    return best_n


def continuous_optimal_table_count(total_entries: int,
                                   threshold_percent: float = 1.0) -> float:
    """Closed-form continuous optimum ``n* = tZ / (100 e)``.

    Exposed so tests can check the integer search lands within one of
    the analytic optimum.
    """
    alpha = 100.0 / (threshold_percent * total_entries)
    return 1.0 / (alpha * math.e)
