"""Hardware table structures: tagless counter tables and the accumulator.

Two structures make up every profiler in the paper:

* :class:`CounterTable` -- a tagless, direct-indexed array of saturating
  counters (the "hash table" of Figures 2 and 8).  Having no tags it is
  cheap (3-byte counters in the paper) but suffers aliasing.
* :class:`AccumulatorTable` -- a small fully-associative, tagged table
  that accumulates exact counts for tuples promoted out of the counter
  table(s).  It implements the paper's *shielding* (member tuples bypass
  the hash tables), *retaining* (above-threshold entries survive into
  the next interval, replaceable, with counts reset to zero) and the
  allocation policy "empty entries are allocated first followed by
  replaceable entries" (Section 5.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .tuples import ProfileTuple


class CounterTable:
    """A tagless table of saturating counters.

    Models the paper's hash table: ``size`` counters of ``counter_bits``
    bits each.  Counters saturate at their maximum value instead of
    wrapping, as a hardware counter would be built to do.
    """

    __slots__ = ("size", "counter_bits", "max_value", "_counters")

    def __init__(self, size: int, counter_bits: int = 24) -> None:
        if size <= 0:
            raise ValueError(f"table size must be positive, got {size}")
        if counter_bits <= 0:
            raise ValueError(
                f"counter_bits must be positive, got {counter_bits}")
        self.size = size
        self.counter_bits = counter_bits
        self.max_value = (1 << counter_bits) - 1
        self._counters: List[int] = [0] * size

    def read(self, index: int) -> int:
        """Current value of the counter at *index*."""
        return self._counters[index]

    def increment(self, index: int, amount: int = 1) -> int:
        """Add *amount* to the counter at *index*, saturating.

        Returns the post-increment value.
        """
        value = self._counters[index] + amount
        if value > self.max_value:
            value = self.max_value
        self._counters[index] = value
        return value

    def reset(self, index: int) -> None:
        """Zero one counter (the `resetting` optimization)."""
        self._counters[index] = 0

    def flush(self) -> None:
        """Zero every counter (done at the end of each interval)."""
        for index in range(self.size):
            self._counters[index] = 0

    def occupancy(self) -> int:
        """Number of non-zero counters (diagnostic)."""
        return sum(1 for value in self._counters if value)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self._counters)


@dataclass
class AccumulatorEntry:
    """One fully-associative accumulator entry.

    ``replaceable`` distinguishes freshly promoted entries (pinned for
    the rest of the interval) from entries retained across an interval
    boundary, which may be evicted until they re-cross the threshold.
    ``stamp`` is a monotonic allocation counter used to break eviction
    ties (oldest first).
    """

    event: ProfileTuple
    count: int
    replaceable: bool
    stamp: int


class AccumulatorTable:
    """The fully-associative candidate table of Figures 2 and 8.

    The capacity is normally ``floor(1 / threshold)`` so that true
    candidates can never overflow it (Section 5.1); promotion attempts
    beyond capacity when no entry is replaceable are rejected and counted
    in :attr:`rejected_inserts`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[ProfileTuple, AccumulatorEntry] = {}
        self._next_stamp = 0
        #: Promotions dropped because the table was full of pinned entries.
        self.rejected_inserts = 0
        #: Retained entries evicted to make room for a new promotion.
        self.evictions = 0
        #: Live count of replaceable entries, maintained at every flag
        #: flip (including the chunked/batched fast paths, which mutate
        #: entry flags directly) so kernel dispatch never rescans the
        #: table to seed its saturation check.
        self.replaceable_count = 0
        #: Structural version: bumped whenever the *key set* changes
        #: (insert, eviction, interval flush).  Flag/count mutations
        #: leave it alone, so the batched runner can cache the
        #: materialized key array across ticks.
        self.version = 0
        #: ``(version, packed key array, entry list)`` cache owned by
        #: the batched runner; ``None`` until first used.
        self.keys_cache = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, event: ProfileTuple) -> bool:
        return event in self._entries

    def lookup(self, event: ProfileTuple) -> Optional[AccumulatorEntry]:
        """Associative lookup; ``None`` on a miss."""
        return self._entries.get(event)

    def record_hit(self, event: ProfileTuple, threshold_count: int) -> int:
        """Count one occurrence of a resident tuple.

        A retained (replaceable) entry whose count re-crosses
        *threshold_count* is unmarked as replaceable for the rest of the
        interval (Section 5.4.1).  Returns the new count.
        """
        entry = self._entries[event]
        entry.count += 1
        if entry.replaceable and entry.count >= threshold_count:
            entry.replaceable = False
            self.replaceable_count -= 1
        return entry.count

    def insert(self, event: ProfileTuple, initial_count: int) -> bool:
        """Promote *event* into the table, pinned for this interval.

        Empty slots are used first; otherwise the lowest-count (then
        oldest) replaceable entry is evicted.  Returns ``False`` when the
        table is full of pinned entries and the promotion is dropped
        ("if there are no more free entries ... the event is not put
        into the accumulator table", Section 5.2).
        """
        inserted, _ = self.insert_tracked(event, initial_count)
        return inserted

    def insert_tracked(self, event: ProfileTuple, initial_count: int
                       ) -> Tuple[bool, Optional[ProfileTuple]]:
        """:meth:`insert` that also reports the evicted tuple, if any.

        The vectorized kernels mirror residency in chunk-local flag
        arrays and need to know which tuple an insert displaced;
        :meth:`insert` is implemented on top of this.
        """
        if event in self._entries:
            raise ValueError(f"tuple {event!r} is already resident")
        evicted: Optional[ProfileTuple] = None
        if len(self._entries) >= self.capacity:
            victim = self._pick_victim()
            if victim is None:
                self.rejected_inserts += 1
                return False, None
            del self._entries[victim.event]
            self.evictions += 1
            self.replaceable_count -= 1
            evicted = victim.event
        self._entries[event] = AccumulatorEntry(
            event=event, count=initial_count, replaceable=False,
            stamp=self._next_stamp)
        self._next_stamp += 1
        self.version += 1
        return True, evicted

    def _pick_victim(self) -> Optional[AccumulatorEntry]:
        """Lowest-count, then oldest, replaceable entry; ``None`` if all
        entries are pinned."""
        victim: Optional[AccumulatorEntry] = None
        for entry in self._entries.values():
            if not entry.replaceable:
                continue
            if (victim is None
                    or entry.count < victim.count
                    or (entry.count == victim.count
                        and entry.stamp < victim.stamp)):
                victim = entry
        return victim

    def end_interval(self, threshold_count: int,
                     retaining: bool) -> Dict[ProfileTuple, int]:
        """Close the interval: report candidates and prepare the table.

        Entries with ``count >= threshold_count`` are the interval's
        reported candidates.  With *retaining* those entries stay
        resident -- marked replaceable, counts reset to zero -- and
        everything below threshold is flushed; without retaining the
        whole table is flushed (Section 5.4.1).

        Returns the reported ``{tuple: count}`` profile.
        """
        report = {entry.event: entry.count
                  for entry in self._entries.values()
                  if entry.count >= threshold_count}
        if retaining:
            flushed = [event for event, entry in self._entries.items()
                       if entry.count < threshold_count]
            for event in flushed:
                del self._entries[event]
            for entry in self._entries.values():
                entry.count = 0
                entry.replaceable = True
            self.replaceable_count = len(self._entries)
        else:
            self._entries.clear()
            self.replaceable_count = 0
        self.version += 1
        return report

    def resident_events(self) -> Tuple[ProfileTuple, ...]:
        """Snapshot of the tuples currently resident (diagnostic)."""
        return tuple(self._entries)

    def raw_entries(self) -> Dict[ProfileTuple, AccumulatorEntry]:
        """The live associative store, for the profilers' batched fast
        path.  Callers must preserve the table's invariants: mutate
        counts/flags only through the semantics of :meth:`record_hit`,
        and never add or remove entries directly."""
        return self._entries
