"""Core profiling architectures from the paper.

Public surface:

* event naming -- :func:`~repro.core.tuples.value_tuple`,
  :func:`~repro.core.tuples.edge_tuple`
* operating points -- :data:`~repro.core.config.SHORT_INTERVAL`,
  :data:`~repro.core.config.LONG_INTERVAL`,
  :class:`~repro.core.config.IntervalSpec`,
  :class:`~repro.core.config.ProfilerConfig`
* profilers -- :class:`~repro.core.perfect.PerfectProfiler`,
  :class:`~repro.core.single_hash.SingleHashProfiler`,
  :class:`~repro.core.multi_hash.MultiHashProfiler`,
  :class:`~repro.core.stratified.StratifiedSampler`
* analysis -- :mod:`repro.core.theory`, :mod:`repro.core.area`
"""

from .base import HardwareProfiler, IntervalProfile, ProfilerStats
from .config import (BACKEND_ENV, BACKENDS, DEFAULT_COUNTER_BITS,
                     DEFAULT_TOTAL_ENTRIES, LONG_INTERVAL, SHORT_INTERVAL,
                     IntervalSpec, ProfilerConfig, best_multi_hash,
                     best_single_hash)
from .hotspot import HotSpotConfig, HotSpotDetector
from .kernels import (NumpyCounterTable, VectorizedMultiHashProfiler,
                      VectorizedSingleHashProfiler)
from .tagged_table import (TaggedTableConfig, TaggedTableProfiler,
                           area_equivalent_config)
from .hashing import HashFunctionFamily, TupleHashFunction, flip, xor_fold
from .multi_hash import MultiHashProfiler, build_profiler
from .perfect import PerfectProfiler
from .single_hash import SingleHashProfiler
from .stratified import StratifiedConfig, StratifiedSampler
from .tables import AccumulatorEntry, AccumulatorTable, CounterTable
from .tuples import EventKind, ProfileTuple, edge_tuple, make_tuple, value_tuple

__all__ = [
    "area_equivalent_config",
    "TaggedTableProfiler",
    "TaggedTableConfig",
    "HotSpotDetector",
    "HotSpotConfig",
    "AccumulatorEntry",
    "AccumulatorTable",
    "BACKENDS",
    "BACKEND_ENV",
    "CounterTable",
    "NumpyCounterTable",
    "VectorizedMultiHashProfiler",
    "VectorizedSingleHashProfiler",
    "DEFAULT_COUNTER_BITS",
    "DEFAULT_TOTAL_ENTRIES",
    "EventKind",
    "HardwareProfiler",
    "HashFunctionFamily",
    "IntervalProfile",
    "IntervalSpec",
    "LONG_INTERVAL",
    "MultiHashProfiler",
    "PerfectProfiler",
    "ProfileTuple",
    "ProfilerConfig",
    "ProfilerStats",
    "SHORT_INTERVAL",
    "SingleHashProfiler",
    "StratifiedConfig",
    "StratifiedSampler",
    "TupleHashFunction",
    "best_multi_hash",
    "best_single_hash",
    "build_profiler",
    "edge_tuple",
    "flip",
    "make_tuple",
    "value_tuple",
    "xor_fold",
]
