"""The profiler interface and per-interval results.

Every profiler -- perfect, single-hash, multi-hash, and the stratified
sampler baseline -- consumes one :data:`~repro.core.tuples.ProfileTuple`
per :meth:`HardwareProfiler.observe` call and, when asked to close an
interval, returns an :class:`IntervalProfile`: the set of candidate
tuples it reports for that interval together with their counted
frequencies.  Error analysis (:mod:`repro.metrics`) compares these
profiles against the perfect profiler's.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .config import IntervalSpec
from .tuples import ProfileTuple


@dataclass
class IntervalProfile:
    """What one profiler reported for one profile interval.

    Attributes
    ----------
    index:
        Zero-based interval ordinal within the run (the paper's
        "profile cycle").
    candidates:
        Reported candidate tuples with the frequency the profiler
        counted for each (``f_h`` in the paper's error formula; for the
        perfect profiler these are the true frequencies ``f_p``).
    events_observed:
        Number of events fed during the interval (equals the interval
        length except possibly for a truncated final interval).
    """

    index: int
    candidates: Dict[ProfileTuple, int]
    events_observed: int

    def frequency(self, event: ProfileTuple) -> int:
        """Reported frequency of *event* (0 when not reported).

        The paper assigns ``f_h = 0`` to candidates missing from the
        hardware profile (false negatives), which this default mirrors.
        """
        return self.candidates.get(event, 0)

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass
class ProfilerStats:
    """Cumulative diagnostics over a profiler's whole run.

    These are not part of the paper's metrics but make the mechanisms
    observable: how often shielding short-circuits the hash tables, how
    often promotion fires, and whether the accumulator's worst-case
    sizing bound was ever stressed.
    """

    events: int = 0
    accumulator_hits: int = 0
    hash_updates: int = 0
    promotions: int = 0
    rejected_promotions: int = 0
    evictions: int = 0
    intervals: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for report tables."""
        return {
            "events": self.events,
            "accumulator_hits": self.accumulator_hits,
            "hash_updates": self.hash_updates,
            "promotions": self.promotions,
            "rejected_promotions": self.rejected_promotions,
            "evictions": self.evictions,
            "intervals": self.intervals,
        }


class HardwareProfiler(abc.ABC):
    """Abstract interval-based profiler.

    Subclasses implement :meth:`observe` (one event) and
    :meth:`_close_interval` (report candidates and reset interval
    state).  The base class tracks interval accounting so all profilers
    agree on interval boundaries.
    """

    #: True when :meth:`observe_array_chunk` is a native batch kernel
    #: (see :mod:`repro.core.kernels`); the session feeder then skips
    #: materializing per-event tuple lists entirely.
    supports_array_chunks: bool = False

    #: True when this instance opted into cross-session batch dispatch
    #: (``backend="batched"``): drivers collect its chunks and hand
    #: them to a :class:`repro.core.batched.BatchedKernelRunner`
    #: alongside other tenants' instead of dispatching per profiler.
    batched_dispatch: bool = False

    def __init__(self, interval: IntervalSpec) -> None:
        self.interval = interval
        self._interval_index = 0
        self._events_this_interval = 0
        self.stats = ProfilerStats()

    @property
    def name(self) -> str:
        """Human-readable profiler label for reports."""
        return type(self).__name__

    @abc.abstractmethod
    def observe(self, event: ProfileTuple) -> None:
        """Feed one profiling event.

        Implementations must call :meth:`_count_event` exactly once.
        """

    @abc.abstractmethod
    def _close_interval(self) -> Dict[ProfileTuple, int]:
        """Report this interval's candidates and reset interval state."""

    def _count_event(self) -> None:
        self._events_this_interval += 1
        self.stats.events += 1

    def end_interval(self) -> IntervalProfile:
        """Close the current interval and return its profile.

        The caller (normally :class:`~repro.profiling.session.ProfilingSession`)
        decides where interval boundaries fall; the profiler itself
        never ends intervals implicitly, mirroring a hardware interval
        counter external to the tables.
        """
        profile = IntervalProfile(
            index=self._interval_index,
            candidates=self._close_interval(),
            events_observed=self._events_this_interval,
        )
        self._interval_index += 1
        self._events_this_interval = 0
        self.stats.intervals += 1
        return profile

    def observe_chunk(self, events: List[ProfileTuple],
                      index_lists: Optional[List[List[int]]] = None) -> None:
        """Feed a batch of events, optionally with precomputed indices.

        *index_lists* carries one list per hash table, each holding the
        table index of every event in *events*, computed vectorized by
        the session (see
        :meth:`repro.core.hashing.TupleHashFunction.index_array`).  The
        base implementation ignores the indices and loops
        :meth:`observe`; the hash-table profilers override this with a
        tight loop that is behaviourally identical (tested) but avoids
        per-event Python hashing.
        """
        for event in events:
            self.observe(event)

    def observe_array_chunk(self, pcs, values) -> None:
        """Feed parallel ``uint64`` PC/value arrays.

        The chunk never spans an interval boundary (the session feeder
        guarantees this).  The base implementation loops
        :meth:`observe`; kernel-backed profilers override it with a
        batch implementation and advertise it via
        :attr:`supports_array_chunks`.
        """
        for pc, value in zip(pcs.tolist(), values.tolist()):
            self.observe((pc, value))

    def run(self, events: Iterable[ProfileTuple]) -> List[IntervalProfile]:
        """Convenience driver: profile a finite stream.

        Feeds *events*, closing an interval every
        ``self.interval.length`` events.  A trailing partial interval is
        closed as well (with ``events_observed`` recording its true
        size) so short streams still produce a report.
        """
        profiles: List[IntervalProfile] = []
        length = self.interval.length
        pending = 0
        for event in events:
            self.observe(event)
            pending += 1
            if pending == length:
                profiles.append(self.end_interval())
                pending = 0
        if pending:
            profiles.append(self.end_interval())
        return profiles
