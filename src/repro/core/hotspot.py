"""Hot-spot detection baseline (Merten et al., Section 4.1.3).

Merten's hardware profiler watches *branches*: a tagged Branch Behavior
Buffer (BBB) counts per-branch executions, a branch whose counter
crosses a candidate threshold is flagged, and a global saturating
Hot Spot Detection Counter (HDC) moves down when an executed branch is
a flagged candidate and up when it is not.  When the HDC saturates low,
execution is inside a hot spot and the flagged branches describe it.

This is the paper's "identify program hot spots" relative: it finds
*regions*, not accurate per-event counts.  Implemented here over edge
tuples so it can run on the same streams; the per-interval "profile" it
reports is the flagged-branch counts, which the shared error metric
then scores -- quantifying the paper's point that hot-spot detectors
and accurate-profile catchers answer different questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .base import HardwareProfiler
from .config import IntervalSpec
from .hashing import HashFunctionFamily, TupleHashFunction
from .tuples import ProfileTuple


@dataclass(frozen=True)
class HotSpotConfig:
    """BBB geometry plus HDC dynamics.

    ``candidate_threshold`` is the BBB execution count that flags a
    branch.  The HDC starts at ``hdc_max``, moves down by
    ``hdc_decrement`` on candidate branches and up by ``hdc_increment``
    otherwise; at or below zero a hot spot is active.  (Merten's values:
    4K-entry BBB, 16 exec threshold, 2:1 down/up ratio.)
    """

    interval: IntervalSpec
    sets: int = 512
    ways: int = 2
    candidate_threshold: int = 16
    hdc_max: int = 8_192
    hdc_decrement: int = 2
    hdc_increment: int = 1

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError(f"sets must be a positive power of two, "
                             f"got {self.sets}")
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if self.candidate_threshold < 1:
            raise ValueError(f"candidate_threshold must be >= 1, got "
                             f"{self.candidate_threshold}")
        if self.hdc_max < 1 or self.hdc_decrement < 1 \
                or self.hdc_increment < 1:
            raise ValueError("HDC parameters must be positive")

    @property
    def index_bits(self) -> int:
        return self.sets.bit_length() - 1


@dataclass
class _BranchEntry:
    event: ProfileTuple
    executions: int
    candidate: bool
    stamp: int


class HotSpotDetector(HardwareProfiler):
    """Merten-style BBB + HDC hot-spot monitor over edge tuples."""

    def __init__(self, config: HotSpotConfig,
                 hash_function: Optional[TupleHashFunction] = None) -> None:
        super().__init__(config.interval)
        self.config = config
        self.hash_function = hash_function or HashFunctionFamily(
            config.index_bits, seed=0x40F5)[0]
        self._sets = [dict() for _ in range(config.sets)]
        self._next_stamp = 0
        self._hdc = config.hdc_max
        #: Events observed while the HDC was saturated low.
        self.hot_events = 0
        #: Number of entries into the hot state.
        self.hot_entries = 0
        self._in_hot_spot = False
        self._index_cache: Dict[ProfileTuple, int] = {}

    @property
    def name(self) -> str:
        return f"HotSpot(t={self.config.candidate_threshold})"

    @property
    def in_hot_spot(self) -> bool:
        """Whether the detector currently reports a hot spot."""
        return self._in_hot_spot

    def observe(self, event: ProfileTuple) -> None:
        self._count_event()
        entry = self._touch(event)
        config = self.config
        if entry is not None and entry.candidate:
            self._hdc = max(0, self._hdc - config.hdc_decrement)
        else:
            self._hdc = min(config.hdc_max,
                            self._hdc + config.hdc_increment)
        was_hot = self._in_hot_spot
        self._in_hot_spot = self._hdc == 0
        if self._in_hot_spot:
            self.hot_events += 1
            if not was_hot:
                self.hot_entries += 1

    def _touch(self, event: ProfileTuple) -> Optional[_BranchEntry]:
        index = self._index_of(event)
        ways = self._sets[index]
        entry = ways.get(event)
        if entry is not None:
            entry.executions += 1
            entry.stamp = self._next_stamp
            self._next_stamp += 1
            if (not entry.candidate
                    and entry.executions
                    >= self.config.candidate_threshold):
                entry.candidate = True
            self.stats.hash_updates += 1
            return entry
        if len(ways) >= self.config.ways:
            victim = min(ways.values(),
                         key=lambda e: (e.candidate, e.executions,
                                        e.stamp))
            if victim.candidate:
                return None  # set full of candidates: drop
            del ways[victim.event]
        ways[event] = _BranchEntry(event=event, executions=1,
                                   candidate=False,
                                   stamp=self._next_stamp)
        self._next_stamp += 1
        self.stats.hash_updates += 1
        return ways[event]

    def _close_interval(self) -> Dict[ProfileTuple, int]:
        report = {entry.event: entry.executions
                  for ways in self._sets for entry in ways.values()
                  if entry.candidate
                  and entry.executions >= self.interval.threshold_count}
        for index in range(len(self._sets)):
            self._sets[index] = {}
        self._hdc = self.config.hdc_max
        self._in_hot_spot = False
        return report

    def hot_fraction(self) -> float:
        """Share of observed events inside detected hot spots."""
        if not self.stats.events:
            return 0.0
        return self.hot_events / self.stats.events

    def _index_of(self, event: ProfileTuple) -> int:
        cache = self._index_cache
        index = cache.get(event)
        if index is None:
            index = self.hash_function(event)
            cache[event] = index
        return index
