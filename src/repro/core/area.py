"""Hardware area model.

Section 7 accounts the storage the design needs: "the size of the hash
table was 6 Kilobytes (2K entries of 3 byte counters), and the size of
the accumulator table was 1 KB for the 1 % candidate threshold and
10 KB for the 0.1 % candidate threshold" -- 7 to 16 KB total.  This
module reproduces that arithmetic for any configuration, counting the
bits of every structure:

* hash tables: ``total_entries x counter_bits`` (tagless);
* accumulator: per entry a tag wide enough to identify the tuple, a
  counter, a valid bit and a replaceable bit.

The default accumulator tag of 54 bits plus the 24-bit counter and two
state bits lands on the paper's 10 bytes per entry, matching its
1 KB / 10 KB figures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import ProfilerConfig
from .stratified import StratifiedConfig

#: Accumulator tag width that reproduces the paper's 10-byte entries.
DEFAULT_TAG_BITS = 54

#: Valid + replaceable state bits per accumulator entry.
ACCUMULATOR_STATE_BITS = 2


@dataclass(frozen=True)
class AreaReport:
    """Byte cost of each structure in a profiler configuration."""

    hash_table_bytes: int
    accumulator_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.hash_table_bytes + self.accumulator_bytes

    @property
    def total_kilobytes(self) -> float:
        return self.total_bytes / 1024.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hash_table_bytes": self.hash_table_bytes,
            "accumulator_bytes": self.accumulator_bytes,
            "total_bytes": self.total_bytes,
            "total_kilobytes": round(self.total_kilobytes, 3),
        }


def hash_table_bytes(config: ProfilerConfig) -> int:
    """Storage of all hash tables (tagless counters only).

    Splitting the counters over multiple tables does not change total
    storage -- the paper's design-space study holds area constant.
    """
    bits = config.total_entries * config.counter_bits
    return _bits_to_bytes(bits)


def accumulator_bytes(config: ProfilerConfig,
                      tag_bits: int = DEFAULT_TAG_BITS) -> int:
    """Storage of the fully-associative accumulator table."""
    entry_bits = tag_bits + config.counter_bits + ACCUMULATOR_STATE_BITS
    return _bits_to_bytes(config.accumulator_capacity * entry_bits)


def profiler_area(config: ProfilerConfig,
                  tag_bits: int = DEFAULT_TAG_BITS) -> AreaReport:
    """Full area report for an interval profiler configuration."""
    return AreaReport(hash_table_bytes=hash_table_bytes(config),
                      accumulator_bytes=accumulator_bytes(config, tag_bits))


def stratified_area(config: StratifiedConfig,
                    tag_bits: int = DEFAULT_TAG_BITS) -> AreaReport:
    """Area of the stratified-sampler baseline, for comparison.

    Each sampler entry carries a partial tag, a hit counter and a miss
    counter; the aggregation table carries full tags plus sample
    counters; the message buffer stores full tuples (two 64-bit fields).
    The buffer is reported in the accumulator column since it plays the
    candidate-holding role.
    """
    miss_counter_bits = max(1, config.miss_limit - 1).bit_length()
    sampler_bits = config.table_entries * (
        config.tag_bits + config.counter_bits + miss_counter_bits)
    aggregation_bits = config.aggregation_entries * (
        tag_bits + config.counter_bits)
    buffer_bits = config.buffer_entries * 128
    return AreaReport(
        hash_table_bytes=_bits_to_bytes(sampler_bits),
        accumulator_bytes=_bits_to_bytes(aggregation_bits + buffer_bits))


def _bits_to_bytes(bits: int) -> int:
    return (bits + 7) // 8
