"""The perfect (oracle) interval profiler.

Counts every tuple exactly and reports all tuples at or above the
candidate threshold each interval.  It is the reference against which
hardware profiles are scored (Section 5.5.1) and also powers the
candidate-tuple analysis of Figures 4-6, which needs exact per-interval
distinct-tuple and candidate counts.
"""

from __future__ import annotations

from typing import Dict

from .base import HardwareProfiler
from .config import IntervalSpec
from .tuples import ProfileTuple


class PerfectProfiler(HardwareProfiler):
    """Exact per-interval tuple counting (unbounded storage).

    Besides candidate reporting, it tracks the number of *distinct*
    tuples seen in the current interval (:attr:`distinct_this_interval`)
    and a running history of per-interval distinct counts
    (:attr:`distinct_history`) for the Figure 4 analysis.
    """

    def __init__(self, interval: IntervalSpec) -> None:
        super().__init__(interval)
        self._counts: Dict[ProfileTuple, int] = {}
        #: Distinct tuples seen in each closed interval, in order.
        self.distinct_history: list[int] = []

    @property
    def name(self) -> str:
        return "Perfect"

    @property
    def distinct_this_interval(self) -> int:
        """Distinct tuples observed so far in the open interval."""
        return len(self._counts)

    def observe(self, event: ProfileTuple) -> None:
        self._count_event()
        counts = self._counts
        counts[event] = counts.get(event, 0) + 1

    def interval_counts(self) -> Dict[ProfileTuple, int]:
        """Exact counts of every tuple in the open interval.

        Error analysis snapshots this *before* :meth:`end_interval` so
        false positives can be scored against their true sub-threshold
        frequency (Section 5.5.2).
        """
        return dict(self._counts)

    def _close_interval(self) -> Dict[ProfileTuple, int]:
        threshold = self.interval.threshold_count
        report = {event: count for event, count in self._counts.items()
                  if count >= threshold}
        self.distinct_history.append(len(self._counts))
        self._counts.clear()
        return report
