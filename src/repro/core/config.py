"""Profiler configuration objects.

Two parameters drive the whole interval-based design (Section 5.1):

* the **profile interval length** -- the number of profiling events per
  interval, and
* the **candidate threshold** -- the fraction of the interval length an
  event must reach to be promoted into the accumulator table.

Together they bound the accumulator table: at most
``floor(1 / threshold)`` distinct tuples can each account for at least
``threshold`` of an interval, so an accumulator of that many entries can
never overflow with true candidates (Section 5.1).  The paper's two
standard operating points are exposed as :data:`SHORT_INTERVAL`
(10,000 events at 1 %) and :data:`LONG_INTERVAL` (1,000,000 events at
0.1 %).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping

#: Hash-table counter width used throughout the paper's evaluation:
#: "2K entries of 3 byte counters" (Section 7).
DEFAULT_COUNTER_BITS = 24

#: Total number of hash-table counters in the paper's evaluation.
DEFAULT_TOTAL_ENTRIES = 2048

#: Valid :attr:`ProfilerConfig.backend` values.  ``auto`` defers to the
#: ``REPRO_BACKEND`` environment variable and otherwise picks the
#: vectorized kernels (:mod:`repro.core.kernels`).  ``batched`` builds
#: the same kernels but additionally opts the profiler into
#: cross-session batch dispatch (:mod:`repro.core.batched`): drivers
#: that hold chunks for several profilers at once fold them into one
#: NumPy call chain per tick.
BACKENDS = ("auto", "scalar", "vectorized", "batched")

#: Environment variable consulted by ``backend="auto"``; lets CI run
#: the whole suite under either backend without touching configs.
BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class IntervalSpec:
    """A profiling operating point: interval length plus threshold.

    Attributes
    ----------
    length:
        Number of profiling events per interval.
    threshold:
        Candidate threshold as a fraction of the interval length
        (``0.01`` means an event is a candidate when it accounts for at
        least 1 % of the interval).
    """

    length: int
    threshold: float

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"interval length must be positive, "
                             f"got {self.length}")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], "
                             f"got {self.threshold}")
        if self.threshold * self.length < 1.0:
            raise ValueError(
                f"threshold {self.threshold} is below one event per "
                f"interval of length {self.length}")

    @property
    def threshold_count(self) -> int:
        """Occurrences needed within one interval to become a candidate."""
        return max(1, math.ceil(self.threshold * self.length))

    @property
    def max_candidates(self) -> int:
        """Worst-case number of candidates in one interval.

        At most ``floor(length / threshold_count)`` tuples can each occur
        ``threshold_count`` times within ``length`` events.
        """
        return self.length // self.threshold_count

    def scaled(self, factor: float) -> "IntervalSpec":
        """Return a spec with the interval length scaled by *factor*.

        The threshold fraction is preserved, so the candidate structure
        (how many tuples cross, relative counts) is unchanged; only the
        absolute counts shrink.  Used by the fast test configurations.
        """
        return IntervalSpec(max(1, int(self.length * factor)),
                            self.threshold)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe) for manifests and wire protocols."""
        return {"length": self.length, "threshold": self.threshold}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntervalSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        unknown = set(data) - {"length", "threshold"}
        if unknown:
            raise ValueError(f"unknown IntervalSpec keys: "
                             f"{', '.join(sorted(unknown))}")
        return cls(length=int(data["length"]),
                   threshold=float(data["threshold"]))


#: 10,000-event intervals with a 1 % candidate threshold -- the paper's
#: "responsiveness" configuration (100 occurrences to become a candidate,
#: at most 100 candidates, 100-entry accumulator).
SHORT_INTERVAL = IntervalSpec(length=10_000, threshold=0.01)

#: 1,000,000-event intervals with a 0.1 % candidate threshold -- the
#: paper's "severe pressure" configuration (1,000 occurrences, up to
#: 1,000 candidates, 1,000-entry accumulator).
LONG_INTERVAL = IntervalSpec(length=1_000_000, threshold=0.001)


@dataclass(frozen=True)
class ProfilerConfig:
    """Full configuration of a hardware profiler instance.

    The paper's configuration shorthand maps onto flags as follows:

    * ``P0``/``P1`` -- :attr:`retaining` off/on (Section 5.4.1),
    * ``R0``/``R1`` -- :attr:`resetting` off/on (Sections 5.4.2, 6.1),
    * ``C0``/``C1`` -- :attr:`conservative_update` off/on (Section 6.1,
      multi-hash only),
    * the number of hash tables ``n`` -- :attr:`num_tables` (1 for the
      single-hash architecture of Section 5).

    ``total_entries`` counters are split evenly over the tables, exactly
    as in the paper's design-space study ("a multi-hash profiler with n
    hash-tables will have 2K/n entries in each hash-table").
    """

    interval: IntervalSpec = SHORT_INTERVAL
    total_entries: int = DEFAULT_TOTAL_ENTRIES
    num_tables: int = 1
    counter_bits: int = DEFAULT_COUNTER_BITS
    retaining: bool = True
    resetting: bool = False
    conservative_update: bool = False
    shielding: bool = True
    accumulator_entries: int | None = None
    hash_seed: int = 0x5EED
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(BACKENDS)}, "
                f"got {self.backend!r}")
        if self.num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, "
                             f"got {self.num_tables}")
        if self.total_entries < self.num_tables:
            raise ValueError(
                f"total_entries ({self.total_entries}) must cover at "
                f"least one counter per table ({self.num_tables})")
        if self.counter_bits < 1:
            raise ValueError(f"counter_bits must be positive, "
                             f"got {self.counter_bits}")
        per_table = self.total_entries // self.num_tables
        if per_table & (per_table - 1):
            raise ValueError(
                f"entries per table must be a power of two for the "
                f"xor-fold index, got {per_table} "
                f"({self.total_entries} over {self.num_tables} tables)")

    @property
    def entries_per_table(self) -> int:
        """Counters in each of the :attr:`num_tables` hash tables."""
        return self.total_entries // self.num_tables

    @property
    def index_bits(self) -> int:
        """Index width addressing one hash table."""
        return self.entries_per_table.bit_length() - 1

    @property
    def accumulator_capacity(self) -> int:
        """Accumulator entries; defaults to the worst-case candidate count."""
        if self.accumulator_entries is not None:
            return self.accumulator_entries
        return self.interval.max_candidates

    @property
    def resolved_backend(self) -> str:
        """The concrete backend to build: ``scalar``, ``vectorized``
        or ``batched``.

        ``auto`` consults :data:`BACKEND_ENV` and defaults to the
        vectorized kernels; both results are deterministic per process
        so a session's profilers all resolve the same way.
        """
        if self.backend != "auto":
            return self.backend
        value = os.environ.get(BACKEND_ENV, "vectorized")
        if value not in ("scalar", "vectorized", "batched"):
            raise ValueError(
                f"{BACKEND_ENV} must be 'scalar', 'vectorized' or "
                f"'batched', got {value!r}")
        return value

    def with_backend(self, backend: str) -> "ProfilerConfig":
        """Copy of this config pinned to a backend."""
        return replace(self, backend=backend)

    @property
    def label(self) -> str:
        """The paper's shorthand, e.g. ``MH4-C1-R0-P1`` or ``SH-R1-P1``."""
        prefix = "SH" if self.num_tables == 1 else f"MH{self.num_tables}"
        parts = [prefix]
        if self.num_tables > 1:
            parts.append(f"C{int(self.conservative_update)}")
        parts.append(f"R{int(self.resetting)}")
        parts.append(f"P{int(self.retaining)}")
        return "-".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe) suitable for experiment manifests
        and the service wire protocol.  Round-trips exactly through
        :meth:`from_dict`."""
        data: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            data[spec_field.name] = (value.to_dict()
                                     if isinstance(value, IntervalSpec)
                                     else value)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProfilerConfig":
        """Inverse of :meth:`to_dict`.

        Missing keys fall back to the dataclass defaults; unknown keys
        are rejected so version skew between a client and server fails
        loudly instead of silently dropping a flag.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ProfilerConfig keys: "
                             f"{', '.join(sorted(unknown))}")
        kwargs: Dict[str, Any] = dict(data)
        if "interval" in kwargs:
            interval = kwargs["interval"]
            if isinstance(interval, Mapping):
                interval = IntervalSpec.from_dict(interval)
            kwargs["interval"] = interval
        return cls(**kwargs)

    def with_tables(self, num_tables: int) -> "ProfilerConfig":
        """Copy of this config with a different hash-table count."""
        return replace(self, num_tables=num_tables)

    def with_interval(self, interval: IntervalSpec) -> "ProfilerConfig":
        """Copy of this config at a different operating point."""
        return replace(self, interval=interval)


def best_single_hash(interval: IntervalSpec = SHORT_INTERVAL,
                     total_entries: int = DEFAULT_TOTAL_ENTRIES,
                     **overrides) -> ProfilerConfig:
    """The paper's "best single hash" (BSH): P1, R1 (Section 5.6.2)."""
    return ProfilerConfig(interval=interval, total_entries=total_entries,
                          num_tables=1, retaining=True, resetting=True,
                          **overrides)


def best_multi_hash(interval: IntervalSpec = SHORT_INTERVAL,
                    num_tables: int = 4,
                    total_entries: int = DEFAULT_TOTAL_ENTRIES,
                    **overrides) -> ProfilerConfig:
    """The paper's best multi-hash configuration: C1, R0, retaining, 4
    tables (Section 6.4)."""
    return ProfilerConfig(interval=interval, total_entries=total_entries,
                          num_tables=num_tables, retaining=True,
                          resetting=False, conservative_update=True,
                          **overrides)
