"""Tagged-table profiling baseline (Section 4.1.3).

Prior hardware table-based profilers (Conte et al.'s profile buffer,
Merten et al.'s branch behavior buffer) store events in a tagged,
set-associative table of counters and "incorporate custom replacement
policies to try to reduce [capacity] error".  This module implements
that family as an interval profiler so it can be scored with the same
metric as the paper's architectures:

* fully tagged ``sets x ways`` table, indexed by the paper's hash
  function (Conte et al. studied indexing choices; the randomized index
  is the strongest of them);
* per-entry event count;
* replacement on miss, guarded by a per-set miss counter (evict the
  set's LRU entry only after ``miss_limit`` misses, protecting
  established entries -- the policy knob those papers tune);
* at each interval boundary, entries at or above the candidate
  threshold are reported and the table is flushed (retention of
  above-threshold entries optional, mirroring the paper's retaining).

Tags make every entry ~3x more expensive than a tagless counter, so at
equal area this design tracks far fewer tuples; whether that hurts
depends on the replacement policy and the churn of the stream.  The
``baselines`` experiment quantifies the comparison -- notably, once the
tagged buffer is granted the paper's own interval discipline (flush +
retain), a well-tuned miss-limit policy is competitive on our streams,
while the paper's architecture achieves the same accuracy with no tags,
no associative search, and no policy tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import HardwareProfiler
from .config import IntervalSpec
from .hashing import HashFunctionFamily, TupleHashFunction
from .tuples import ProfileTuple


@dataclass(frozen=True)
class TaggedTableConfig:
    """Geometry and policy of the tagged profile buffer."""

    interval: IntervalSpec
    sets: int = 256
    ways: int = 4
    miss_limit: int = 4
    retaining: bool = True
    counter_bits: int = 24
    hash_seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError(f"sets must be a positive power of two, "
                             f"got {self.sets}")
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if self.miss_limit < 1:
            raise ValueError(f"miss_limit must be >= 1, "
                             f"got {self.miss_limit}")

    @property
    def index_bits(self) -> int:
        return self.sets.bit_length() - 1

    @property
    def total_entries(self) -> int:
        return self.sets * self.ways


@dataclass
class _TaggedEntry:
    event: ProfileTuple
    count: int
    stamp: int


class TaggedTableProfiler(HardwareProfiler):
    """Set-associative tagged counter table (profile-buffer style)."""

    def __init__(self, config: TaggedTableConfig,
                 hash_function: Optional[TupleHashFunction] = None) -> None:
        super().__init__(config.interval)
        self.config = config
        self.hash_function = hash_function or HashFunctionFamily(
            config.index_bits, seed=config.hash_seed)[0]
        self._sets: List[Dict[ProfileTuple, _TaggedEntry]] = [
            {} for _ in range(config.sets)]
        self._miss_counters: List[int] = [0] * config.sets
        self._next_stamp = 0
        #: Events dropped because their set was full and protected.
        self.capacity_drops = 0
        #: Established entries evicted by the replacement policy.
        self.evictions = 0
        self._index_cache: Dict[ProfileTuple, int] = {}

    @property
    def name(self) -> str:
        return (f"Tagged({self.config.sets}x{self.config.ways}"
                f",m{self.config.miss_limit})")

    def observe(self, event: ProfileTuple) -> None:
        self._count_event()
        index = self._index_of(event)
        ways = self._sets[index]
        entry = ways.get(event)
        max_count = (1 << self.config.counter_bits) - 1
        if entry is not None:
            if entry.count < max_count:
                entry.count += 1
            entry.stamp = self._next_stamp
            self._next_stamp += 1
            self.stats.hash_updates += 1
            return
        if len(ways) < self.config.ways:
            self._insert(ways, event)
            return
        # Set full: count the miss; replace the LRU entry only once the
        # set has absorbed miss_limit misses since its last replacement.
        self._miss_counters[index] += 1
        if self._miss_counters[index] >= self.config.miss_limit:
            self._miss_counters[index] = 0
            victim = min(ways.values(), key=lambda e: (e.count, e.stamp))
            del ways[victim.event]
            self.evictions += 1
            self._insert(ways, event)
        else:
            self.capacity_drops += 1

    def _insert(self, ways: Dict[ProfileTuple, _TaggedEntry],
                event: ProfileTuple) -> None:
        ways[event] = _TaggedEntry(event=event, count=1,
                                   stamp=self._next_stamp)
        self._next_stamp += 1
        self.stats.hash_updates += 1

    def _close_interval(self) -> Dict[ProfileTuple, int]:
        threshold = self.interval.threshold_count
        report: Dict[ProfileTuple, int] = {}
        for index, ways in enumerate(self._sets):
            survivors: Dict[ProfileTuple, _TaggedEntry] = {}
            for event, entry in ways.items():
                if entry.count >= threshold:
                    report[event] = entry.count
                    if self.config.retaining:
                        entry.count = 0
                        survivors[event] = entry
            self._sets[index] = survivors if self.config.retaining else {}
            self._miss_counters[index] = 0
        return report

    def occupancy(self) -> int:
        """Resident entries across all sets (diagnostic)."""
        return sum(len(ways) for ways in self._sets)

    def _index_of(self, event: ProfileTuple) -> int:
        cache = self._index_cache
        index = cache.get(event)
        if index is None:
            index = self.hash_function(event)
            cache[event] = index
        return index


def area_equivalent_config(interval: IntervalSpec,
                           budget_bytes: int = 7_168,
                           ways: int = 4,
                           tag_bits: int = 54,
                           counter_bits: int = 24,
                           **overrides) -> TaggedTableConfig:
    """Size a tagged table to a byte budget (default: the multi-hash
    profiler's ~7 KB at the 1 % point).

    Every tagged entry costs ``tag_bits + counter_bits`` bits, so at
    equal area the tagged design holds roughly 3x fewer counters than
    the tagless multi-hash tables -- the trade the paper's design makes
    in the other direction.
    """
    entry_bits = tag_bits + counter_bits
    entries = max(ways, (budget_bytes * 8) // entry_bits)
    sets = 1
    while sets * 2 * ways <= entries:
        sets *= 2
    return TaggedTableConfig(interval=interval, sets=sets, ways=ways,
                             counter_bits=counter_bits, **overrides)
