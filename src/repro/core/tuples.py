"""Profiling events and their unique names ("tuples").

The paper (Section 3) names every profiling event with a *tuple*: a pair of
integer values that uniquely identifies the event fed to the profiler.

* value profiling uses ``<load PC, loaded value>``
* edge profiling uses ``<branch PC, branch target PC>``

For speed the profilers treat tuples as plain Python ``(int, int)`` pairs;
this module provides the type alias, constructors that validate and
normalize raw fields, and the :class:`EventKind` vocabulary used by the
instrumentation layer (:mod:`repro.profiling`).
"""

from __future__ import annotations

import enum
from typing import Tuple

#: A profiling event name: ``(primary, secondary)``.  For value profiling
#: this is ``(pc, value)``; for edge profiling ``(branch_pc, target_pc)``.
ProfileTuple = Tuple[int, int]

#: Number of bits in each tuple member as seen by the hardware hash
#: function.  The paper models a 64-bit Alpha, so fields are folded into
#: 64 bits before hashing.
FIELD_BITS = 64

#: Mask applied to each tuple member.
FIELD_MASK = (1 << FIELD_BITS) - 1


class EventKind(enum.Enum):
    """The class of profiling event a tuple was derived from.

    The profiler itself is agnostic to the kind -- it consumes opaque
    tuples -- but workload generators and the instrumentation layer tag
    streams with a kind so experiments can select the matching model
    (Figures 4-13 use ``VALUE``; Figure 14 uses ``EDGE``).
    """

    #: ``<load PC, loaded value>`` (Section 3, after Sastry et al.).
    VALUE = "value"
    #: ``<branch PC, branch target PC>``.
    EDGE = "edge"
    #: ``<load PC, miss address>`` -- the cache-miss motivation of
    #: Section 2; used by the extension example, not by the paper's own
    #: evaluation.
    CACHE_MISS = "cache_miss"


def make_tuple(primary: int, secondary: int) -> ProfileTuple:
    """Build a profile tuple from two raw integer fields.

    Fields are masked to :data:`FIELD_BITS` bits, mirroring what a
    fixed-width hardware datapath would latch.  Negative values are
    folded into their two's-complement bit pattern first, so e.g. a
    register holding ``-1`` profiles as ``0xFFFF_FFFF_FFFF_FFFF``.
    """
    return (primary & FIELD_MASK, secondary & FIELD_MASK)


def value_tuple(pc: int, value: int) -> ProfileTuple:
    """Name a value-profiling event ``<load PC, loaded value>``."""
    return make_tuple(pc, value)


def edge_tuple(branch_pc: int, target_pc: int) -> ProfileTuple:
    """Name an edge-profiling event ``<branch PC, target PC>``."""
    return make_tuple(branch_pc, target_pc)


def is_valid_tuple(candidate: object) -> bool:
    """Return ``True`` when *candidate* is a well-formed profile tuple.

    Used by the public entry points to fail fast on malformed input;
    the inner event loops assume validated tuples.
    """
    if not isinstance(candidate, tuple) or len(candidate) != 2:
        return False
    primary, secondary = candidate
    if not isinstance(primary, int) or not isinstance(secondary, int):
        return False
    return 0 <= primary <= FIELD_MASK and 0 <= secondary <= FIELD_MASK
