"""The Stratified Sampler baseline (Sastry, Bodik & Smith, ISCA 2001).

The paper's closest prior work (Section 4.2) and the design its own
architecture is derived from.  Events are hashed into a table of
counters; a counter that reaches the *sampling threshold* is reset and
the event is reported to profiling software.  Reports are buffered
(100 entries in the original study) and the OS is interrupted when the
buffer fills; software accumulates the samples into the actual profile.

Two refinements from the original paper are implemented:

* **partial tags + miss counters** -- each entry stores a partial tag of
  its owning tuple and counts mismatching accesses; too many misses
  evict the owner, which reduces aliasing;
* an optional small fully-associative **aggregation table** between the
  sampler and the buffer, which coalesces repeated reports of the same
  tuple before software sees them, reducing message traffic.

For head-to-head comparison with the interval profilers this class also
exposes the :class:`~repro.core.base.HardwareProfiler` interface: each
interval's "profile" is what software would reconstruct from the
messages received during that interval (sample count x sampling
threshold).  Unlike the paper's own architecture this requires software
work; :attr:`interrupts` and :attr:`messages` quantify that cost, and
:meth:`software_overhead` converts it to the fraction-of-execution
overhead metric the two papers quote (Sastry et al. report ~5 % for
value profiling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import HardwareProfiler
from .config import IntervalSpec
from .hashing import HashFunctionFamily, TupleHashFunction
from .tuples import ProfileTuple


@dataclass(frozen=True)
class StratifiedConfig:
    """Configuration of the stratified sampler.

    ``sampling_threshold`` is how many hits a counter accumulates before
    one sample message is emitted (each message therefore represents
    that many occurrences to software).  ``miss_limit`` is the miss
    count at which a tagged entry is reclaimed for the missing tuple.
    ``aggregation_entries`` / ``aggregation_limit`` size the optional
    associative table (0 entries disables it).
    """

    interval: IntervalSpec
    table_entries: int = 2048
    sampling_threshold: int = 16
    tag_bits: int = 8
    miss_limit: int = 32
    buffer_entries: int = 100
    aggregation_entries: int = 16
    aggregation_limit: int = 8
    counter_bits: int = 24
    hash_seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.table_entries & (self.table_entries - 1):
            raise ValueError(f"table_entries must be a power of two, "
                             f"got {self.table_entries}")
        if self.sampling_threshold < 1:
            raise ValueError(f"sampling_threshold must be >= 1, "
                             f"got {self.sampling_threshold}")
        if self.buffer_entries < 1:
            raise ValueError(f"buffer_entries must be >= 1, "
                             f"got {self.buffer_entries}")

    @property
    def index_bits(self) -> int:
        return self.table_entries.bit_length() - 1


@dataclass
class _SamplerEntry:
    """One tagged sampler-table entry: owner tag, hit and miss counters."""

    tag: Optional[int] = None
    owner: Optional[ProfileTuple] = None
    hits: int = 0
    misses: int = 0


@dataclass
class _AggregationEntry:
    """One associative aggregation entry coalescing sample messages."""

    event: ProfileTuple
    samples: int


class StratifiedSampler(HardwareProfiler):
    """Hash-table sampler with software accumulation (Figure 1)."""

    def __init__(self, config: StratifiedConfig,
                 hash_function: Optional[TupleHashFunction] = None) -> None:
        super().__init__(config.interval)
        self.config = config
        self.hash_function = hash_function or HashFunctionFamily(
            config.index_bits, seed=config.hash_seed)[0]
        # The partial tag must come from an *independent* function: an
        # xor-fold of the same randomized tuple would be perfectly
        # correlated with the index (xor-folding is GF(2)-linear and
        # byte-order insensitive), making tags useless.
        self._tag_function = HashFunctionFamily(
            config.tag_bits, seed=config.hash_seed ^ 0x7A6)[0]
        self._entries: List[_SamplerEntry] = [
            _SamplerEntry() for _ in range(config.table_entries)]
        self._aggregation: Dict[ProfileTuple, _AggregationEntry] = {}
        self._buffer: List[ProfileTuple] = []
        #: Software-side sample counts for the current interval.
        self._software_counts: Dict[ProfileTuple, int] = {}
        #: Sample messages delivered to software over the whole run.
        self.messages = 0
        #: OS interrupts taken (buffer drains) over the whole run.
        self.interrupts = 0
        self._index_cache: Dict[ProfileTuple, int] = {}

    @property
    def name(self) -> str:
        return f"Stratified(t={self.config.sampling_threshold})"

    def observe(self, event: ProfileTuple) -> None:
        self._count_event()
        config = self.config
        index = self._index_of(event)
        entry = self._entries[index]
        tag = self._partial_tag(event)

        if entry.tag is None:
            entry.tag = tag
            entry.owner = event
            entry.hits = 0
            entry.misses = 0

        if entry.tag == tag:
            entry.hits += 1
            self.stats.hash_updates += 1
            if entry.hits >= config.sampling_threshold:
                entry.hits = 0
                # The entry may be owned by a different tuple with the
                # same partial tag; samples are attributed to the
                # current event, as the real hardware would report the
                # event that triggered the threshold crossing.
                self._emit_sample(event)
        else:
            entry.misses += 1
            if entry.misses >= config.miss_limit:
                # Reclaim the entry for the missing tuple; accumulated
                # hits of the old owner are discarded.
                entry.tag = tag
                entry.owner = event
                entry.hits = 1
                entry.misses = 0

    def _emit_sample(self, event: ProfileTuple) -> None:
        """Route one sample through the aggregation table and buffer."""
        config = self.config
        if config.aggregation_entries == 0:
            self._buffer_message(event, samples=1)
            return
        resident = self._aggregation.get(event)
        if resident is not None:
            resident.samples += 1
            if resident.samples >= config.aggregation_limit:
                del self._aggregation[event]
                self._buffer_message(event, samples=resident.samples)
            return
        if len(self._aggregation) >= config.aggregation_entries:
            # Capacity eviction: flush the entry with the most samples
            # (it has the most information to deliver).
            victim = max(self._aggregation.values(),
                         key=lambda e: e.samples)
            del self._aggregation[victim.event]
            self._buffer_message(victim.event, samples=victim.samples)
        self._aggregation[event] = _AggregationEntry(event=event, samples=1)

    def _buffer_message(self, event: ProfileTuple, samples: int) -> None:
        for _ in range(samples):
            self._buffer.append(event)
            self.messages += 1
            if len(self._buffer) >= self.config.buffer_entries:
                self._drain_buffer()

    def _drain_buffer(self) -> None:
        """The OS interrupt: software consumes the buffered samples."""
        self.interrupts += 1
        weight = self.config.sampling_threshold
        counts = self._software_counts
        for event in self._buffer:
            counts[event] = counts.get(event, 0) + weight
        self._buffer.clear()

    def _close_interval(self) -> Dict[ProfileTuple, int]:
        # Software closes the interval: drain in-flight state so the
        # reconstruction reflects everything sampled this interval.
        for resident in list(self._aggregation.values()):
            del self._aggregation[resident.event]
            self._buffer_message(resident.event, samples=resident.samples)
        if self._buffer:
            self._drain_buffer()
        threshold = self.interval.threshold_count
        report = {event: count
                  for event, count in self._software_counts.items()
                  if count >= threshold}
        self._software_counts.clear()
        for entry in self._entries:
            entry.tag = None
            entry.owner = None
            entry.hits = 0
            entry.misses = 0
        return report

    def software_overhead(self, cycles_per_interrupt: int = 1500,
                          cycles_per_event: float = 1.0) -> float:
        """Estimated software overhead as a fraction of execution.

        A crude model matching how Sastry et al. report overhead: each
        interrupt costs *cycles_per_interrupt* (entry/exit plus handling
        ~100 buffered messages), against *cycles_per_event* per profiled
        event of useful execution.
        """
        if self.stats.events == 0:
            return 0.0
        handler_cycles = self.interrupts * cycles_per_interrupt
        program_cycles = self.stats.events * cycles_per_event
        return handler_cycles / program_cycles

    def _index_of(self, event: ProfileTuple) -> int:
        cache = self._index_cache
        index = cache.get(event)
        if index is None:
            index = self.hash_function(event)
            cache[event] = index
        return index

    def _partial_tag(self, event: ProfileTuple) -> int:
        """Partial tag from the independent tag hash function."""
        return self._tag_function(event)
