"""Batched multi-session kernels: one NumPy dispatch per tick.

The vectorized kernels (:mod:`repro.core.kernels`) already consume
whole event arrays, but every profiler instance still dispatches its
own call chain per chunk.  A multi-tenant driver -- the profile
service's shard worker, or a session feeding many same-shape
configurations -- therefore pays the full Python/NumPy dispatch
overhead once per tenant per tick, which dominates once chunks are
small (the paper's hardware handles every in-flight stream in one pass
per cycle; this module is the software analogue).

:class:`BatchedKernelRunner` removes that factor.  Per tick it:

1. **groups** the pending ``(profiler, pcs, values)`` requests by
   kernel-compatibility key (architecture, table shape, counter width,
   hash seed, threshold -- per-tenant flags like shielding/resetting
   may differ within a group);
2. **packs** each group's chunks into ragged ``(events, segment_id)``
   arrays: tenant-major concatenation, a segment id per event, one
   segment-aware dedupe giving per-tenant sorted unique tuples, hash
   indices computed once over the packed arrays (the group shares its
   hash functions by construction) and offset by ``segment *
   table_size`` into per-table concatenations of the tenants' counter
   arrays;
3. **runs** the single-hash / multi-hash window kernels segment-aware
   over the packed arrays -- occurrence numbering, bulk increment and
   the conservative-update span solver all operate on the offset
   indices, so per-tenant independence is free: offset index spaces
   never collide, and the existing kernels' correctness arguments
   apply per segment unchanged;
4. **scatters** results back: final counters into each tenant's
   :class:`~repro.core.kernels.NumpyCounterTable`, deferred
   accumulator hits into each tenant's entries, and per-tenant stat
   deltas (``bincount`` over segment ids) into each
   :class:`~repro.core.base.ProfilerStats`.

Promotion boundaries are handled **per tenant, in parallel**: a
promotion only invalidates the *promoting tenant's* later events, so
one round commits every tenant's exact prefix (up to its own first
blocking attempt), scalar-steps each blocked tenant's boundary event,
and re-scores only the shrunken frontier.  The number of rounds is
bounded by the *maximum* boundaries of any single tenant, not the sum
-- the same bound the per-session kernels enjoy.

Results are bit-identical to the scalar reference (and hence to the
per-session vectorized kernels) -- same candidates, counts, stats and
residual accumulator state -- verified by
``tests/test_batched_parity.py`` over ragged multi-session batches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .base import HardwareProfiler
from .kernels import (C1_WINDOW_EVENTS, MAX_WINDOW_BOUNDARIES,
                      MIN_SOLVER_SPAN, PAIR_DTYPE, WINDOW_EVENTS,
                      VectorizedMultiHashProfiler,
                      VectorizedSingleHashProfiler, _bulk_increment,
                      _ChunkAccumulator, _ConservativeSpan, _dedupe_pairs,
                      _occurrence_numbers)

#: One batched request: a profiler plus its pending chunk.
BatchRequest = Tuple[HardwareProfiler, np.ndarray, np.ndarray]

#: Upper bound on the packed window, whatever the tenant count.  The
#: per-session window size scales with the number of tenants (each
#: tenant still sees roughly ``WINDOW_EVENTS`` of it) but is capped so
#: a boundary's frontier re-score stays affordable.
BATCH_WINDOW_CAP = 1 << 16

#: Packed-window cap for the conservative-update (``C1``) path.
#: Counter chains only form *within* a tenant, so the solver's chain
#: depth scales with the per-tenant share of the window, not its total
#: size -- but the cap still bounds a single solver pass.
BATCH_C1_WINDOW_CAP = 1 << 15


def _group_key(profiler: HardwareProfiler):
    """Kernel-compatibility key, or ``None`` if not batchable.

    Tenants in one group must agree on everything the packed kernels
    hoist out of the per-tenant state: architecture, table shape,
    counter width (saturation cap), hash functions (derived from the
    config seed -- profilers with explicitly supplied functions are
    never folded) and promotion threshold.  Shielding, resetting,
    retaining and accumulator capacity stay per-tenant.

    The key is immutable for a profiler's lifetime, so it is cached on
    the instance (dispatch re-derives it every tick otherwise).
    """
    try:
        return profiler._batch_group_key
    except AttributeError:
        pass
    key = _derive_group_key(profiler)
    profiler._batch_group_key = key
    return key


def _derive_group_key(profiler: HardwareProfiler):
    if isinstance(profiler, VectorizedSingleHashProfiler):
        if profiler.custom_hash:
            return None
        config = profiler.config
        return ("single", config.entries_per_table, config.counter_bits,
                config.hash_seed, profiler.interval.threshold_count)
    if isinstance(profiler, VectorizedMultiHashProfiler):
        if profiler.custom_hash:
            return None
        config = profiler.config
        return ("multi", config.num_tables, config.entries_per_table,
                config.counter_bits, config.hash_seed,
                bool(config.conservative_update),
                profiler.interval.threshold_count)
    return None


def _dedupe_segmented(
        seg: np.ndarray, pcs: np.ndarray, values: np.ndarray,
        num_segments: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segment-aware :func:`~repro.core.kernels._dedupe_pairs`.

    Two stages: a segment-blind pair dedupe maps every event to a
    compact global tuple id, then one plain int64 sort over the packed
    ``segment * G + gid`` keys splits those ids per tenant -- the full
    128-bit pair fields are sorted exactly once, however many tenants
    share the batch.

    Returns ``(unique, event_ids, u_starts, global_pairs, row_keys)``:
    *unique* holds the distinct ``(segment, pc, value)`` triples as a
    tenant-major concatenation of per-tenant sorted ``PAIR_DTYPE``
    blocks (block ``t`` is ``unique[u_starts[t]:u_starts[t + 1]]``),
    *event_ids* maps every packed event to its row in *unique*,
    *global_pairs* is the segment-blind sorted unique-pair array, and
    *row_keys* is the strictly ascending ``segment * G + gid`` key of
    every *unique* row (``G == len(global_pairs)``) -- the handle the
    batch uses to locate accumulator entries group-wide.
    """
    global_pairs, gids = _dedupe_pairs(pcs, values)
    G = len(global_pairs)
    packed = seg * G + gids
    order = np.argsort(packed)
    sorted_keys = packed[order]
    starts = np.empty(len(order), dtype=bool)
    starts[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=starts[1:])
    group = np.cumsum(starts) - 1
    event_ids = np.empty(len(order), dtype=np.int64)
    event_ids[order] = group
    row_keys = sorted_keys[starts]
    unique = global_pairs[row_keys % G]
    unique_seg = row_keys // G
    u_starts = np.searchsorted(unique_seg,
                               np.arange(num_segments + 1)).astype(np.int64)
    return unique, event_ids, u_starts, global_pairs, row_keys


class _Batch:
    """One packed kernel dispatch over a compatibility group.

    Holds the packed arrays plus per-tenant wrappers for the lifetime
    of one :meth:`run`; tenants' counter tables are snapshotted into
    per-table concatenations up front and scattered back at the end.
    """

    def __init__(self, profilers: List[HardwareProfiler],
                 chunks: List[Tuple[np.ndarray, np.ndarray]],
                 scan_cache: Optional[dict] = None) -> None:
        self._scan_cache = scan_cache
        first = profilers[0]
        self.profilers = profilers
        self.single = isinstance(first, VectorizedSingleHashProfiler)
        self.T = T = len(profilers)
        config = first.config
        self.table_size = config.entries_per_table
        self.num_tables = 1 if self.single else config.num_tables
        self.conservative = (False if self.single
                             else config.conservative_update)
        self.threshold = first.interval.threshold_count
        self.max_value = (first.table.max_value if self.single
                          else first.tables[0].max_value)
        self.shield = np.array([p.config.shielding for p in profilers],
                               dtype=bool)
        self.reset = [p.config.resetting for p in profilers]
        self.lengths = [len(pcs) for pcs, _ in chunks]
        self.total = sum(self.lengths)
        self.seg = np.repeat(np.arange(T, dtype=np.int64), self.lengths)
        functions = ([first.hash_function] if self.single
                     else first.hash_functions)

        first_pcs, first_values = chunks[0]
        shared = T > 1 and all(pcs is first_pcs and values is first_values
                               for pcs, values in chunks)
        if shared:
            # Same-shape sweep cells feed every tenant the same chunk
            # object; dedupe and hash once, then tile with offsets.
            self.pcs_all = np.tile(first_pcs, T)
            self.values_all = np.tile(first_values, T)
            unique0, ids0 = _dedupe_pairs(first_pcs, first_values)
            block = len(unique0)
            unique = np.tile(unique0, T)
            event_ids = (np.tile(ids0, T)
                         + np.repeat(np.arange(T, dtype=np.int64) * block,
                                     len(first_pcs)))
            u_starts = np.arange(T + 1, dtype=np.int64) * block
            local_rows = [np.tile(f.index_array(first_pcs, first_values), T)
                          for f in functions]
            # Every tenant's unique block IS the global pair array, so
            # row ``t * block + i`` packs to exactly that value.
            global_pairs = unique0
            row_keys = np.arange(T * block, dtype=np.int64)
        else:
            self.pcs_all = np.concatenate([pcs for pcs, _ in chunks])
            self.values_all = np.concatenate(
                [values for _, values in chunks])
            unique, event_ids, u_starts, global_pairs, row_keys = \
                _dedupe_segmented(self.seg, self.pcs_all, self.values_all,
                                  T)
            local_rows = [f.index_array(self.pcs_all, self.values_all)
                          for f in functions]
        self.event_ids = event_ids
        self.u_starts = u_starts
        offsets = self.seg * self.table_size
        self.rows = [local + offsets for local in local_rows]
        if self.single:
            self.bigs = [np.concatenate([p.table.array for p in profilers])]
        else:
            self.bigs = [
                np.concatenate([p.tables[j].array for p in profilers])
                for j in range(self.num_tables)]

        self.U = len(unique)
        self.resident_all = np.zeros(self.U, dtype=bool)
        self.refs_all = np.empty(self.U, dtype=object)
        self.accs: List[_ChunkAccumulator] = []
        for t, profiler in enumerate(profilers):
            low, high = int(u_starts[t]), int(u_starts[t + 1])
            self.accs.append(_ChunkAccumulator(
                profiler.accumulator, unique[low:high], self.threshold,
                profiler.stats, resident=self.resident_all[low:high],
                entry_refs=self.refs_all[low:high],
                scan=False))
        self._scan_entries(global_pairs, row_keys)
        self.pending_all = np.zeros(self.U, dtype=np.int64)
        self.tenant_dirty = np.zeros(T, dtype=bool)
        self.hash_updates_acc = np.zeros(T, dtype=np.int64)
        self.rejected_acc = np.zeros(T, dtype=np.int64)
        self.acc_hits_acc = np.zeros(T, dtype=np.int64)

    def _scan_entries(self, global_pairs: np.ndarray,
                      row_keys: np.ndarray) -> None:
        """Locate every tenant's accumulator entries in one pass.

        Fills the ``resident``/``entry_refs``/``replaceable`` state the
        per-tenant ``_ChunkAccumulator`` scan would have built
        (``scan=False`` skipped it): all tenants' entry tuples are
        looked up in the segment-blind *global_pairs* array, packed
        with their tenant id, and matched against *row_keys* with a
        single int64 searchsorted instead of one structured-dtype scan
        per tenant.

        Each table's packed key array is cached on the table keyed by
        its structural version, so steady-state ticks (hits only, no
        promotions or interval turns) concatenate cached arrays instead
        of re-materializing every key; the ``replaceable`` seed comes
        from the table's live counter rather than a flag scan.
        """
        tables = [profiler.accumulator for profiler in self.profilers]
        for table, acc in zip(tables, self.accs):
            acc.replaceable = table.replaceable_count
        versions = tuple(table.version for table in tables)
        group = self._scan_cache
        stored = None
        if group is not None:
            stored = group.get(id(self.profilers[0]))
            if stored is not None and (stored[0] != versions
                                       or stored[1] != tables):
                stored = None
        if stored is None:
            key_blocks = []
            entry_blocks = []
            counts = []
            for table in tables:
                cached = table.keys_cache
                if cached is None or cached[0] != table.version:
                    entries = table.raw_entries()
                    n = len(entries)
                    if n:
                        fields = np.fromiter(entries.keys(),
                                             dtype=np.dtype((np.uint64, 2)),
                                             count=n)
                        keys = fields.reshape(-1).view(PAIR_DTYPE)
                    else:
                        keys = np.empty(0, dtype=PAIR_DTYPE)
                    refs = np.empty(n, dtype=object)
                    refs[:] = list(entries.values())
                    cached = (table.version, keys, refs)
                    table.keys_cache = cached
                counts.append(len(cached[1]))
                key_blocks.append(cached[1])
                entry_blocks.append(cached[2])
            if self.T == 1:
                keys = key_blocks[0]
                entries_all = entry_blocks[0]
            else:
                keys = np.concatenate(key_blocks)
                entries_all = np.concatenate(entry_blocks)
            key_seg = np.repeat(np.arange(self.T, dtype=np.int64), counts)
            # Keyed by the leading profiler's id; identity of every
            # table is re-verified on lookup (the cache holds strong
            # references, so a hit can never alias a recycled id).
            if group is not None:
                if len(group) > 32:
                    group.clear()
                group[id(self.profilers[0])] = (versions, tables, keys,
                                                entries_all, key_seg)
        else:
            _, _, keys, entries_all, key_seg = stored
        total = len(keys)
        if not total:
            return
        G = len(global_pairs)
        gids = np.searchsorted(global_pairs, keys)
        np.clip(gids, 0, G - 1, out=gids)
        present = global_pairs[gids] == keys
        packed = key_seg * G + gids
        locations = np.searchsorted(row_keys, packed)
        np.clip(locations, 0, self.U - 1, out=locations)
        matched = (row_keys[locations] == packed) & present
        hit_locations = locations[matched]
        self.resident_all[hit_locations] = True
        self.refs_all[hit_locations] = entries_all[matched]

    # -- driving -------------------------------------------------------

    def run(self) -> None:
        per_tenant = C1_WINDOW_EVENTS if self.conservative else WINDOW_EVENTS
        cap = (BATCH_C1_WINDOW_CAP if self.conservative
               else BATCH_WINDOW_CAP)
        window = min(cap, per_tenant * self.T)
        for start in range(0, self.total, window):
            self._window(np.arange(start, min(self.total, start + window),
                                   dtype=np.int64))
        self._finish()

    def _finish(self) -> None:
        self._flush_all()
        hash_updates = self.hash_updates_acc.tolist()
        acc_hits = self.acc_hits_acc.tolist()
        rejected_all = self.rejected_acc.tolist()
        for t, profiler in enumerate(self.profilers):
            stats = profiler.stats
            stats.hash_updates += hash_updates[t]
            stats.accumulator_hits += acc_hits[t]
            rejected = rejected_all[t]
            if rejected:
                stats.rejected_promotions += rejected
                profiler.accumulator.rejected_inserts += rejected
            stats.events += self.lengths[t]
            profiler._events_this_interval += self.lengths[t]
            low = t * self.table_size
            high = low + self.table_size
            if self.single:
                profiler.table.array[:] = self.bigs[0][low:high]
            else:
                for table, big in zip(profiler.tables, self.bigs):
                    table.array[:] = big[low:high]

    # -- the segment-aware window --------------------------------------

    def _window(self, active: np.ndarray) -> None:
        """Process packed positions *active* (ascending, tenant-major).

        Each round scores the whole frontier from a state snapshot,
        commits every tenant's exact prefix (everything before its
        first non-saturated promotion attempt), scalar-steps the
        blocked tenants' boundary events, and keeps only the events
        after their own tenant's boundary for the next round.
        """
        T = self.T
        threshold = self.threshold
        max_value = self.max_value
        boundaries = 0
        while len(active):
            if boundaries >= MAX_WINDOW_BOUNDARIES:
                self._scalar_span(active)
                return
            seg_a = self.seg[active]
            gids = self.event_ids[active]
            res = self.resident_all[gids]
            # A resident tuple skips hashing only in shielded tenants;
            # elsewhere it hashes *and* counts in the accumulator.
            hashed = np.flatnonzero(~(res & self.shield[seg_a]))
            if not len(hashed):
                self._hits(gids, seg_a)
                return
            if (self.conservative
                    and len(hashed) < MIN_SOLVER_SPAN):
                self._scalar_span(active)
                return
            act_h = active[hashed]
            seg_h = seg_a[hashed]
            res_h = res[hashed]
            span = None
            if self.single:
                row_h = [self.rows[0][act_h]]
                occurrence = _occurrence_numbers(row_h[0])
                counted = self.bigs[0][row_h[0]] + occurrence
                np.minimum(counted, max_value, out=counted)
                attempts = counted >= threshold
                attempts &= ~res_h
            elif not self.conservative:
                row_h = [row[act_h] for row in self.rows]
                minimum = None
                estimate = None
                for big, row in zip(self.bigs, row_h):
                    occurrence = _occurrence_numbers(row)
                    base = big[row]
                    before = np.minimum(base + occurrence - 1, max_value)
                    after = np.minimum(base + occurrence, max_value)
                    if minimum is None:
                        minimum, estimate = before, after
                    else:
                        np.minimum(minimum, before, out=minimum)
                        np.minimum(estimate, after, out=estimate)
                attempts = (minimum < threshold) & (estimate >= threshold)
                attempts &= ~res_h
            else:
                row_h = [row[act_h] for row in self.rows]
                span = _ConservativeSpan(row_h, self.bigs, max_value)
                if span.overflow:
                    self._scalar_span(active)
                    return
                minima = span.solve()
                if threshold <= max_value:
                    attempts = minima == threshold - 1
                    attempts &= ~res_h
                else:
                    attempts = np.zeros(len(hashed), dtype=bool)

            # First *blocking* attempt per tenant; attempts in
            # saturated tenants are bulk rejections (saturation is
            # absorbing for the rest of the interval).
            saturated = np.fromiter((acc.saturated for acc in self.accs),
                                    dtype=bool, count=T)
            blocking = attempts & ~saturated[seg_h]
            n = len(active)
            cut_by_seg = np.full(T, n, dtype=np.int64)
            blocking_positions = np.flatnonzero(blocking)
            if len(blocking_positions):
                tenants, firsts = np.unique(seg_h[blocking_positions],
                                            return_index=True)
                bound_pos = hashed[blocking_positions[firsts]]
                cut_by_seg[tenants] = bound_pos
            positions = np.arange(n, dtype=np.int64)
            prefix = positions < cut_by_seg[seg_a]
            prefix_h = prefix[hashed]

            if self.conservative:
                per_event = span.apply_masked(prefix_h)
                self.hash_updates_acc += np.bincount(
                    seg_h, weights=per_event,
                    minlength=T).astype(np.int64)
            else:
                committed = np.flatnonzero(prefix_h)
                if len(committed):
                    for big, row in zip(self.bigs, row_h):
                        _bulk_increment(big, row[committed], max_value)
                    self.hash_updates_acc += self.num_tables * np.bincount(
                        seg_h[committed], minlength=T)
            rejected = attempts & prefix_h
            if rejected.any():
                self.rejected_acc += np.bincount(seg_h[rejected],
                                                 minlength=T)
            hit = res & prefix
            if hit.any():
                self._hits(gids[hit], seg_a[hit])
            if not len(blocking_positions):
                return
            for tenant, position in zip(tenants.tolist(),
                                        bound_pos.tolist()):
                self._flush_tenant(int(tenant))
                self._scalar_event(int(active[position]), int(tenant))
            boundaries += 1
            active = active[positions > cut_by_seg[seg_a]]

    # -- deferred accumulator hits -------------------------------------

    def _hits(self, gids: np.ndarray, seg_subset: np.ndarray) -> None:
        """Defer one accumulator hit per event (exact once flushed)."""
        self.pending_all += np.bincount(gids, minlength=self.U)
        self.acc_hits_acc += np.bincount(seg_subset, minlength=self.T)
        self.tenant_dirty[seg_subset] = True

    def _flush_tenant(self, t: int) -> None:
        """Fold tenant *t*'s deferred hits into its entry objects."""
        acc = self.accs[t]
        if self.tenant_dirty[t]:
            low, high = int(self.u_starts[t]), int(self.u_starts[t + 1])
            pending = self.pending_all[low:high]
            acc.pending += pending
            pending[:] = 0
            acc._dirty = True
            self.tenant_dirty[t] = False
        acc.flush()

    def _flush_all(self) -> None:
        """Fold every tenant's deferred hits in one group-wide pass.

        Equivalent to ``_flush_tenant`` over all tenants (the boundary
        flushes leave the per-chunk ``pending`` arrays empty, so at
        batch end the only deferred hits live in ``pending_all``), but
        with a single nonzero scan and one fold loop instead of
        per-tenant calls.
        """
        hit_ids = np.flatnonzero(self.pending_all)
        if len(hit_ids):
            pending = self.pending_all
            tenants = np.searchsorted(self.u_starts, hit_ids,
                                      side="right") - 1
            refs = self.refs_all
            threshold = self.threshold
            accs = self.accs
            for gid, count, t in zip(hit_ids.tolist(),
                                     pending[hit_ids].tolist(),
                                     tenants.tolist()):
                entry = refs[gid]
                entry.count += count
                if entry.replaceable and entry.count >= threshold:
                    entry.replaceable = False
                    acc = accs[t]
                    acc.replaceable -= 1
                    acc.table.replaceable_count -= 1
            pending[hit_ids] = 0
        self.tenant_dirty[:] = False

    # -- exact scalar steps --------------------------------------------

    def _scalar_span(self, active: np.ndarray) -> None:
        """Per-event reference over the frontier (degenerate windows).

        Packed order is tenant-major, so walking *active* in order
        equals running each tenant's scalar span back to back.
        """
        for t in range(self.T):
            self._flush_tenant(t)
        seg = self.seg
        for position in active.tolist():
            self._scalar_event(position, int(seg[position]))

    def _scalar_event(self, position: int, t: int) -> None:
        """One exact ``observe`` step at packed *position* for tenant
        *t*, against the packed counter arrays.  The tenant's deferred
        hits must already be flushed (victim selection reads entry
        counts and replaceable flags)."""
        profiler = self.profilers[t]
        acc = self.accs[t]
        stats = profiler.stats
        shielding = bool(self.shield[t])
        resetting = self.reset[t]
        threshold = self.threshold
        max_value = self.max_value
        event = (int(self.pcs_all[position]),
                 int(self.values_all[position]))
        entry = profiler.accumulator.raw_entries().get(event)
        if shielding and entry is not None:
            acc.hit_entry(entry)
            return
        local_id = int(self.event_ids[position]) - int(self.u_starts[t])
        if self.single:
            index = int(self.rows[0][position])
            counters = self.bigs[0]
            count = int(counters[index]) + 1
            if count > max_value:
                count = max_value
            counters[index] = count
            stats.hash_updates += 1
            if count >= threshold and entry is None:
                if acc.insert(event, local_id, count):
                    stats.promotions += 1
                    if resetting:
                        counters[index] = 0
                else:
                    stats.rejected_promotions += 1
        else:
            row = [int(column[position]) for column in self.rows]
            num_tables = self.num_tables
            if self.conservative:
                current = [int(self.bigs[j][row[j]])
                           for j in range(num_tables)]
                minimum = min(current)
                estimate = minimum + 1
                if estimate > max_value:
                    estimate = max_value
                for j in range(num_tables):
                    if current[j] == minimum:
                        bumped = current[j] + 1
                        if bumped > max_value:
                            bumped = max_value
                        self.bigs[j][row[j]] = bumped
                        stats.hash_updates += 1
            else:
                minimum = max_value
                estimate = max_value
                for j in range(num_tables):
                    before = int(self.bigs[j][row[j]])
                    bumped = before + 1
                    if bumped > max_value:
                        bumped = max_value
                    self.bigs[j][row[j]] = bumped
                    stats.hash_updates += 1
                    if before < minimum:
                        minimum = before
                    if bumped < estimate:
                        estimate = bumped
            if minimum < threshold <= estimate and entry is None:
                if acc.insert(event, local_id, estimate):
                    stats.promotions += 1
                    if resetting:
                        for j in range(num_tables):
                            self.bigs[j][row[j]] = 0
                else:
                    stats.rejected_promotions += 1
        if not shielding and entry is not None:
            acc.hit_entry(entry)


class BatchedKernelRunner:
    """Fold many tenants' pending chunks into shared kernel dispatches.

    Stateless between ticks apart from counters; drivers keep one
    runner per shard/feeder and call :meth:`dispatch` with everything
    pending for the tick.  Requests whose profilers cannot be folded
    (scalar backends, custom hash functions, singleton groups) are fed
    through their own ``observe_array_chunk`` and still count as one
    dispatch each, so :attr:`dispatches` always equals the number of
    kernel call chains issued -- the service worker exposes the
    per-tick ratio in its stats.
    """

    def __init__(self) -> None:
        #: Kernel call chains issued (one per group or solo feed).
        self.dispatches = 0
        #: :meth:`dispatch` calls (one per driver tick).
        self.ticks = 0
        #: Non-empty tenant chunks folded in, cumulative.
        self.requests = 0
        # Group-wide accumulator scan arrays reused across ticks while
        # no table in the group changed structurally (see
        # ``_Batch._scan_entries``).
        self._scan_cache: Dict[int, tuple] = {}

    def dispatch(self, requests: Sequence[BatchRequest]) -> None:
        """Feed every request, folding compatible tenants together.

        Bit-identical to feeding each request through its profiler's
        ``observe_array_chunk`` in sequence.  Empty chunks are no-ops
        (as they are per session).  A profiler appearing several times
        has its chunks concatenated in request order, which the
        split-invariance of chunked feeding makes equivalent.
        """
        self.ticks += 1
        groups: Dict[tuple, List[BatchRequest]] = {}
        solo: List[BatchRequest] = []
        for profiler, pcs, values in requests:
            pcs = np.ascontiguousarray(pcs, dtype=np.uint64)
            values = np.ascontiguousarray(values, dtype=np.uint64)
            if not len(pcs):
                continue
            self.requests += 1
            key = _group_key(profiler)
            if key is None:
                solo.append((profiler, pcs, values))
            else:
                groups.setdefault(key, []).append((profiler, pcs, values))
        for profiler, pcs, values in solo:
            self.dispatches += 1
            profiler.observe_array_chunk(pcs, values)
        for members in groups.values():
            members = _merge_duplicates(members)
            self.dispatches += 1
            if len(members) == 1:
                profiler, pcs, values = members[0]
                profiler.observe_array_chunk(pcs, values)
                continue
            _Batch([m[0] for m in members],
                   [(m[1], m[2]) for m in members],
                   scan_cache=self._scan_cache).run()


def _merge_duplicates(members: List[BatchRequest]) -> List[BatchRequest]:
    """Concatenate chunks of profilers that appear more than once."""
    order: List[List] = []
    by_id: Dict[int, List] = {}
    for profiler, pcs, values in members:
        slot = by_id.get(id(profiler))
        if slot is None:
            slot = [profiler, [pcs], [values]]
            by_id[id(profiler)] = slot
            order.append(slot)
        else:
            slot[1].append(pcs)
            slot[2].append(values)
    out: List[BatchRequest] = []
    for profiler, pcs_list, values_list in order:
        if len(pcs_list) == 1:
            out.append((profiler, pcs_list[0], values_list[0]))
        else:
            out.append((profiler, np.concatenate(pcs_list),
                        np.concatenate(values_list)))
    return out
