"""Load generation for the profile service.

Named workload profiles (:mod:`repro.loadgen.profiles`) plus the
harness that drives them against an embedded
:class:`~repro.service.server.ProfileServer` and measures events/sec,
requests/sec, latency percentiles, and failure rates
(:mod:`repro.loadgen.harness`).  ``repro-profile loadgen`` and
``make bench-service`` are the front ends; the before/after report
lands in ``benchmarks/results/BENCH_service.json``.
"""

from .harness import (compare_profiles, profile_digest, run_profile,
                      write_report)
from .profiles import (HEADLINE_STREAMS, PROFILES, LoadProfile,
                       get_profile, list_profiles)

__all__ = [
    "HEADLINE_STREAMS",
    "LoadProfile",
    "PROFILES",
    "compare_profiles",
    "get_profile",
    "list_profiles",
    "profile_digest",
    "run_profile",
    "write_report",
]
