"""Load harness: drive a profile server hard and measure it.

The harness owns the whole measurement: it starts an embedded
:class:`~repro.service.server.ProfileServer` (on an ephemeral port,
with a chosen ``data_plane``), partitions a profile's tenant streams
across a pool of connection threads, drives every tenant's full event
budget through blocking :class:`~repro.service.client.ProfileClient`
requests, and folds the per-thread measurements into one metrics row::

    events/sec, requests/sec, p50/p99 push and snapshot latency,
    failure counts and rate, server-side shed/busy counters,
    and a SHA-256 digest of every tenant's final profile.

The digest covers profile *content* only (intervals, candidates,
error summaries, event counts) -- not operational counters like the
number of frames a stream happened to arrive in -- so two runs that
frame the same events differently (coalesced vs not, fast vs legacy
plane) must produce the same digest.  ``compare_profiles`` leans on
exactly that: it runs each profile once per data plane and reports
the speedup next to a digest-equality check.

Slow readers: a profile may include clients that deliberately stop
reading replies.  They are driven over raw sockets (a well-behaved
:class:`ProfileClient` cannot misbehave this way) and are expected to
be shed by the server's drain timeout; their sheds are counted
separately from regular-tenant failures so a test can assert "slow
readers died, nobody else noticed".
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import IntervalSpec, ProfilerConfig
from ..ioutil import atomic_write_json
from ..service import ProfileClient, ProfileServer, ServiceError
from ..service import protocol
from .profiles import LoadProfile

#: Events a slow reader pushes normally before it stops reading.
SLOW_READER_WARMUP_EVENTS = 4096

#: Unread snapshot requests a slow reader fires before giving up on
#: being shed (a cap so a run cannot hang if shedding is disabled).
SLOW_READER_MAX_UNREAD = 20_000


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _latency_summary(samples: List[float]) -> Dict[str, float]:
    return {
        "samples": len(samples),
        "p50_ms": 1000.0 * _percentile(samples, 0.50),
        "p99_ms": 1000.0 * _percentile(samples, 0.99),
        "mean_ms": (1000.0 * sum(samples) / len(samples)
                    if samples else 0.0),
    }


@lru_cache(maxsize=8)
def _calibrated_model(benchmark: str):
    # benchmark_model re-runs its calibration solve on every call
    # (~1s); hundreds of tenants sharing one benchmark would pay it
    # hundreds of times.  The model is immutable -- per-tenant
    # generators built from one shared instance produce exactly the
    # streams per-tenant benchmark_generator() calls would.
    from ..workloads.benchmarks import benchmark_model

    return benchmark_model(benchmark)


def _tenant_source(profile: LoadProfile, index: int):
    """Build tenant *index*'s traffic source (anything with chunk())."""
    seed = profile.seed + index
    if profile.source == "scenario":
        from ..workloads.scenarios import ScenarioStream, load_scenario

        return ScenarioStream(load_scenario(profile.scenario, seed=seed))
    from ..workloads.generators import TupleStreamGenerator

    return TupleStreamGenerator(_calibrated_model(profile.benchmark),
                                seed=seed)


def profile_digest(snapshots: Dict[str, Dict[str, Any]]) -> str:
    """SHA-256 over the profile *content* of per-tenant snapshots.

    Operational fields that depend on framing (``batches``) or on
    snapshot timing (``pending_events``) are excluded; what remains is
    exactly what the profiler computed, so any two data paths feeding
    the same events must agree byte for byte.
    """
    content = {
        stream: {
            "profiler": snap.get("profiler"),
            "backend": snap.get("backend"),
            "events": snap.get("events"),
            "intervals_completed": snap.get("intervals_completed"),
            "flushed_partial": snap.get("flushed_partial"),
            "intervals": snap.get("intervals"),
            "summary": snap.get("summary"),
        }
        for stream, snap in snapshots.items()}
    canonical = json.dumps(content, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _Tenant:
    """One stream's driving state inside a connection thread.

    All event chunks are generated up front, outside the timed
    window: the harness measures the service data plane, not the
    synthetic-trace generator.  The chunk() call pattern depends only
    on ``batch_events`` and the event budget -- never on *coalesce* --
    so both data planes ship byte-identical streams and their profile
    digests must match.
    """

    def __init__(self, profile: LoadProfile, index: int,
                 coalesce: int) -> None:
        self.stream = f"{profile.name}-{index:04d}"
        source = _tenant_source(profile, index)
        self.payloads: List[List[Tuple[np.ndarray, np.ndarray]]] = []
        remaining = profile.events_per_stream
        while remaining > 0:
            chunks = []
            while remaining > 0 and len(chunks) < coalesce:
                count = min(remaining, profile.batch_events)
                chunks.append(source.chunk(count))
                remaining -= count
            self.payloads.append(chunks)
        self.next_payload = 0
        self.pushes = 0

    @property
    def remaining(self) -> int:
        """Payloads not yet pushed (0 when the budget is drained)."""
        return len(self.payloads) - self.next_payload


class _ThreadResult:
    """Metrics one connection thread collects (merged after join)."""

    def __init__(self) -> None:
        self.events = 0
        self.requests = 0
        self.failures = 0
        self.push_latencies: List[float] = []
        self.snapshot_latencies: List[float] = []
        self.snapshots: Dict[str, Dict[str, Any]] = {}
        self.error: Optional[BaseException] = None


def _drive_connection(profile: LoadProfile, port: int,
                      tenants: List[_Tenant],
                      result: _ThreadResult) -> None:
    """Drive *tenants* over one connection until their budgets drain."""
    try:
        with ProfileClient(port=port) as client:
            config = ProfilerConfig(
                interval=IntervalSpec(profile.interval_length,
                                      profile.threshold))
            for tenant in tenants:
                client.open_stream(tenant.stream, config)
                result.requests += 1
            active = list(tenants)
            while active:
                still = []
                for tenant in active:
                    for _ in range(profile.burst):
                        if tenant.remaining <= 0:
                            break
                        _push_once(profile, client, tenant, result)
                    if tenant.remaining > 0:
                        still.append(tenant)
                active = still
            for tenant in tenants:
                started = time.perf_counter()
                snapshot = client.snapshot(tenant.stream)
                result.snapshot_latencies.append(
                    time.perf_counter() - started)
                result.requests += 1
                assert snapshot is not None
                final = client.close_stream(tenant.stream)
                result.requests += 1
                result.snapshots[tenant.stream] = final
    except BaseException as error:  # merged by the caller
        result.error = error


def _push_once(profile: LoadProfile, client: ProfileClient,
               tenant: _Tenant, result: _ThreadResult) -> None:
    """One push request (the tenant's next pre-generated payload)."""
    chunks = tenant.payloads[tenant.next_payload]
    tenant.next_payload += 1
    events = sum(len(pcs) for pcs, _ in chunks)
    started = time.perf_counter()
    try:
        client.push_chunks(tenant.stream, chunks)
    except (ServiceError, ConnectionError):
        result.failures += 1
        result.requests += 1
        return
    result.push_latencies.append(time.perf_counter() - started)
    result.requests += 1
    result.events += events
    tenant.pushes += 1
    if (profile.snapshot_every
            and tenant.pushes % profile.snapshot_every == 0):
        started = time.perf_counter()
        try:
            client.snapshot(tenant.stream)
        except (ServiceError, ConnectionError):
            result.failures += 1
        else:
            result.snapshot_latencies.append(
                time.perf_counter() - started)
        result.requests += 1


def _run_slow_reader(profile: LoadProfile, port: int, index: int,
                     outcome: Dict[str, int]) -> None:
    """A client that stops reading replies until the server sheds it.

    Warms its stream up through a well-behaved client (so the server
    has real snapshot state to answer with), then floods snapshot
    requests over a raw socket without ever reading a reply.  The
    server's reply stream backs up, its ``drain_timeout`` fires, and
    the connection is reset -- which this thread records as its shed.
    """
    stream = f"{profile.name}-slow-{index:02d}"
    config = ProfilerConfig(
        interval=IntervalSpec(profile.interval_length,
                              profile.threshold))
    source = _tenant_source(profile, 10_000 + index)
    try:
        with ProfileClient(port=port) as client:
            client.open_stream(stream, config)
            client.push_generator(stream, source,
                                  SLOW_READER_WARMUP_EVENTS,
                                  batch_events=profile.batch_events)
        frame = protocol.encode_json(protocol.T_SNAPSHOT,
                                     {"stream": stream})
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as raw:
            # Tiny socket buffers so the unread reply stream backs up
            # into the server's write buffer almost immediately --
            # otherwise kernel buffering could absorb the whole flood
            # and the drain timeout would never be exercised.
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
            raw.settimeout(30.0)
            raw.connect(("127.0.0.1", port))
            for _ in range(SLOW_READER_MAX_UNREAD):
                raw.sendall(frame)
        outcome["survived"] = outcome.get("survived", 0) + 1
    except (ConnectionError, BrokenPipeError, socket.timeout, OSError):
        outcome["shed"] = outcome.get("shed", 0) + 1


def run_profile(profile: LoadProfile, *, data_plane: str = "fast",
                num_workers: int = 2,
                max_pending: int = 64,
                drain_timeout: float = 2.0) -> Dict[str, Any]:
    """Run one profile against a fresh embedded server; return its row.

    ``data_plane="legacy"`` also forces ``coalesce=1`` -- the legacy
    leg reproduces the pre-rewrite client *and* server behaviour, so a
    fast-vs-legacy comparison measures the whole data-plane rewrite.
    """
    coalesce = 1 if data_plane == "legacy" else profile.coalesce
    tenants = [_Tenant(profile, index, coalesce)
               for index in range(profile.streams)]
    shares: List[List[_Tenant]] = [[] for _ in range(profile.connections)]
    for index, tenant in enumerate(tenants):
        shares[index % profile.connections].append(tenant)
    with ProfileServer(num_workers=num_workers,
                       max_pending=max_pending,
                       drain_timeout=drain_timeout,
                       data_plane=data_plane) as server:
        results = [_ThreadResult() for _ in shares]
        threads = [
            threading.Thread(
                target=_drive_connection,
                args=(profile, server.port, share, result),
                name=f"loadgen-{profile.name}-{position}")
            for position, (share, result)
            in enumerate(zip(shares, results))]
        slow_outcome: Dict[str, int] = {}
        slow_threads = [
            threading.Thread(
                target=_run_slow_reader,
                args=(profile, server.port, index, slow_outcome),
                name=f"loadgen-{profile.name}-slow-{index}")
            for index in range(profile.slow_readers)]
        started = time.perf_counter()
        for thread in threads + slow_threads:
            thread.start()
        for thread in threads + slow_threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stats = ProfileClient(port=server.port).server_stats()
    for result in results:
        if result.error is not None:
            raise RuntimeError(
                f"loadgen connection thread failed on profile "
                f"{profile.name!r}") from result.error
    events = sum(result.events for result in results)
    requests = sum(result.requests for result in results)
    failures = sum(result.failures for result in results)
    push_latencies = [sample for result in results
                      for sample in result.push_latencies]
    snapshot_latencies = [sample for result in results
                          for sample in result.snapshot_latencies]
    snapshots: Dict[str, Dict[str, Any]] = {}
    for result in results:
        snapshots.update(result.snapshots)
    server_stats = stats.get("server", {})
    return {
        "profile": profile.name,
        "data_plane": data_plane,
        "streams": profile.streams,
        "connections": profile.connections,
        "batch_events": profile.batch_events,
        "coalesce": coalesce,
        "events": events,
        "requests": requests,
        "failures": failures,
        "failure_rate": (failures / requests) if requests else 0.0,
        "elapsed_seconds": elapsed,
        "events_per_second": events / elapsed if elapsed else 0.0,
        "requests_per_second": requests / elapsed if elapsed else 0.0,
        "push_latency": _latency_summary(push_latencies),
        "snapshot_latency": _latency_summary(snapshot_latencies),
        "slow_readers": profile.slow_readers,
        "slow_readers_shed": slow_outcome.get("shed", 0),
        "slow_readers_survived": slow_outcome.get("survived", 0),
        "server": {
            "busy_rejections": server_stats.get("busy_rejections", 0),
            "slow_client_sheds": server_stats.get("slow_client_sheds",
                                                  0),
            "protocol_errors": server_stats.get("protocol_errors", 0),
            "frames": server_stats.get("frames", 0),
        },
        "digest": profile_digest(snapshots),
    }


def compare_profiles(profiles: Sequence[LoadProfile], *,
                     num_workers: int = 2,
                     max_pending: int = 64) -> Dict[str, Any]:
    """Run each profile down both data planes; report rows + speedups."""
    rows: List[Dict[str, Any]] = []
    comparisons: List[Dict[str, Any]] = []
    for profile in profiles:
        legacy = run_profile(profile, data_plane="legacy",
                             num_workers=num_workers,
                             max_pending=max_pending)
        fast = run_profile(profile, data_plane="fast",
                           num_workers=num_workers,
                           max_pending=max_pending)
        rows.extend([legacy, fast])
        comparisons.append({
            "profile": profile.name,
            "streams": profile.streams,
            "legacy_events_per_second": legacy["events_per_second"],
            "fast_events_per_second": fast["events_per_second"],
            "speedup": (fast["events_per_second"]
                        / legacy["events_per_second"]
                        if legacy["events_per_second"] else 0.0),
            "digest_match": legacy["digest"] == fast["digest"],
        })
    return {"rows": rows, "comparisons": comparisons}


def write_report(path: str, payload: Dict[str, Any]) -> None:
    """Atomically write a harness report (``BENCH_service.json``)."""
    atomic_write_json(path, payload)
