"""Named workload profiles for the service load harness.

A :class:`LoadProfile` is a declarative description of one load shape:
how many tenant streams, how many events each pushes, how the pushes
are framed (batch size, coalescing factor), how many TCP connections
multiplex the tenants, and what traffic source feeds them.  The
registry mirrors the named-profile discipline of llm-d-benchmark's
harness: tests and CI reference profiles by name instead of
hand-rolling load loops.

Sources:

* ``benchmark`` -- a calibrated benchmark generator per tenant
  (:func:`~repro.workloads.benchmarks.benchmark_generator`), seeded
  per tenant so the streams are distinct but reproducible.
* ``scenario`` -- a :class:`~repro.workloads.scenarios.ScenarioStream`
  per tenant built from a shipped preset (``stress_test``,
  ``adversarial``, ``heavy_hitters``), reusing the scenario suite as a
  traffic source.

Every profile is deterministic: the per-tenant ``chunk()`` call
pattern depends only on ``events_per_stream`` and ``batch_events``,
never on the coalescing factor or the server's data plane, so the
same profile pushed down the legacy and fast paths produces
byte-identical event streams and therefore identical profile digests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List

#: Profiles the acceptance comparison runs at 256 concurrent streams.
HEADLINE_STREAMS = 256


@dataclass(frozen=True)
class LoadProfile:
    """One named load shape (see module docstring)."""

    name: str
    description: str
    #: Concurrent tenant streams.
    streams: int
    #: Events each tenant pushes over the run.
    events_per_stream: int
    #: Events per generation chunk (one chunk() call).
    batch_events: int
    #: Generation chunks coalesced into one frame on the fast plane
    #: (the legacy leg always frames one chunk per request).
    coalesce: int
    #: TCP connections; tenants are partitioned across them.
    connections: int
    #: Issue a live snapshot every N pushes per tenant (0 = only the
    #: per-tenant snapshot every run ends with).
    snapshot_every: int = 0
    #: Consecutive push requests per tenant before the connection
    #: rotates to its next tenant (1 = smooth round-robin; larger
    #: values make the arrival pattern bursty per shard).
    burst: int = 1
    #: ``benchmark`` or ``scenario``.
    source: str = "benchmark"
    #: Calibrated workload name for the ``benchmark`` source.
    benchmark: str = "gcc"
    #: Preset name for the ``scenario`` source.
    scenario: str = ""
    #: Deliberately misbehaving clients that stop reading replies
    #: (exercises the server's slow-reader shedding).
    slow_readers: int = 0
    #: Profiler interval length for every tenant's stream.
    interval_length: int = 2048
    #: Candidate threshold fraction.
    threshold: float = 0.01
    #: Base seed; tenant ``i`` draws from ``seed + i``.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError(f"streams must be >= 1, got {self.streams}")
        if self.events_per_stream < 1:
            raise ValueError(f"events_per_stream must be >= 1, "
                             f"got {self.events_per_stream}")
        if self.batch_events < 1:
            raise ValueError(f"batch_events must be >= 1, "
                             f"got {self.batch_events}")
        if self.coalesce < 1:
            raise ValueError(f"coalesce must be >= 1, "
                             f"got {self.coalesce}")
        if not 1 <= self.connections <= self.streams:
            raise ValueError(f"connections must be in [1, streams], "
                             f"got {self.connections}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.source not in ("benchmark", "scenario"):
            raise ValueError(f"source must be 'benchmark' or "
                             f"'scenario', got {self.source!r}")
        if self.source == "scenario" and not self.scenario:
            raise ValueError("scenario source needs a preset name")

    @property
    def total_events(self) -> int:
        return self.streams * self.events_per_stream

    def scaled(self, streams_cap: int,
               events_cap: int) -> "LoadProfile":
        """A shrunken copy for smoke runs (CI, tests).

        Caps streams and per-stream events, keeping connections and
        slow readers within the new stream count.
        """
        streams = min(self.streams, streams_cap)
        return dataclasses.replace(
            self,
            streams=streams,
            events_per_stream=min(self.events_per_stream, events_cap),
            connections=min(self.connections, streams),
            slow_readers=min(self.slow_readers, streams),
        )


def _builtin_profiles() -> List[LoadProfile]:
    return [
        LoadProfile(
            name="steady",
            description="256 tenants pushing fine-grained 64-event "
                        "ticks smooth round-robin over 16 connections",
            streams=HEADLINE_STREAMS, events_per_stream=4096,
            batch_events=64, coalesce=32, connections=16),
        LoadProfile(
            name="bursty",
            description="256 tenants whose connections burst 8 "
                        "consecutive requests per tenant before "
                        "rotating",
            streams=HEADLINE_STREAMS, events_per_stream=4096,
            batch_events=128, coalesce=16, connections=16, burst=8),
        LoadProfile(
            name="fan_in",
            description="512 small tenants fanning into 8 "
                        "connections (high open/close and routing "
                        "pressure)",
            streams=512, events_per_stream=2048,
            batch_events=128, coalesce=16, connections=8),
        LoadProfile(
            name="mixed",
            description="256 tenants interleaving a live snapshot "
                        "query after every 4 pushes",
            streams=HEADLINE_STREAMS, events_per_stream=4096,
            batch_events=128, coalesce=4, connections=16,
            snapshot_every=4),
        LoadProfile(
            name="scenario_stress",
            description="64 tenants replaying the stress_test "
                        "scenario preset as live traffic",
            streams=64, events_per_stream=4096,
            batch_events=512, coalesce=8, connections=8,
            source="scenario", scenario="stress_test"),
        LoadProfile(
            name="scenario_adversarial",
            description="64 tenants replaying the adversarial "
                        "aliasing scenario preset as live traffic",
            streams=64, events_per_stream=4096,
            batch_events=512, coalesce=8, connections=8,
            source="scenario", scenario="adversarial"),
        LoadProfile(
            name="scenario_heavy_hitters",
            description="64 tenants replaying the heavy_hitters "
                        "network-stream preset as live traffic",
            streams=64, events_per_stream=4096,
            batch_events=512, coalesce=8, connections=8,
            source="scenario", scenario="heavy_hitters"),
    ]


#: Registry of shipped profiles, by name.
PROFILES: Dict[str, LoadProfile] = {
    profile.name: profile for profile in _builtin_profiles()}


def get_profile(name: str) -> LoadProfile:
    """Look up a shipped profile; raises ``ValueError`` on a bad name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown load profile {name!r} "
                         f"(shipped: {known})") from None


def list_profiles() -> List[str]:
    """Shipped profile names, sorted."""
    return sorted(PROFILES)
