"""Atomic file-write helpers.

Every result artifact the project writes -- bench JSON reports, scenario
JSONL streams, materialized traces -- must never be observable
half-written: CI jobs and concurrent suite runs read these files while
other runs produce them.  All writers here stage into a temp file in the
destination directory and ``os.replace`` it into place, so readers see
either the old content or the new content, never a torn mix, and
concurrent writers racing to the same path both succeed.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace *path* with *data* (parents created)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as sink:
            sink.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace *path* with UTF-8 *text*."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> None:
    """Atomically write *payload* as pretty JSON with a trailing
    newline -- the shared format of every ``BENCH_*.json`` report."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
