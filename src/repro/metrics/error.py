"""The paper's weighted error metric (Section 5.5.2, formula 1).

For one interval, with candidate universe ``i = 1..n`` (tuples above
threshold in either profile), the error is the frequency-weighted
average of per-candidate relative errors::

    E = sum_i |f_p_i - f_h_i| / sum_i f_p_i

False positives contribute ``|f_p - f_h| >= T`` to the numerator while
adding little (their small true ``f_p``) to the denominator, which is
why heavily-aliased configurations exceed 100 % error in Figures 7 and
11.  The net error of a run is the simple average over its intervals,
and each interval's error splits additively into the four Figure 3
categories -- exactly the stacked bars of Figures 7-14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from ..core.base import IntervalProfile
from ..core.tuples import ProfileTuple
from .classification import (Category, ClassifiedCandidate,
                             classify_interval_with_truth)


@dataclass(frozen=True)
class IntervalError:
    """Error of one hardware profile interval against ground truth.

    ``category_error`` maps each error-carrying category to its share;
    the shares sum to :attr:`total`.  ``category_count`` counts
    candidates per category (including exact matches).
    """

    index: int
    total: float
    category_error: Mapping[Category, float]
    category_count: Mapping[Category, int]
    perfect_mass: int

    def error_of(self, category: Category) -> float:
        return self.category_error.get(category, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; lossless (floats survive the JSON round trip
        exactly, so cached results render bit-identically)."""
        return {
            "index": self.index,
            "total": self.total,
            "category_error": {category.value: share
                               for category, share
                               in self.category_error.items()},
            "category_count": {category.value: count
                               for category, count
                               in self.category_count.items()},
            "perfect_mass": self.perfect_mass,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntervalError":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            total=float(data["total"]),
            category_error={Category(name): float(share)
                            for name, share
                            in data["category_error"].items()},
            category_count={Category(name): int(count)
                            for name, count
                            in data["category_count"].items()},
            perfect_mass=int(data["perfect_mass"]),
        )


def interval_error(true_counts: Dict[ProfileTuple, int],
                   hardware: IntervalProfile,
                   threshold_count: int) -> IntervalError:
    """Score one interval: formula (1) with the four-way breakdown."""
    classified = classify_interval_with_truth(true_counts, hardware,
                                              threshold_count)
    return error_from_classified(classified, hardware.index)


def error_from_classified(classified: Sequence[ClassifiedCandidate],
                          index: int = 0) -> IntervalError:
    """Compute the weighted error from already-classified candidates."""
    perfect_mass = sum(c.perfect_frequency for c in classified)
    # An interval with no candidate mass carries no weighting basis; a
    # denominator of one event keeps false-positive-only intervals
    # finite while preserving "no candidates anywhere -> zero error".
    denominator = max(1, perfect_mass)
    category_error: Dict[Category, float] = {}
    category_count: Dict[Category, int] = {}
    total = 0.0
    for candidate in classified:
        category_count[candidate.category] = (
            category_count.get(candidate.category, 0) + 1)
        if candidate.category is Category.EXACT:
            continue
        share = candidate.absolute_error / denominator
        category_error[candidate.category] = (
            category_error.get(candidate.category, 0.0) + share)
        total += share
    return IntervalError(index=index, total=total,
                         category_error=category_error,
                         category_count=category_count,
                         perfect_mass=perfect_mass)


@dataclass
class ErrorSummary:
    """Run-level error: the simple average over interval errors.

    Mirrors the paper's "final net error rate ... calculated as a simple
    average over the error rates seen by all intervals", and keeps the
    per-interval series for Figure 13-style plots.
    """

    intervals: List[IntervalError] = field(default_factory=list)

    def add(self, interval: IntervalError) -> None:
        self.intervals.append(interval)

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def total_error(self) -> float:
        """Net error averaged over intervals (fraction, not percent)."""
        if not self.intervals:
            return 0.0
        return sum(i.total for i in self.intervals) / len(self.intervals)

    def category_error(self, category: Category) -> float:
        """Average error share of one category over all intervals."""
        if not self.intervals:
            return 0.0
        return (sum(i.error_of(category) for i in self.intervals)
                / len(self.intervals))

    def breakdown(self) -> Dict[Category, float]:
        """Average error share of every error-carrying category."""
        return {category: self.category_error(category)
                for category in (Category.FALSE_POSITIVE,
                                 Category.FALSE_NEGATIVE,
                                 Category.NEUTRAL_POSITIVE,
                                 Category.NEUTRAL_NEGATIVE)}

    def category_candidates(self, category: Category) -> int:
        """Total candidates classified into *category* across the run."""
        return sum(i.category_count.get(category, 0)
                   for i in self.intervals)

    def series(self) -> List[float]:
        """Per-interval total error, in interval order (Figure 13)."""
        return [i.total for i in sorted(self.intervals,
                                        key=lambda e: e.index)]

    def percent(self) -> float:
        """Net error in percent, as the paper's figures report it."""
        return 100.0 * self.total_error

    def breakdown_percent(self) -> Dict[str, float]:
        """Category breakdown in percent, keyed by category value."""
        return {category.value: 100.0 * share
                for category, share in self.breakdown().items()}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the experiment result cache's storage
        format)."""
        return {"intervals": [interval.to_dict()
                              for interval in self.intervals]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(intervals=[IntervalError.from_dict(interval)
                              for interval in data["intervals"]])


def summarize(errors: Iterable[IntervalError]) -> ErrorSummary:
    """Collect interval errors into a summary."""
    summary = ErrorSummary()
    for error in errors:
        summary.add(error)
    return summary
