"""Error metrics: Figure 3 classification and formula (1) error rates."""

from .aggregate import (StabilityReport, merge_profiles, stability,
                        top_tuples)
from .charts import bar_chart, grouped_bar_chart, series_chart
from .classification import (Category, ClassifiedCandidate, by_category,
                             classify_candidate, classify_interval,
                             classify_interval_with_truth)
from .error import (ErrorSummary, IntervalError, error_from_classified,
                    interval_error, summarize)
from .reports import (breakdown_headers, breakdown_row,
                      error_breakdown_table, format_table, series_table)

__all__ = [
    "StabilityReport",
    "merge_profiles",
    "stability",
    "top_tuples",
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "Category",
    "ClassifiedCandidate",
    "ErrorSummary",
    "IntervalError",
    "breakdown_headers",
    "breakdown_row",
    "by_category",
    "classify_candidate",
    "classify_interval",
    "classify_interval_with_truth",
    "error_breakdown_table",
    "error_from_classified",
    "format_table",
    "interval_error",
    "series_table",
    "summarize",
]
