"""Plain-text report tables for experiment output.

The experiment harness prints the same rows/series the paper's figures
plot; these helpers format them consistently (fixed-width columns,
percent values to two decimals) so bench output is directly readable
and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from .classification import Category
from .error import ErrorSummary

#: Column order for stacked error-breakdown tables, matching the
#: paper's legend order.
BREAKDOWN_COLUMNS = (
    ("FP%", Category.FALSE_POSITIVE),
    ("FN%", Category.FALSE_NEGATIVE),
    ("NP%", Category.NEUTRAL_POSITIVE),
    ("NN%", Category.NEUTRAL_NEGATIVE),
)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 min_width: int = 6) -> str:
    """Render a fixed-width text table.

    Numbers are right-aligned, strings left-aligned; floats print with
    two decimals.  Returns the table as one string (no trailing
    newline).
    """
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [max(min_width, len(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are "
                f"{len(headers)} headers: {row!r}")
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = [_render_line(headers, widths),
             "  ".join("-" * width for width in widths)]
    lines.extend(_render_line(row, widths) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _render_line(cells: Sequence[object], widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        rendered = _render_cell(cell)
        if isinstance(cell, str):
            parts.append(rendered.ljust(width))
        else:
            parts.append(rendered.rjust(width))
    return "  ".join(parts).rstrip()


def breakdown_row(summary: ErrorSummary) -> List[float]:
    """The four stacked-category percentages plus the total, in the
    column order of :data:`BREAKDOWN_COLUMNS` followed by ``Total%``."""
    breakdown = summary.breakdown()
    row = [100.0 * breakdown[category] for _, category in BREAKDOWN_COLUMNS]
    row.append(summary.percent())
    return row


def breakdown_headers(*prefix: str) -> List[str]:
    """Headers for a breakdown table, optionally prefixed by id columns."""
    return [*prefix, *(name for name, _ in BREAKDOWN_COLUMNS), "Total%"]


def error_breakdown_table(rows: Mapping[str, ErrorSummary],
                          key_header: str = "config") -> str:
    """One breakdown row per labelled summary (Figures 7, 10-12, 14)."""
    table_rows = [[label, *breakdown_row(summary)]
                  for label, summary in rows.items()]
    return format_table(breakdown_headers(key_header), table_rows)


def series_table(series: Mapping[str, Sequence[float]],
                 index_header: str = "interval") -> str:
    """Per-interval series side by side (Figure 13).

    Shorter series are padded with blanks so benchmarks with different
    interval counts can share one table.
    """
    labels = list(series)
    length = max((len(values) for values in series.values()), default=0)
    rows = []
    for position in range(length):
        row: List[object] = [position]
        for label in labels:
            values = series[label]
            row.append(100.0 * values[position]
                       if position < len(values) else "")
        rows.append(row)
    return format_table([index_header, *labels], rows)


def percent(fraction: float) -> float:
    """Convert a fraction to percent (kept explicit for readability)."""
    return 100.0 * fraction
