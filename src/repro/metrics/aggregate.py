"""Aggregating interval profiles over longer horizons.

The profiler reports per-interval candidates; consumers often want a
longer view — "the hot tuples of the last N intervals" for a stable
optimization plan, or a whole-run profile comparable to what ATOM
produces offline.  These helpers merge interval profiles with optional
recency weighting and support the stability analysis the clients use
to decide when a plan is worth (re)applying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.base import IntervalProfile
from ..core.tuples import ProfileTuple


def merge_profiles(profiles: Iterable[IntervalProfile],
                   decay: float = 1.0) -> Dict[ProfileTuple, float]:
    """Merge per-interval candidate counts into one weighted profile.

    With ``decay == 1`` this is a plain sum (the whole-run profile).
    With ``decay < 1`` earlier intervals are geometrically discounted
    (weight ``decay**age``), giving the recency-biased view an online
    optimizer wants: a tuple hot long ago but cold now fades out.
    """
    if not 0.0 < decay <= 1.0:
        raise ValueError(f"decay must be in (0, 1], got {decay}")
    ordered = sorted(profiles, key=lambda profile: profile.index)
    merged: Dict[ProfileTuple, float] = {}
    if not ordered:
        return merged
    newest = ordered[-1].index
    for profile in ordered:
        weight = decay ** (newest - profile.index)
        for event, count in profile.candidates.items():
            merged[event] = merged.get(event, 0.0) + weight * count
    return merged


def top_tuples(merged: Mapping[ProfileTuple, float],
               count: int = 10) -> List[Tuple[ProfileTuple, float]]:
    """The *count* heaviest tuples of a merged profile, descending."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return sorted(merged.items(), key=lambda item: -item[1])[:count]


@dataclass(frozen=True)
class StabilityReport:
    """How persistent candidates are across a profile window.

    ``persistence`` maps each tuple to the fraction of intervals in
    which it was a candidate; ``stable`` lists the tuples at or above
    the requested persistence (the safe optimization targets).
    """

    intervals: int
    persistence: Mapping[ProfileTuple, float]
    stable: Tuple[ProfileTuple, ...]

    def persistence_of(self, event: ProfileTuple) -> float:
        return self.persistence.get(event, 0.0)


def stability(profiles: Sequence[IntervalProfile],
              min_persistence: float = 0.75) -> StabilityReport:
    """Measure candidate persistence over a profile window.

    The paper's interval-to-interval variation (Figure 6) is the flip
    side of this: an optimizer acting on interval ``i``'s candidates
    during interval ``i+1`` only profits from tuples that persist.
    """
    if not 0.0 < min_persistence <= 1.0:
        raise ValueError(f"min_persistence must be in (0, 1], got "
                         f"{min_persistence}")
    if not profiles:
        return StabilityReport(intervals=0, persistence={}, stable=())
    appearances: Dict[ProfileTuple, int] = {}
    for profile in profiles:
        for event in profile.candidates:
            appearances[event] = appearances.get(event, 0) + 1
    total = len(profiles)
    persistence = {event: count / total
                   for event, count in appearances.items()}
    stable = tuple(sorted(
        (event for event, share in persistence.items()
         if share >= min_persistence),
        key=lambda event: -persistence[event]))
    return StabilityReport(intervals=total, persistence=persistence,
                           stable=stable)
