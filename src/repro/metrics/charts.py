"""ASCII charts for experiment reports.

The paper's results are bar charts and per-cycle line plots; these
helpers render terminal approximations of both so ``repro-experiments``
output can be *read* like the figures, not just diffed.  Pure text, no
plotting dependencies.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

#: Default plot width in characters.
DEFAULT_WIDTH = 50


def bar_chart(values: Mapping[str, float], width: int = DEFAULT_WIDTH,
              unit: str = "%") -> str:
    """Horizontal bar chart, one row per labelled value.

    Bars scale to the maximum value; zero and near-zero values render
    an explicit dot so "no error" is visible rather than blank.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not values:
        return "(no data)"
    label_width = max(len(label) for label in values)
    peak = max(values.values())
    lines = []
    for label, value in values.items():
        if peak <= 0:
            filled = 0
        else:
            filled = round(width * value / peak)
        bar = "#" * filled if filled else "."
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]],
                      width: int = DEFAULT_WIDTH,
                      unit: str = "%") -> str:
    """Bar chart with one section per group (e.g. per benchmark).

    All sections share one scale so bars are comparable across groups,
    like the shared y-axis of the paper's figures.
    """
    if not groups:
        return "(no data)"
    peak = max((value for section in groups.values()
                for value in section.values()), default=0.0)
    label_width = max((len(label) for section in groups.values()
                       for label in section), default=1)
    lines: List[str] = []
    for group, section in groups.items():
        lines.append(f"{group}:")
        for label, value in section.items():
            filled = round(width * value / peak) if peak > 0 else 0
            bar = "#" * filled if filled else "."
            lines.append(f"  {label.ljust(label_width)} "
                         f"|{bar.ljust(width)}| {value:.2f}{unit}")
    return "\n".join(lines)


def series_chart(series: Sequence[float], height: int = 8,
                 width: int = DEFAULT_WIDTH,
                 unit: str = "%") -> str:
    """A column chart of a per-interval series (Figure 13 style).

    Values are bucketed onto *width* columns (max-pooled when the
    series is longer than the width) and drawn as vertical bars over
    *height* text rows, with the peak value annotated.
    """
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    if not series:
        return "(no data)"
    columns = _pool(series, width)
    peak = max(columns)
    if peak < 0.005:
        return f"~0{unit} flat over {len(series)} intervals"
    levels = [round(height * value / peak) for value in columns]
    rows = []
    for row in range(height, 0, -1):
        cells = "".join("#" if level >= row else " "
                        for level in levels)
        prefix = f"{peak:7.2f}{unit} ^" if row == height else " " * 9 + "|"
        rows.append(prefix + cells)
    rows.append(" " * 9 + "+" + "-" * len(levels)
                + f"> {len(series)} intervals")
    return "\n".join(rows)


def _pool(series: Sequence[float], width: int) -> List[float]:
    """Max-pool *series* down to at most *width* columns."""
    if len(series) <= width:
        return list(series)
    pooled: List[float] = []
    for column in range(width):
        start = column * len(series) // width
        stop = max(start + 1, (column + 1) * len(series) // width)
        pooled.append(max(series[start:stop]))
    return pooled
