"""Four-way candidate classification (Section 5.5.1, Figure 3).

Comparing a hardware profile against the perfect profile for the same
interval puts every tuple that either profiler reported into one of
four categories (tuples below threshold in both are "don't care"):

=================  =======================  ==========================
Category           Perfect profiler         Hardware profiler
=================  =======================  ==========================
False Positive     out  (``f_p < T``)       in  (``f_h >= T``)
False Negative     in   (``f_p >= T``)      out (``f_h < T``)
Neutral Positive   in, ``f_h > f_p``        in
Neutral Negative   in, ``f_h < f_p``        in
Exact              in, ``f_h == f_p``       in  (contributes no error)
=================  =======================  ==========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ..core.base import IntervalProfile
from ..core.tuples import ProfileTuple


class Category(enum.Enum):
    """Where a candidate tuple falls in Figure 3's grid."""

    FALSE_POSITIVE = "false_positive"
    FALSE_NEGATIVE = "false_negative"
    NEUTRAL_POSITIVE = "neutral_positive"
    NEUTRAL_NEGATIVE = "neutral_negative"
    #: Both profilers agree exactly; zero error contribution.
    EXACT = "exact"


#: The categories that carry error, in the paper's stacking order.
ERROR_CATEGORIES = (Category.FALSE_POSITIVE, Category.FALSE_NEGATIVE,
                    Category.NEUTRAL_POSITIVE, Category.NEUTRAL_NEGATIVE)


@dataclass(frozen=True)
class ClassifiedCandidate:
    """One tuple's comparison outcome for one interval.

    ``perfect_frequency`` is ``f_p``; ``hardware_frequency`` is ``f_h``
    (0 when the hardware profiler did not report the tuple).
    """

    event: ProfileTuple
    perfect_frequency: int
    hardware_frequency: int
    category: Category

    @property
    def absolute_error(self) -> int:
        """``|f_p - f_h|``, the numerator of the paper's error weight."""
        return abs(self.perfect_frequency - self.hardware_frequency)


def classify_candidate(perfect_frequency: int, hardware_frequency: int,
                       threshold_count: int) -> Category:
    """Classify one tuple given both frequencies and the threshold."""
    perfect_in = perfect_frequency >= threshold_count
    hardware_in = hardware_frequency >= threshold_count
    if perfect_in and not hardware_in:
        return Category.FALSE_NEGATIVE
    if hardware_in and not perfect_in:
        return Category.FALSE_POSITIVE
    if not perfect_in and not hardware_in:
        raise ValueError(
            f"tuple below threshold in both profiles (f_p="
            f"{perfect_frequency}, f_h={hardware_frequency}, T="
            f"{threshold_count}) is a don't-care, not a candidate")
    if hardware_frequency > perfect_frequency:
        return Category.NEUTRAL_POSITIVE
    if hardware_frequency < perfect_frequency:
        return Category.NEUTRAL_NEGATIVE
    return Category.EXACT


def classify_interval(perfect: IntervalProfile,
                      hardware: IntervalProfile,
                      threshold_count: int) -> List[ClassifiedCandidate]:
    """Classify every candidate of one interval.

    The candidate universe is the union of tuples reported by either
    profiler ("all candidate tuples seen either in perfect or hardware
    profiler", Section 5.5.2).  For tuples only the hardware reported,
    the perfect profile still knows the true frequency is below the
    threshold; since :class:`~repro.core.perfect.PerfectProfiler` only
    reports above-threshold tuples, ``f_p`` for false positives is not
    recoverable from the report alone and callers that need it should
    use :func:`classify_interval_with_truth`.  Here ``f_p`` of an
    unreported tuple is treated as 0 (the most pessimistic value).
    """
    truth = {event: 0 for event in hardware.candidates
             if event not in perfect.candidates}
    truth.update(perfect.candidates)
    return _classify(truth, hardware, threshold_count)


def classify_interval_with_truth(true_counts: Dict[ProfileTuple, int],
                                 hardware: IntervalProfile,
                                 threshold_count: int
                                 ) -> List[ClassifiedCandidate]:
    """Classify with full ground-truth counts for the interval.

    *true_counts* maps every tuple seen in the interval to its exact
    frequency, so false positives get their real (sub-threshold)
    ``f_p`` instead of 0, exactly as the paper's ATOM-based perfect
    profiler provides.
    """
    universe = {event: count for event, count in true_counts.items()
                if count >= threshold_count}
    for event in hardware.candidates:
        if event not in universe:
            universe[event] = true_counts.get(event, 0)
    return _classify(universe, hardware, threshold_count)


def _classify(truth: Dict[ProfileTuple, int], hardware: IntervalProfile,
              threshold_count: int) -> List[ClassifiedCandidate]:
    classified: List[ClassifiedCandidate] = []
    for event, perfect_frequency in truth.items():
        hardware_frequency = hardware.frequency(event)
        category = classify_candidate(perfect_frequency,
                                      hardware_frequency, threshold_count)
        classified.append(ClassifiedCandidate(
            event=event,
            perfect_frequency=perfect_frequency,
            hardware_frequency=hardware_frequency,
            category=category))
    return classified


def by_category(classified: List[ClassifiedCandidate]
                ) -> Dict[Category, List[ClassifiedCandidate]]:
    """Group classified candidates for per-category reporting."""
    groups: Dict[Category, List[ClassifiedCandidate]] = {
        category: [] for category in Category}
    for candidate in classified:
        groups[candidate.category].append(candidate)
    return groups
