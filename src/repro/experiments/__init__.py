"""Experiment harness: one module per evaluation figure.

Import :data:`~repro.experiments.base.EXPERIMENTS` (populated by
importing this package) to run figures programmatically, or use the
``repro-experiments`` CLI.
"""

from .base import EXPERIMENTS, ExperimentReport, ExperimentScale
from .fabric import ExperimentFabric, activate, current_fabric, fabric_map

# Register every experiment.
from . import (ablations, adaptive_interval, area_budget, baselines,  # noqa: F401
               fig04_distinct_tuples,  # noqa: F401,E402
               fig05_candidates, fig06_variation, fig07_single_hash,
               fig09_theory, fig10_multihash_design, fig12_best_multihash,
               fig13_per_interval, fig14_edge, stratified_baseline,
               table_size_ablation)

__all__ = ["EXPERIMENTS", "ExperimentFabric", "ExperimentReport",
           "ExperimentScale", "activate", "current_fabric", "fabric_map"]
