"""Extension: head-to-head with the Stratified Sampler baseline.

The paper positions its architecture against Sastry et al.'s stratified
sampler, which achieves accuracy only by accumulating samples in
*software* -- at a reported ~5 % runtime overhead for value profiling.
This experiment runs both on the same streams and reports:

* per-interval error of the software-reconstructed stratified profile
  versus the pure-hardware multi-hash profile, and
* the stratified sampler's message/interrupt traffic and modelled
  software overhead (the multi-hash profiler's is zero by
  construction -- no software is involved).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.config import best_multi_hash
from ..core.stratified import StratifiedConfig, StratifiedSampler
from ..core.tuples import EventKind
from ..metrics.reports import format_table
from ..profiling.session import ProfilingSession
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map


#: Overhead-model constants: a profiled load event represents ~4 cycles
#: of program execution (loads are ~1/4 of instructions at ~1 IPC), and
#: one interrupt costs ~1,200 cycles to take and drain a 100-entry
#: buffer.  With the default sampling threshold this lands the baseline
#: near the ~5 % software overhead Sastry et al. report.
CYCLES_PER_EVENT = 4.0
CYCLES_PER_INTERRUPT = 1_200


def _comparison_cell(payload):
    """Run MH4 vs the stratified sampler on one benchmark."""
    name, kind, sampling_threshold, scale = payload
    spec = scale.short_spec
    stratified = StratifiedSampler(StratifiedConfig(
        interval=spec, sampling_threshold=sampling_threshold))
    session = ProfilingSession([
        scale.pin(best_multi_hash(spec)),
        stratified,
    ])
    outcome = session.run(benchmark_generator(name, kind),
                          max_intervals=scale.short_intervals)
    results = list(outcome.results.values())
    overhead = stratified.software_overhead(
        cycles_per_interrupt=CYCLES_PER_INTERRUPT,
        cycles_per_event=CYCLES_PER_EVENT)
    return {
        "multi_hash_error": results[0].summary.percent(),
        "stratified_error": results[1].summary.percent(),
        "messages": stratified.messages,
        "interrupts": stratified.interrupts,
        "software_overhead": overhead,
    }


@experiment("stratified")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE,
        sampling_threshold: int = 32) -> ExperimentReport:
    """Compare error and software cost against the stratified sampler."""
    scale = scale or ExperimentScale.from_env()
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    cells = fabric_map(
        _comparison_cell,
        [(name, kind, sampling_threshold, scale)
         for name in scale.benchmarks])
    for name, errors in zip(scale.benchmarks, cells):
        data[name] = errors
        rows.append([name, errors["multi_hash_error"],
                     errors["stratified_error"], errors["messages"],
                     errors["interrupts"],
                     round(100.0 * errors["software_overhead"], 2)])

    report = ExperimentReport(
        experiment="stratified",
        title=("multi-hash (pure hardware) vs stratified sampler "
               "(hardware + software), 10K @ 1%"),
        data=data,
    )
    report.add_table(
        "error % and software cost (multi-hash has zero software cost)",
        format_table(["benchmark", "MH4 err%", "Strat err%", "messages",
                      "interrupts", "sw overhead %"], rows))
    return report
