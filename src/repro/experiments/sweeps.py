"""Shared config-sweep machinery for the error-rate figures.

Figures 7 and 10-14 all have the same skeleton: for each benchmark,
feed one stream through a set of profiler configurations and tabulate
each configuration's error breakdown.  :func:`sweep` runs that skeleton
(one stream pass per benchmark, all configurations in lockstep) and
returns the summaries for the figure modules to format.

Each ``(benchmark, configuration set)`` pair is an independent cell:
when an :mod:`~repro.experiments.fabric` fabric is active, cells are
scheduled across its worker pool and memoized in its result cache,
with bit-identical results; otherwise they run serially in-process,
exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.config import ProfilerConfig
from ..core.tuples import EventKind
from ..metrics.error import ErrorSummary
from ..metrics.reports import breakdown_headers, breakdown_row, format_table
from ..profiling.session import ProfilingSession
from ..workloads.benchmarks import benchmark_generator
from .fabric import current_fabric

#: ``{benchmark: {config label: summary}}``
SweepResult = Dict[str, Dict[str, ErrorSummary]]


def sweep(benchmarks: Sequence[str],
          configs: Sequence[Tuple[str, ProfilerConfig]],
          num_intervals: int,
          kind: EventKind = EventKind.VALUE,
          keep_profiles: bool = False,
          backend: str = "auto") -> SweepResult:
    """Run every benchmark through every configuration.

    *configs* pairs a display label with a configuration; labels must
    be unique.  Returns per-benchmark, per-label error summaries.
    *backend* pins every configuration to a concrete profiler backend
    (``auto`` keeps each config's own setting).
    """
    labels = [label for label, _ in configs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate config labels in {labels}")
    if backend != "auto":
        configs = [(label, config.with_backend(backend))
                   for label, config in configs]
    fabric = current_fabric()
    if fabric is not None and not keep_profiles:
        return fabric.run_sweep(benchmarks, configs, num_intervals, kind)
    results: SweepResult = {}
    for benchmark in benchmarks:
        session = ProfilingSession([config for _, config in configs],
                                   keep_profiles=keep_profiles)
        outcome = session.run(benchmark_generator(benchmark, kind),
                              max_intervals=num_intervals)
        by_label: Dict[str, ErrorSummary] = {}
        for label, result in zip(labels, outcome.results.values()):
            by_label[label] = result.summary
        results[benchmark] = by_label
    return results


def breakdown_table(results: SweepResult,
                    labels: Sequence[str]) -> str:
    """One row per (benchmark, config) with the four-way error split."""
    rows: List[List[object]] = []
    for benchmark, by_label in results.items():
        for label in labels:
            rows.append([benchmark, label,
                         *breakdown_row(by_label[label])])
    return format_table(breakdown_headers("benchmark", "config"), rows)


def totals_table(results: SweepResult, labels: Sequence[str]) -> str:
    """Benchmarks as rows, configs as columns, total error % in cells."""
    headers = ["benchmark", *labels]
    rows = [[benchmark] + [by_label[label].percent() for label in labels]
            for benchmark, by_label in results.items()]
    averages: List[object] = ["AVERAGE"]
    for label in labels:
        values = [by_label[label].percent()
                  for by_label in results.values()]
        averages.append(sum(values) / len(values) if values else 0.0)
    rows.append(averages)
    return format_table(headers, rows)


def average_error(results: SweepResult, label: str) -> float:
    """Mean total error (percent) of one configuration across
    benchmarks."""
    values = [by_label[label].percent() for by_label in results.values()]
    return sum(values) / len(values) if values else 0.0
