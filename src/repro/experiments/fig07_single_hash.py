"""Figure 7: single-hash profiler with retaining/resetting.

For every benchmark, the four single-hash configurations P0/P1 x R0/R1
(retaining / resetting off and on) are scored with the four-way error
breakdown, at 10 K @ 1 % (left panel) and the long 0.1 % point (right
panel).  Expected shape (Section 5.6.2): both optimizations reduce
total error, P1-R1 is best overall, resetting trades false positives
for occasional false negatives, and errors are far larger at the long
operating point.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.config import IntervalSpec, ProfilerConfig
from ..core.tuples import EventKind
from .base import ExperimentReport, ExperimentScale, experiment
from .sweeps import breakdown_table, sweep

#: The paper's config order: P0R0, P0R1, P1R0, P1R1.
MATRIX = ((False, False), (False, True), (True, False), (True, True))


def single_hash_configs(spec: IntervalSpec
                        ) -> List[Tuple[str, ProfilerConfig]]:
    """The four labelled P x R single-hash configurations."""
    configs = []
    for retaining, resetting in MATRIX:
        label = f"P{int(retaining)}-R{int(resetting)}"
        configs.append((label, ProfilerConfig(
            interval=spec, num_tables=1,
            retaining=retaining, resetting=resetting)))
    return configs


@experiment("fig07")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Score the P x R matrix at both operating points."""
    scale = scale or ExperimentScale.from_env()
    report = ExperimentReport(
        experiment="fig07",
        title="single-hash profiler: retaining (P) x resetting (R)",
        data={},
    )
    panels = [
        ("10K @ 1%", scale.short_spec, scale.short_intervals),
        (f"{scale.long_interval_length:,} @ 0.1%", scale.long_spec,
         scale.long_intervals),
    ]
    for label, spec, num_intervals in panels:
        configs = single_hash_configs(spec)
        results = sweep(scale.benchmarks, configs, num_intervals,
                        kind=kind, backend=scale.backend)
        report.data[label] = results
        report.add_table(f"error breakdown, intervals of {label}",
                         breakdown_table(results,
                                         [name for name, _ in configs]))
    return report
