"""Figure 5: number of unique candidate tuples per interval.

Per benchmark and interval length, the mean number of tuples crossing
the candidate threshold (top panel: 1 %, bottom panel: 0.1 %).  The
paper's observations: candidates are a tiny fraction of the distinct
tuples of Figure 4, and their count is roughly independent of interval
length -- so the filtering job gets *harder* with longer intervals
(more noise, same signal).
"""

from __future__ import annotations

from typing import Dict

from ..core.tuples import EventKind
from ..metrics.reports import format_table
from ..workloads.analysis import interval_statistics
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map
from .fig04_distinct_tuples import interval_lengths

THRESHOLDS = (0.01, 0.001)


def _candidate_cell(payload) -> Dict[float, Dict[int, float]]:
    """One benchmark's Figure 5 candidate counts (a fabric cell)."""
    name, kind, lengths, scale = payload
    row: Dict[float, Dict[int, float]] = {
        threshold: {} for threshold in THRESHOLDS}
    for length in lengths:
        budget = max(2, (scale.long_intervals
                         * scale.long_interval_length) // length)
        generator = benchmark_generator(name, kind)
        statistics = interval_statistics(generator, length,
                                         min(budget, 60),
                                         thresholds=THRESHOLDS)
        for threshold in THRESHOLDS:
            row[threshold][length] = statistics.mean_candidates(threshold)
    return row


@experiment("fig05")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Measure mean candidates per interval at 1 % and 0.1 %."""
    scale = scale or ExperimentScale.from_env()
    lengths = interval_lengths(scale)
    rows_by_benchmark = fabric_map(
        _candidate_cell,
        [(name, kind, lengths, scale) for name in scale.benchmarks])
    candidates: Dict[float, Dict[str, Dict[int, float]]] = {
        threshold: {} for threshold in THRESHOLDS}
    for name, row in zip(scale.benchmarks, rows_by_benchmark):
        for threshold in THRESHOLDS:
            candidates[threshold][name] = row[threshold]

    report = ExperimentReport(
        experiment="fig05",
        title="unique candidate tuples per interval",
        data={"lengths": lengths, "candidates": candidates},
    )
    headers = ["benchmark"] + [f"{length:,}" for length in lengths]
    for threshold in THRESHOLDS:
        rows = [[name] + [round(candidates[threshold][name][length], 1)
                          for length in lengths]
                for name in scale.benchmarks]
        report.add_table(
            f"mean candidates over {100 * threshold:g}% threshold",
            format_table(headers, rows))
    return report
