"""Figure 13: per-interval error across profile cycles.

The error of every individual interval (the paper's "profile cycle")
at the long operating point, for the best single hash with resetting
(left panel) versus the best multi-hash (4 tables, conservative
update, no resetting; right panel).  Expected shape: the multi-hash
series removes most of the single-hash spikes (especially for gcc and
go), at the cost of occasional conservative-update piggyback spikes
(the paper's burg callout).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.config import best_multi_hash, best_single_hash
from ..core.tuples import EventKind
from ..metrics.charts import series_chart
from ..metrics.reports import format_table, series_table
from ..profiling.session import ProfilingSession
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map


def _series_cell(payload):
    """BSH and MH4 per-interval error series for one benchmark."""
    name, kind, cycles, scale = payload
    spec = scale.long_spec
    session = ProfilingSession([
        scale.pin(best_single_hash(spec)),
        scale.pin(best_multi_hash(spec, num_tables=4)),
    ])
    outcome = session.run(benchmark_generator(name, kind),
                          max_intervals=cycles)
    results = list(outcome.results.values())
    return results[0].summary.series(), results[1].summary.series()


@experiment("fig13")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE,
        num_intervals: int = None) -> ExperimentReport:
    """Collect per-interval error series for BSH vs MH4."""
    scale = scale or ExperimentScale.from_env()
    spec = scale.long_spec
    cycles = num_intervals or max(scale.long_intervals, 12)
    series: Dict[str, Dict[str, List[float]]] = {"BSH": {}, "MH4": {}}
    cells = fabric_map(
        _series_cell,
        [(name, kind, cycles, scale) for name in scale.benchmarks])
    for name, (bsh, mh4) in zip(scale.benchmarks, cells):
        series["BSH"][name] = bsh
        series["MH4"][name] = mh4

    report = ExperimentReport(
        experiment="fig13",
        title=(f"per-interval error, intervals of "
               f"{spec.length:,} @ 0.1%"),
        data={"series": series},
    )
    for label in ("BSH", "MH4"):
        report.add_table(f"{label}: % error per profile cycle",
                         series_table(series[label]))
    stressed = max(scale.benchmarks,
                   key=lambda name: sum(series["BSH"][name]))
    for label in ("BSH", "MH4"):
        report.add_table(
            f"{label} per-cycle error on {stressed} (the most stressed "
            f"benchmark)",
            series_chart([100.0 * v for v in series[label][stressed]]))
    spikes = [[name,
               _spike_count(series["BSH"][name]),
               _spike_count(series["MH4"][name])]
              for name in scale.benchmarks]
    report.data["spikes"] = {row[0]: (row[1], row[2]) for row in spikes}
    report.add_table(
        "profile cycles with error over 10%",
        format_table(["benchmark", "BSH spikes", "MH4 spikes"], spikes))
    return report


def _spike_count(series: List[float], threshold: float = 0.10) -> int:
    """Cycles whose error exceeds *threshold* (a Figure 13 'spike')."""
    return sum(1 for value in series if value > threshold)
