"""Section 7 area accounting: 7-16 KB total profiler storage.

The paper's hardware budget: a 6 KB hash table (2 K entries of 3-byte
counters, however many tables it is split into) plus a 1 KB accumulator
at the 1 % threshold (100 entries) or 10 KB at 0.1 % (1,000 entries).
This experiment reproduces the arithmetic for the evaluated
configurations and compares against the stratified-sampler baseline's
storage.
"""

from __future__ import annotations

from ..core.area import profiler_area, stratified_area
from ..core.config import (LONG_INTERVAL, SHORT_INTERVAL, ProfilerConfig)
from ..core.stratified import StratifiedConfig
from ..metrics.reports import format_table
from .base import ExperimentReport, ExperimentScale, experiment


@experiment("area")
def run(scale: ExperimentScale = None) -> ExperimentReport:
    """Tabulate storage for the paper's operating points."""
    del scale  # pure arithmetic; nothing to scale
    rows = []
    data = {}
    for threshold_label, spec in (("1%", SHORT_INTERVAL),
                                  ("0.1%", LONG_INTERVAL)):
        for tables in (1, 2, 4, 8, 16):
            config = ProfilerConfig(interval=spec, num_tables=tables,
                                    conservative_update=tables > 1)
            area = profiler_area(config)
            rows.append([f"{config.label} @ {threshold_label}",
                         area.hash_table_bytes,
                         area.accumulator_bytes,
                         round(area.total_kilobytes, 2)])
            data[(threshold_label, tables)] = area
    stratified = stratified_area(StratifiedConfig(interval=SHORT_INTERVAL))
    rows.append(["Stratified (Sastry et al.)",
                 stratified.hash_table_bytes,
                 stratified.accumulator_bytes,
                 round(stratified.total_kilobytes, 2)])
    data["stratified"] = stratified

    report = ExperimentReport(
        experiment="area",
        title="hardware storage budget (Section 7)",
        data=data,
    )
    report.add_table(
        "bytes per structure",
        format_table(["configuration", "hash bytes", "accum bytes",
                      "total KB"], rows))
    return report
