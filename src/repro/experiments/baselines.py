"""Extension: the Section 4 baseline taxonomy, head to head.

The paper classifies prior profilers into software, counter-assisted,
hardware-table-based, and co-processor approaches, and argues its
architecture beats the table-based family at equal cost.  This
experiment makes the comparison concrete on our streams: the best
multi-hash configuration versus

* the best single hash (the paper's own strawman),
* an area-equivalent tagged profile buffer (Conte/Merten style,
  Section 4.1.3),
* the stratified sampler (Sastry et al.), and
* the hot-spot detector (Merten et al.) on edge streams, scored with
  the same metric to show it answers a different question (regions,
  not counts).
"""

from __future__ import annotations

from typing import List

from ..core.config import best_multi_hash, best_single_hash
from ..core.hotspot import HotSpotConfig, HotSpotDetector
from ..core.stratified import StratifiedConfig, StratifiedSampler
from ..core.tagged_table import area_equivalent_config, TaggedTableProfiler
from ..core.tuples import EventKind
from ..metrics.reports import format_table
from ..profiling.session import ProfilingSession
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map


def _short_cell(payload):
    """Score every baseline family on one benchmark (a fabric cell)."""
    name, scale = payload
    spec = scale.short_spec
    profilers = [
        ("MH4", scale.pin(best_multi_hash(spec))),
        ("BSH", scale.pin(best_single_hash(spec))),
        ("Tagged", TaggedTableProfiler(
            area_equivalent_config(spec))),
        ("Stratified", StratifiedSampler(StratifiedConfig(
            interval=spec, sampling_threshold=32))),
    ]
    session = ProfilingSession([item for _, item in profilers])
    outcome = session.run(benchmark_generator(name),
                          max_intervals=scale.short_intervals)
    errors = {label: result.summary.percent()
              for (label, _), result in zip(profilers,
                                            outcome.results.values())}

    hotspot = HotSpotDetector(HotSpotConfig(interval=spec))
    edge_outcome = ProfilingSession([hotspot]).run(
        benchmark_generator(name, EventKind.EDGE),
        max_intervals=max(4, scale.short_intervals // 2))
    errors["HotSpot(edge)"] = edge_outcome.summary.percent()
    errors["hot_fraction"] = 100.0 * hotspot.hot_fraction()
    return errors


def _long_cell(payload):
    """Long-point comparison of the hardware-table designs."""
    name, scale = payload
    long_spec = scale.long_spec
    profilers = [
        ("MH4", scale.pin(best_multi_hash(long_spec))),
        ("BSH", scale.pin(best_single_hash(long_spec))),
        ("Tagged", TaggedTableProfiler(area_equivalent_config(
            long_spec, budget_bytes=16_384))),
    ]
    session = ProfilingSession([item for _, item in profilers])
    outcome = session.run(benchmark_generator(name),
                          max_intervals=scale.long_intervals)
    return {label: result.summary.percent()
            for (label, _), result in zip(profilers,
                                          outcome.results.values())}


@experiment("baselines")
def run(scale: ExperimentScale = None) -> ExperimentReport:
    """Score every baseline family on the value streams (plus the
    hot-spot detector on edge streams)."""
    scale = scale or ExperimentScale.from_env()
    spec = scale.short_spec
    rows: List[List[object]] = []
    data = {}
    short_cells = fabric_map(
        _short_cell, [(name, scale) for name in scale.benchmarks])
    for name, errors in zip(scale.benchmarks, short_cells):
        data[name] = errors
        rows.append([name, errors["MH4"], errors["BSH"],
                     errors["Tagged"], errors["Stratified"],
                     errors["HotSpot(edge)"],
                     round(errors["hot_fraction"], 1)])

    report = ExperimentReport(
        experiment="baselines",
        title="Section 4 baseline families vs the multi-hash profiler, "
              "10K @ 1%",
        data=data,
    )
    report.add_table(
        "total error % per family (hot_frac% = time in detected hot "
        "spots)",
        format_table(["benchmark", "MH4", "BSH", "Tagged", "Stratified",
                      "HotSpot(edge)", "hot_frac%"], rows))

    # The table-based family's capacity limit only bites at the long
    # operating point (up to 1,000 candidates + heavy churn); compare
    # the hardware-table designs there too.
    long_spec = scale.long_spec
    long_rows: List[List[object]] = []
    long_cells = fabric_map(
        _long_cell, [(name, scale) for name in scale.benchmarks])
    for name, errors in zip(scale.benchmarks, long_cells):
        data[f"{name}/long"] = errors
        long_rows.append([name, errors["MH4"], errors["BSH"],
                          errors["Tagged"]])
    report.add_table(
        f"total error % at {long_spec.length:,} @ 0.1% (16 KB budget "
        f"each)",
        format_table(["benchmark", "MH4", "BSH", "Tagged"], long_rows))
    return report
