"""Extension: mechanism ablations of the multi-hash design.

The paper motivates each mechanism qualitatively; this experiment
removes them one at a time from the best configuration (MH4, C1-R0,
retaining) on the stressed benchmarks:

* **shielding off** -- promoted tuples keep feeding the hash tables,
  re-inflating shared counters (Section 5.2 argues shielding "is
  important to help reduce error rates");
* **narrow counters** -- the paper pays for 3-byte counters; an
   8-bit counter saturates below the long point's threshold and the
  profiler goes blind, while 12+ bits behave like 24;
* **undersized accumulator** -- halving the worst-case bound breaks
  the Section 5.1 no-overflow guarantee and drops promotions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..core.config import ProfilerConfig, best_multi_hash
from ..core.tuples import EventKind
from .base import ExperimentReport, ExperimentScale, experiment
from .sweeps import breakdown_table, sweep

#: Counter widths swept (bits).  The long threshold needs
#: ceil(log2(threshold_count)) bits to even represent a crossing.
COUNTER_WIDTHS = (8, 12, 16, 24)


@experiment("ablations")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Remove one mechanism at a time from the best multi-hash."""
    scale = scale or ExperimentScale.from_env()
    spec = scale.long_spec
    benchmarks = [name for name in ("gcc", "go")
                  if name in scale.benchmarks] or list(scale.benchmarks)
    best = best_multi_hash(spec)

    configs: List[Tuple[str, ProfilerConfig]] = [("best", best)]
    configs.append(("no-shield", replace(best, shielding=False)))
    for bits in COUNTER_WIDTHS:
        if bits != best.counter_bits:
            configs.append((f"{bits}b-counters",
                            replace(best, counter_bits=bits)))
    configs.append(("half-accumulator", replace(
        best, accumulator_entries=max(1, spec.max_candidates // 2))))
    configs.append(("no-retain", replace(best, retaining=False)))

    results = sweep(benchmarks, configs, scale.long_intervals, kind=kind,
                    backend=scale.backend)
    report = ExperimentReport(
        experiment="ablations",
        title=(f"mechanism ablations of MH4 C1-R0, intervals of "
               f"{spec.length:,} @ 0.1%"),
        data={"results": results,
              "threshold_count": spec.threshold_count},
    )
    report.add_table("error breakdown per ablation",
                     breakdown_table(results,
                                     [label for label, _ in configs]))
    return report
