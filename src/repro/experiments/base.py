"""Experiment harness shared machinery.

Every evaluation figure of the paper has a module here exposing
``run(scale, ...) -> ExperimentReport``.  Reports carry both formatted
tables (what the bench targets print -- the same rows/series the paper
plots) and the raw data (what the tests assert shape criteria on).

Scaling: the paper profiles 500 M-event ATOM traces; pure Python
defaults to shorter runs.  :class:`ExperimentScale` centralizes the
knobs; ``ExperimentScale.from_env()`` honours:

* ``REPRO_FULL=1`` -- the paper's full operating points (1 M-event long
  intervals);
* ``REPRO_LONG_LENGTH`` / ``REPRO_LONG_INTERVALS`` /
  ``REPRO_SHORT_INTERVALS`` -- individual overrides;
* ``REPRO_BENCHMARKS`` -- comma-separated benchmark subset.

Backend: experiment configs leave ``backend="auto"``, so
``REPRO_BACKEND`` (or ``repro-experiments --backend``) selects the
scalar reference or the vectorized kernels for a whole run; results
are bit-identical either way (``tests/test_kernel_parity.py``).

Error is averaged per interval, so scaling changes statistical noise
and hash-table pressure (both noted in EXPERIMENTS.md), not the
mechanisms being exercised.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Tuple

from ..core.config import (BACKENDS, LONG_INTERVAL, SHORT_INTERVAL,
                           IntervalSpec)
from ..workloads.benchmarks import BENCHMARK_NAMES


@dataclass(frozen=True)
class ExperimentScale:
    """How much of each experiment to run.

    The short operating point is always the paper's exact 10 K @ 1 %
    (it is cheap); the long point keeps the paper's 0.1 % threshold but
    scales the interval length.

    ``backend`` pins every profiler an experiment builds (``auto``
    defers to ``REPRO_BACKEND`` as usual).  It is threaded explicitly
    -- rather than smuggled through the environment -- so parallel
    fabric workers inherit the choice through cell payloads.
    """

    long_interval_length: int = 200_000
    long_intervals: int = 6
    short_intervals: int = 30
    benchmarks: Tuple[str, ...] = BENCHMARK_NAMES
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.long_interval_length < 10_000:
            raise ValueError(
                f"long_interval_length must be >= 10000, got "
                f"{self.long_interval_length}")
        unknown = [name for name in self.benchmarks
                   if name not in BENCHMARK_NAMES]
        if unknown:
            raise ValueError(f"unknown benchmarks {unknown}; known: "
                             f"{', '.join(BENCHMARK_NAMES)}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(BACKENDS)}, "
                f"got {self.backend!r}")

    @property
    def short_spec(self) -> IntervalSpec:
        """The paper's 10 K @ 1 % operating point."""
        return SHORT_INTERVAL

    @property
    def long_spec(self) -> IntervalSpec:
        """The (possibly scaled) 0.1 % operating point."""
        return IntervalSpec(self.long_interval_length,
                            LONG_INTERVAL.threshold)

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Build a scale from ``REPRO_*`` environment variables."""
        scale = cls()
        if os.environ.get("REPRO_FULL") == "1":
            scale = replace(scale,
                            long_interval_length=LONG_INTERVAL.length,
                            long_intervals=10,
                            short_intervals=60)
        length = os.environ.get("REPRO_LONG_LENGTH")
        if length:
            scale = replace(scale, long_interval_length=int(length))
        intervals = os.environ.get("REPRO_LONG_INTERVALS")
        if intervals:
            scale = replace(scale, long_intervals=int(intervals))
        short = os.environ.get("REPRO_SHORT_INTERVALS")
        if short:
            scale = replace(scale, short_intervals=int(short))
        benchmarks = os.environ.get("REPRO_BENCHMARKS")
        if benchmarks:
            scale = replace(scale, benchmarks=tuple(
                name.strip() for name in benchmarks.split(",")
                if name.strip()))
        return scale

    def tiny(self) -> "ExperimentScale":
        """A seconds-scale configuration for unit tests."""
        return replace(self, long_interval_length=20_000,
                       long_intervals=2, short_intervals=4,
                       benchmarks=("li", "gcc"))

    def pin(self, config):
        """*config* with this scale's backend applied (``auto``: as-is)."""
        if self.backend == "auto":
            return config
        return config.with_backend(self.backend)


@dataclass
class ExperimentReport:
    """One experiment's output: formatted tables plus raw data."""

    experiment: str
    title: str
    tables: List[Tuple[str, str]] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def add_table(self, caption: str, table: str) -> None:
        self.tables.append((caption, table))

    def render(self) -> str:
        """The full printable report."""
        parts = [f"=== {self.experiment}: {self.title}"]
        for caption, table in self.tables:
            parts.append(f"-- {caption}")
            parts.append(table)
        return "\n\n".join(parts)


#: Registry of experiment entry points, keyed by short name.
EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {}


def experiment(name: str) -> Callable:
    """Register an experiment ``run`` function under *name*."""
    def register(function: Callable[..., ExperimentReport]) -> Callable:
        if name in EXPERIMENTS:
            raise ValueError(f"duplicate experiment name {name!r}")
        EXPERIMENTS[name] = function
        return function
    return register
