"""Scenario suite: adversarial stream scenarios across all backends.

Runs every selected scenario (``REPRO_SCENARIOS``: preset names or YAML
paths, default the shipped ``stress_test`` and ``adversarial`` presets)
through the paper's best single-hash and best multi-hash profilers on
**all three** event-processing backends -- the scalar reference, the
vectorized kernels, and the cross-session batched fold.  Each
(scenario, backend) pair is one fabric cell; the parent asserts the
three backends produced **bit-identical** per-interval profiles (a
SHA-256 over every candidate list) before reporting accuracy, so the
scenario suite doubles as a cross-backend parity harness over streams
deliberately nastier than the calibrated benchmarks.

Expected shape: the ``adversarial`` preset's engineered fold-table
collisions inflate single-hash error well past multi-hash error (the
Section 6.2 aliasing argument); ``stress_test``'s phase drift and
bursts raise error for both relative to the calm paper streams.

Set ``REPRO_SCENARIOS_OUT`` to also write the raw report data as JSON
(the CI smoke job diffs serial vs parallel bytes).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from ..ioutil import atomic_write_json
from ..metrics.reports import format_table
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import current_fabric, fabric_map

#: Every backend, every scenario: parity is the point.
SCENARIO_BACKENDS = ("scalar", "vectorized", "batched")

#: The scored profilers, in report order.
PROFILER_LABELS = ("best_single_hash", "best_multi_hash")


def selected_scenarios() -> List[str]:
    """Scenario refs to run: ``REPRO_SCENARIOS`` or the presets."""
    configured = os.environ.get("REPRO_SCENARIOS")
    if configured:
        return [ref.strip() for ref in configured.split(",")
                if ref.strip()]
    from ..workloads.scenarios import list_presets

    return list_presets()


def _profile_digest(results) -> str:
    """SHA-256 over every per-interval candidate profile, in order."""
    digest = hashlib.sha256()
    for label, result in zip(PROFILER_LABELS, results):
        for profile in result.profiles:
            candidates = sorted(
                (int(pc), int(value), int(count))
                for (pc, value), count in profile.candidates.items())
            digest.update(json.dumps(
                [label, profile.index, candidates],
                separators=(",", ":")).encode("utf-8"))
    return digest.hexdigest()


def _scenario_cell(payload: Tuple[str, str, int, Optional[str]]) -> Dict:
    """One (scenario, backend) run; the worker-side entry point."""
    config_json, backend, num_intervals, trace_directory = payload
    from ..core.config import best_multi_hash, best_single_hash
    from ..profiling.session import ProfilingSession
    from ..workloads.scenarios import ScenarioConfig, ScenarioStream

    scenario = ScenarioConfig.from_dict(json.loads(config_json))
    spec = scenario.profile.spec
    configs = [best_single_hash(spec).with_backend(backend),
               best_multi_hash(spec).with_backend(backend)]
    if trace_directory is not None:
        from ..workloads.trace_store import TraceStore

        source = TraceStore(trace_directory).get_scenario(
            scenario, num_intervals)
    else:
        source = ScenarioStream(scenario)
    session = ProfilingSession(configs, keep_profiles=True)
    outcome = session.run(source, max_intervals=num_intervals)
    results = list(outcome.results.values())
    return {
        "digest": _profile_digest(results),
        "summaries": {label: result.summary.to_dict()
                      for label, result in zip(PROFILER_LABELS, results)},
    }


@experiment("scenarios")
def run(scale: ExperimentScale = None) -> ExperimentReport:
    """Every scenario through every backend, with parity asserted."""
    from ..workloads.scenarios import load_scenario

    scale = scale or ExperimentScale.from_env()
    report = ExperimentReport(
        experiment="scenarios",
        title="adversarial scenario suite, all backends bit-identical",
        data={},
    )
    fabric = current_fabric()
    trace_directory = (fabric.trace_store.directory
                       if fabric is not None else None)

    scenarios = [load_scenario(ref) for ref in selected_scenarios()]
    plans = []
    payloads = []
    for scenario in scenarios:
        num_intervals = min(scenario.profile.intervals,
                            scale.short_intervals)
        for backend in SCENARIO_BACKENDS:
            plans.append((scenario, backend, num_intervals))
            payloads.append((scenario.canonical_json(), backend,
                             num_intervals, trace_directory))
    cells = fabric_map(_scenario_cell, payloads)

    rows = []
    for scenario in scenarios:
        outcomes = {backend: cell
                    for (plan_scenario, backend, _), cell
                    in zip(plans, cells)
                    if plan_scenario is scenario}
        digests = {backend: cell["digest"]
                   for backend, cell in outcomes.items()}
        if len(set(digests.values())) != 1:
            raise RuntimeError(
                f"scenario {scenario.name!r}: backends disagree on the "
                f"per-interval profiles: {digests}")
        num_intervals = min(scenario.profile.intervals,
                            scale.short_intervals)
        reference = outcomes[SCENARIO_BACKENDS[0]]["summaries"]
        errors = {label: _net_error(reference[label])
                  for label in PROFILER_LABELS}
        rows.append([
            scenario.name,
            f"{scenario.profile.interval_length:,}",
            f"{100 * scenario.profile.threshold:g}%",
            str(num_intervals),
            f"{errors['best_single_hash']:.3f}",
            f"{errors['best_multi_hash']:.3f}",
            digests[SCENARIO_BACKENDS[0]][:12],
        ])
        report.data[scenario.name] = {
            "fingerprint": scenario.fingerprint(),
            "interval_length": scenario.profile.interval_length,
            "threshold": scenario.profile.threshold,
            "intervals": num_intervals,
            "profile_digest": digests[SCENARIO_BACKENDS[0]],
            "backends": {backend: cell["summaries"]
                         for backend, cell in outcomes.items()},
        }
    report.add_table(
        f"net error % per scenario ({' = '.join(SCENARIO_BACKENDS)})",
        format_table(["scenario", "interval", "thresh", "n",
                      "SH-R1-P1", "MH4-C1-R0-P1", "digest"], rows))

    out_path = os.environ.get("REPRO_SCENARIOS_OUT")
    if out_path:
        atomic_write_json(out_path, report.data)
    return report


def _net_error(summary_dict: Dict) -> float:
    from ..metrics.error import ErrorSummary

    return ErrorSummary.from_dict(summary_dict).percent()
