"""Figures 10 and 11: multi-hash design space (C x R x table count).

For gcc and go -- the benchmarks with the most distinct tuples -- the
multi-hash profiler is swept over 1, 2, 4 and 8 hash tables, each in
the four combinations of conservative update (C) and immediate reset
(R), holding total counters at 2 K.  Figure 10 is the 10 K @ 1 % point;
Figure 11 is the long 0.1 % point (this module's :func:`run` takes the
panel as a parameter; ``fig11`` is registered as the long variant).

Expected shape: C1-R0 performs best; immediate reset manufactures
false negatives (worse with more tables); without conservative update
the long operating point stays at ~100 %+ error for go.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.config import IntervalSpec, ProfilerConfig
from ..core.tuples import EventKind
from .base import ExperimentReport, ExperimentScale, experiment
from .sweeps import breakdown_table, sweep

#: Table counts swept by the paper.
TABLE_COUNTS = (1, 2, 4, 8)

#: The paper's design-space benchmarks.
DESIGN_BENCHMARKS = ("gcc", "go")


def design_space_configs(spec: IntervalSpec
                         ) -> List[Tuple[str, ProfilerConfig]]:
    """All (tables x C x R) configurations, labelled ``nT-Cx-Ry``."""
    configs = []
    for tables in TABLE_COUNTS:
        for conservative in (False, True):
            for resetting in (False, True):
                label = (f"{tables}T-C{int(conservative)}"
                         f"-R{int(resetting)}")
                configs.append((label, ProfilerConfig(
                    interval=spec, num_tables=tables,
                    conservative_update=conservative,
                    resetting=resetting, retaining=True)))
    return configs


def _run_panel(scale: ExperimentScale, spec: IntervalSpec,
               num_intervals: int, kind: EventKind,
               experiment_name: str, panel_label: str) -> ExperimentReport:
    benchmarks = [name for name in DESIGN_BENCHMARKS
                  if name in scale.benchmarks] or list(scale.benchmarks)
    configs = design_space_configs(spec)
    results = sweep(benchmarks, configs, num_intervals, kind=kind,
                    backend=scale.backend)
    report = ExperimentReport(
        experiment=experiment_name,
        title=(f"multi-hash design space (C x R x tables), intervals "
               f"of {panel_label}"),
        data={"results": results},
    )
    report.add_table("error breakdown",
                     breakdown_table(results,
                                     [label for label, _ in configs]))
    return report


@experiment("fig10")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """The short-interval panel (Figure 10)."""
    scale = scale or ExperimentScale.from_env()
    return _run_panel(scale, scale.short_spec, scale.short_intervals,
                      kind, "fig10", "10K @ 1%")


@experiment("fig11")
def run_long(scale: ExperimentScale = None,
             kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """The long-interval panel (Figure 11)."""
    scale = scale or ExperimentScale.from_env()
    return _run_panel(scale, scale.long_spec, scale.long_intervals,
                      kind, "fig11",
                      f"{scale.long_interval_length:,} @ 0.1%")
