"""Command-line entry point: regenerate any figure's rows.

Usage::

    repro-experiments fig12                 # one experiment
    repro-experiments all                   # everything
    repro-experiments fig11 --full          # paper-scale operating point
    repro-experiments fig07 --benchmarks gcc,go --long-intervals 4

Scaling flags override the ``REPRO_*`` environment variables documented
in :mod:`repro.experiments.base`.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional

from ..core.config import BACKEND_ENV, LONG_INTERVAL
from .base import EXPERIMENTS, ExperimentScale

# Importing the experiment modules populates the registry.
from . import (ablations, adaptive_interval, area_budget, baselines,  # noqa: F401
               fig04_distinct_tuples, fig05_candidates, fig06_variation, fig07_single_hash,
               fig09_theory, fig10_multihash_design, fig12_best_multihash,
               fig13_per_interval, fig14_edge, stratified_baseline,
               table_size_ablation)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Regenerate the evaluation figures of 'Catching "
                     "Accurate Profiles in Hardware' (HPCA 2003)"))
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment names or 'all'; known: "
                             f"{', '.join(sorted(EXPERIMENTS))}")
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full operating points "
                             "(1M-event long intervals)")
    parser.add_argument("--long-length", type=int, default=None,
                        help="long interval length in events")
    parser.add_argument("--long-intervals", type=int, default=None,
                        help="number of long intervals per benchmark")
    parser.add_argument("--short-intervals", type=int, default=None,
                        help="number of 10K intervals per benchmark")
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--backend", choices=("scalar", "vectorized"),
                        default=None,
                        help="profiler backend for every experiment "
                             "(default: REPRO_BACKEND, else vectorized)")
    return parser


def scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.from_env()
    if args.full:
        scale = replace(scale,
                        long_interval_length=LONG_INTERVAL.length,
                        long_intervals=10, short_intervals=60)
    if args.long_length is not None:
        scale = replace(scale, long_interval_length=args.long_length)
    if args.long_intervals is not None:
        scale = replace(scale, long_intervals=args.long_intervals)
    if args.short_intervals is not None:
        scale = replace(scale, short_intervals=args.short_intervals)
    if args.benchmarks is not None:
        scale = replace(scale, benchmarks=tuple(
            name.strip() for name in args.benchmarks.split(",")
            if name.strip()))
    return scale


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        # Experiment configs leave backend="auto", which resolves
        # through REPRO_BACKEND at profiler-build time.
        import os

        os.environ[BACKEND_ENV] = args.backend
    scale = scale_from_args(args)
    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; known: "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for name in names:
        started = time.time()
        report = EXPERIMENTS[name](scale)
        print(report.render())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
