"""Command-line entry point: regenerate any figure's rows.

Usage::

    repro-experiments fig12                 # one experiment
    repro-experiments all                   # everything
    repro-experiments all --jobs 4          # everything, 4 workers
    repro-experiments fig11 --full          # paper-scale operating point
    repro-experiments fig07 --benchmarks gcc,go --long-intervals 4
    repro-experiments bench                 # serial-vs-parallel timing

Scaling flags override the ``REPRO_*`` environment variables documented
in :mod:`repro.experiments.base`.  ``--jobs`` (or ``REPRO_JOBS``)
fans the suite's independent cells out across worker processes;
results are bit-identical to a serial run at any job count.  Finished
sweep cells are memoized under ``--cache-dir`` (``REPRO_CACHE_DIR``,
default ``~/.cache/repro``); ``--no-cache`` disables the result cache
and ``--refresh`` recomputes but rewrites it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional

from ..core.config import LONG_INTERVAL
from ..ioutil import atomic_write_json
from .base import EXPERIMENTS, ExperimentScale
from .fabric import ExperimentFabric, activate, default_jobs

# Importing the experiment modules populates the registry.
from . import (ablations, adaptive_interval, area_budget, baselines,  # noqa: F401
               fig04_distinct_tuples, fig05_candidates, fig06_variation, fig07_single_hash,
               fig09_theory, fig10_multihash_design, fig12_best_multihash,
               fig13_per_interval, fig14_edge, scenarios,
               stratified_baseline, table_size_ablation)

#: Where ``repro-experiments bench`` writes its timing row.
BENCH_RESULT_PATH = os.path.join("benchmarks", "results",
                                 "BENCH_experiments.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Regenerate the evaluation figures of 'Catching "
                     "Accurate Profiles in Hardware' (HPCA 2003)"))
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment names, 'all', or 'bench'; "
                             f"known: {', '.join(sorted(EXPERIMENTS))}")
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full operating points "
                             "(1M-event long intervals)")
    parser.add_argument("--long-length", type=int, default=None,
                        help="long interval length in events")
    parser.add_argument("--long-intervals", type=int, default=None,
                        help="number of long intervals per benchmark")
    parser.add_argument("--short-intervals", type=int, default=None,
                        help="number of 10K intervals per benchmark")
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--backend",
                        choices=("scalar", "vectorized", "batched"),
                        default=None,
                        help="profiler backend for every experiment "
                             "(default: REPRO_BACKEND, else vectorized; "
                             "'batched' folds same-shape sweep cells "
                             "into one kernel dispatch per chunk)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for independent cells "
                             "(default: REPRO_JOBS, else all cores)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="trace + result cache root (default: "
                             "REPRO_CACHE_DIR, else ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed result "
                             "cache (traces are still shared)")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute every cell but rewrite the "
                             "result cache with the fresh outputs")
    return parser


def scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.from_env()
    if args.full:
        scale = replace(scale,
                        long_interval_length=LONG_INTERVAL.length,
                        long_intervals=10, short_intervals=60)
    if args.long_length is not None:
        scale = replace(scale, long_interval_length=args.long_length)
    if args.long_intervals is not None:
        scale = replace(scale, long_intervals=args.long_intervals)
    if args.short_intervals is not None:
        scale = replace(scale, short_intervals=args.short_intervals)
    if args.benchmarks is not None:
        scale = replace(scale, benchmarks=tuple(
            name.strip() for name in args.benchmarks.split(",")
            if name.strip()))
    if args.backend is not None:
        # Threaded through ExperimentScale -- never via os.environ, so
        # the flag cannot leak into other code in this process or into
        # worker processes beyond the configs it pins.
        scale = replace(scale, backend=args.backend)
    return scale


def resolve_names(requested: List[str]) -> List[str]:
    """Expand ``all`` (mixable with explicit names) and dedupe,
    preserving first-occurrence order."""
    expanded: List[str] = []
    for name in requested:
        if name == "all":
            expanded.extend(sorted(EXPERIMENTS))
        else:
            expanded.append(name)
    seen = set()
    ordered = []
    for name in expanded:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return ordered


def build_fabric(args: argparse.Namespace,
                 quiet: bool = False) -> ExperimentFabric:
    return ExperimentFabric(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_result_cache=not args.no_cache,
        refresh=args.refresh,
        progress=None if quiet else lambda line: print(f"  {line}",
                                                       flush=True))


def run_experiments(names: List[str], scale: ExperimentScale,
                    fabric: Optional[ExperimentFabric],
                    quiet: bool = False) -> Dict[str, float]:
    """Run *names* in order; returns per-experiment wall-clock."""
    timings: Dict[str, float] = {}
    for name in names:
        started = time.perf_counter()
        if fabric is not None:
            fabric.context = name
            with activate(fabric):
                report = EXPERIMENTS[name](scale)
        else:
            report = EXPERIMENTS[name](scale)
        timings[name] = time.perf_counter() - started
        if not quiet:
            print(report.render())
            print(f"[{name} finished in {timings[name]:.1f}s]\n")
    return timings


def run_bench(args: argparse.Namespace) -> int:
    """Time the full suite serial vs parallel (cold and warm cache)."""
    import tempfile

    scale = scale_from_args(args)
    names = sorted(EXPERIMENTS)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    result = {
        "suite": names,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "scale": {
            "benchmarks": list(scale.benchmarks),
            "short_intervals": scale.short_intervals,
            "long_intervals": scale.long_intervals,
            "long_interval_length": scale.long_interval_length,
        },
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        print(f"[bench] serial leg: {len(names)} experiments, "
              f"no fabric", flush=True)
        started = time.perf_counter()
        serial_times = run_experiments(names, scale, None, quiet=True)
        serial_seconds = time.perf_counter() - started

        print(f"[bench] parallel cold leg: --jobs {jobs}, fresh cache",
              flush=True)
        started = time.perf_counter()
        with ExperimentFabric(jobs=jobs, cache_dir=cache_dir) as fabric:
            cold_times = run_experiments(names, scale, fabric,
                                         quiet=True)
            cold_stats = fabric.stats.as_dict()
        cold_seconds = time.perf_counter() - started

        print(f"[bench] parallel warm leg: --jobs {jobs}, reused cache",
              flush=True)
        started = time.perf_counter()
        with ExperimentFabric(jobs=jobs, cache_dir=cache_dir) as fabric:
            warm_times = run_experiments(names, scale, fabric,
                                         quiet=True)
            warm_stats = fabric.stats.as_dict()
        warm_seconds = time.perf_counter() - started

    result.update({
        "serial_seconds": round(serial_seconds, 3),
        "parallel_cold_seconds": round(cold_seconds, 3),
        "parallel_warm_seconds": round(warm_seconds, 3),
        "parallel_speedup": round(serial_seconds / cold_seconds, 3),
        "warm_fraction_of_cold": round(warm_seconds / cold_seconds, 3),
        "per_experiment": {
            name: {"serial": round(serial_times[name], 3),
                   "parallel_cold": round(cold_times[name], 3),
                   "parallel_warm": round(warm_times[name], 3)}
            for name in names},
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    })

    atomic_write_json(BENCH_RESULT_PATH, result)
    print(f"[bench] serial {serial_seconds:.1f}s | parallel cold "
          f"{cold_seconds:.1f}s (x{result['parallel_speedup']:.2f}) | "
          f"warm {warm_seconds:.1f}s "
          f"({100 * result['warm_fraction_of_cold']:.0f}% of cold) | "
          f"jobs={jobs} cores={result['cpu_count']}")
    print(f"[bench] wrote {BENCH_RESULT_PATH}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = resolve_names(args.experiments)
    if "bench" in names:
        if len(names) > 1:
            print("'bench' runs the whole suite and cannot be mixed "
                  "with other experiment names", file=sys.stderr)
            return 2
        return run_bench(args)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; known: "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    scale = scale_from_args(args)
    started = time.perf_counter()
    with build_fabric(args) as fabric:
        timings = run_experiments(names, scale, fabric)
        stats = fabric.stats
    total = time.perf_counter() - started
    print(f"[suite: {len(timings)} experiment(s) in {total:.1f}s "
          f"wall-clock | jobs={fabric.jobs} | cells: "
          f"{stats.executed} executed, {stats.cache_hits} cached, "
          f"{stats.mapped_cells} mapped ({stats.mapped_hits} cached) | "
          f"{stats.cell_seconds:.1f}s total cell time]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
