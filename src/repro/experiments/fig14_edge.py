"""Figure 14: the best multi-hash profiler for edge profiling.

The Figure 12 sweep repeated with edge-profiling tuples
``<branch PC, target PC>`` and table counts 1, 2, 4, 8.  The edge
streams have far fewer distinct tuples (branch edges are a static
population), and the paper's conclusion carries over: the 4-table
multi-hash significantly outperforms the other configurations
including the best single hash.
"""

from __future__ import annotations

from typing import Tuple

from ..core.tuples import EventKind
from .base import ExperimentReport, ExperimentScale, experiment
from .fig12_best_multihash import run as run_fig12

#: The paper sweeps only up to 8 tables for edge profiling.
TABLE_COUNTS = (1, 2, 4, 8)


@experiment("fig14")
def run(scale: ExperimentScale = None,
        table_counts: Tuple[int, ...] = TABLE_COUNTS) -> ExperimentReport:
    """Figure 12's sweep over edge-profile streams."""
    scale = scale or ExperimentScale.from_env()
    report = run_fig12(scale, kind=EventKind.EDGE,
                       table_counts=table_counts)
    report.experiment = "fig14"
    report.title = "best multi-hash for edge profiling"
    return report
