"""Figure 9: theoretical false-positive probability of the multi-hash
profiler.

For a 1 % candidate threshold and a fixed counter budget split evenly
over ``n`` hash tables, the bound ``p(n) = (100 n / (t Z))^n`` is
plotted for ``Z`` in {500, 1000, 2000, 4000, 8000} and ``n`` from 1 to
16.  Expected shape: each curve falls to an optimum and rises again,
with the optimum moving right as the counter budget grows (1,000
entries degrade beyond 4 tables, exactly the paper's callout).
"""

from __future__ import annotations

from ..core.theory import (FIGURE9_ENTRY_CURVES, FIGURE9_TABLE_COUNTS,
                           figure9_curves, optimal_table_count)
from ..metrics.reports import format_table
from .base import ExperimentReport, ExperimentScale, experiment


@experiment("fig09")
def run(scale: ExperimentScale = None,
        threshold_percent: float = 1.0) -> ExperimentReport:
    """Tabulate the Figure 9 curves and per-budget optima."""
    del scale  # closed-form; nothing to scale
    curves = figure9_curves(threshold_percent)
    headers = ["tables"] + [f"{entries} entries"
                            for entries in FIGURE9_ENTRY_CURVES]
    rows = []
    for position, tables in enumerate(FIGURE9_TABLE_COUNTS):
        row: list = [tables]
        for entries in FIGURE9_ENTRY_CURVES:
            row.append(round(100.0 * curves[entries][position], 3))
        rows.append(row)
    optima = {entries: optimal_table_count(entries, threshold_percent)
              for entries in FIGURE9_ENTRY_CURVES}
    report = ExperimentReport(
        experiment="fig09",
        title=(f"theoretical false-positive probability, "
               f"{threshold_percent:g}% threshold"),
        data={"curves": curves, "optima": optima},
    )
    report.add_table("% false-positive probability (upper bound)",
                     format_table(headers, rows))
    report.add_table(
        "bound-minimizing table count per counter budget",
        format_table(["entries", "optimal tables"],
                     [[entries, optima[entries]]
                      for entries in FIGURE9_ENTRY_CURVES]))
    return report
