"""Figure 4: number of distinct tuples seen in an interval.

The paper plots, per benchmark, the average number of distinct value
tuples per interval for 10 K, 100 K and 1 M interval lengths (log
scale), observing (a) gcc/go see the most distinct tuples and (b) the
count grows roughly proportionally with interval length -- the
signal-to-noise argument motivating interval-based filtering.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.tuples import EventKind
from ..metrics.reports import format_table
from ..workloads.analysis import interval_statistics
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map

#: The paper's three interval lengths, scaled so the longest matches
#: the experiment scale's long interval.
def interval_lengths(scale: ExperimentScale) -> List[int]:
    longest = scale.long_interval_length
    return [10_000, min(100_000, max(10_000, longest // 10)), longest]


def _distinct_cell(payload) -> Dict[int, float]:
    """One benchmark's Figure 4 row (an independent fabric cell)."""
    name, kind, lengths, scale = payload
    row: Dict[int, float] = {}
    for length in lengths:
        # Keep total events comparable across lengths.
        budget = max(2, (scale.long_intervals
                         * scale.long_interval_length) // length)
        generator = benchmark_generator(name, kind)
        statistics = interval_statistics(generator, length,
                                         min(budget, 60),
                                         thresholds=())
        row[length] = statistics.mean_distinct()
    return row


@experiment("fig04")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Measure mean distinct tuples per interval for each length."""
    scale = scale or ExperimentScale.from_env()
    lengths = interval_lengths(scale)
    rows_by_benchmark = fabric_map(
        _distinct_cell,
        [(name, kind, lengths, scale) for name in scale.benchmarks])
    per_benchmark: Dict[str, Dict[int, float]] = dict(
        zip(scale.benchmarks, rows_by_benchmark))

    headers = ["benchmark"] + [f"{length:,}" for length in lengths]
    rows = [[name] + [round(per_benchmark[name][length])
                      for length in lengths]
            for name in scale.benchmarks]
    report = ExperimentReport(
        experiment="fig04",
        title="distinct tuples per interval (mean, by interval length)",
        data={"lengths": lengths, "distinct": per_benchmark},
    )
    report.add_table("mean distinct tuples per interval",
                     format_table(headers, rows))
    return report
