"""Parallel experiment fabric: process fan-out plus result caching.

The evaluation suite is a large sweep: every figure replays the same
per-benchmark event streams through many profiler configurations.  The
fabric decomposes that work into independent **cells** -- one
``(benchmark, configuration set, operating point)`` unit each -- and

* schedules cells across a ``ProcessPoolExecutor`` (``--jobs N`` /
  ``REPRO_JOBS``),
* replays benchmark streams from the shared
  :class:`~repro.workloads.trace_store.TraceStore`, memory-mapped, so
  no stream is generated twice across experiments or processes, and
* memoizes finished cells in a **content-addressed result cache**
  keyed by a stable fingerprint of everything that determines a cell's
  output, so re-running the suite re-executes only cells whose inputs
  changed.

Parity guarantee
----------------

Results are **bit-identical** to the serial in-process path at any job
count (``tests/test_fabric.py``):

* streams are deterministic per seed and the trace store materializes
  them with the exact chunk pattern the profiling session uses, so a
  replayed trace equals the live generator event-for-event;
* cells are independent (each owns its profilers and stream cursor)
  and results are reassembled in submission order, so scheduling order
  cannot leak into reports;
* cell results travel as JSON-safe dicts (`ErrorSummary.to_dict`)
  whether they come from a worker, the cache, or an in-process run --
  one serialization path, and JSON round-trips floats exactly.

Experiments reach the fabric two ways: :func:`repro.experiments.sweeps.
sweep` routes its per-benchmark cells through :meth:`ExperimentFabric.
run_sweep` (JSON-cached), and experiments with bespoke per-benchmark
loops use :func:`fabric_map` (pickle-cached by function name +
payload).  Both are parallel and memoized.

With no active fabric everything falls back to the plain serial path,
so library users and existing tests see unchanged behaviour.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..core.config import ProfilerConfig
from ..core.tuples import EventKind
from ..metrics.error import ErrorSummary

#: Environment variable giving the default worker-process count.
JOBS_ENV = "REPRO_JOBS"

#: Bumped whenever cell execution or serialization changes in a way
#: that invalidates previously cached results.
CACHE_SCHEMA = 1


#: Fewest pending cells worth paying process-pool dispatch for; below
#: this the fabric runs them in-process even when ``jobs > 1``.
MIN_POOL_CELLS = 3


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS``, else every available core."""
    configured = os.environ.get(JOBS_ENV)
    if configured:
        jobs = int(configured)
        if jobs < 1:
            raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
        return jobs
    return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``configs`` must already be pinned to concrete backends (no
    ``auto``) so worker processes cannot re-resolve them differently
    and the fingerprint names the backend that actually ran.
    """

    benchmark: str
    configs: Tuple[Tuple[str, ProfilerConfig], ...]
    num_intervals: int
    kind: EventKind
    seed: int

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(label for label, _ in self.configs)

    @property
    def interval_length(self) -> int:
        return self.configs[0][1].interval.length

    def manifest(self) -> Dict[str, object]:
        """Everything that determines this cell's output, JSON-safe."""
        return {
            "schema": CACHE_SCHEMA,
            "code": __version__,
            "benchmark": self.benchmark,
            "kind": self.kind.value,
            "seed": self.seed,
            "num_intervals": self.num_intervals,
            "configs": [[label, config.to_dict()]
                        for label, config in self.configs],
        }

    def fingerprint(self) -> str:
        """Stable content address of the cell."""
        payload = json.dumps(self.manifest(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def execute_sweep_cell(cell: SweepCell,
                       trace_directory: Optional[str]
                       ) -> Dict[str, Dict[str, object]]:
    """Run one cell to completion; the worker-side entry point.

    Returns ``{label: ErrorSummary.to_dict()}`` -- plain data, so the
    parent reassembles results identically whether a cell ran here, in
    another process, or came from the cache.
    """
    from ..profiling.session import ProfilingSession
    from ..workloads.benchmarks import benchmark_generator
    from ..workloads.trace_store import TraceStore

    if trace_directory is not None:
        source = TraceStore(trace_directory).get(
            cell.benchmark, cell.kind, cell.interval_length,
            cell.num_intervals, cell.seed)
    else:
        source = benchmark_generator(cell.benchmark, cell.kind, cell.seed)
    session = ProfilingSession([config for _, config in cell.configs])
    outcome = session.run(source, max_intervals=cell.num_intervals)
    return {label: result.summary.to_dict()
            for label, result in zip(cell.labels,
                                     outcome.results.values())}


def _timed_cell(cell: SweepCell, trace_directory: Optional[str]
                ) -> Tuple[Dict[str, Dict], float]:
    """Cell execution plus its own wall-clock, measured in the worker."""
    started = time.perf_counter()
    summaries = execute_sweep_cell(cell, trace_directory)
    return summaries, time.perf_counter() - started


class ResultCache:
    """Content-addressed store of finished sweep cells.

    Layout: ``<directory>/<fp[:2]>/<fp>.json`` holding the cell's
    manifest (for inspection) and its per-label summaries.  Writes are
    atomic, so concurrent suite runs can share a cache directory.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, fingerprint[:2],
                            f"{fingerprint}.json")

    def load(self, cell: SweepCell) -> Optional[Dict[str, Dict]]:
        path = self._path(cell.fingerprint())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
        except (OSError, ValueError):
            return None
        summaries = stored.get("summaries")
        if (not isinstance(summaries, dict)
                or set(summaries) != set(cell.labels)):
            return None
        return summaries

    def store(self, cell: SweepCell,
              summaries: Dict[str, Dict]) -> None:
        path = self._path(cell.fingerprint())
        payload = {"manifest": cell.manifest(), "summaries": summaries}
        self._atomic_write(path, json.dumps(payload, indent=1) + "\n")

    # -- mapped cells (arbitrary picklable outputs) --------------------

    def _mapped_path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, "mapped", fingerprint[:2],
                            f"{fingerprint}.pkl")

    def load_mapped(self, fingerprint: str) -> Tuple[bool, object]:
        """``(found, value)`` -- the flag disambiguates a cached
        ``None`` from a miss."""
        try:
            with open(self._mapped_path(fingerprint), "rb") as handle:
                return True, pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return False, None

    def store_mapped(self, fingerprint: str, value: object) -> None:
        self._atomic_write(self._mapped_path(fingerprint),
                           pickle.dumps(value, protocol=4))

    def _atomic_write(self, path: str, data) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        binary = isinstance(data, bytes)
        handle, temp_path = tempfile.mkstemp(dir=directory,
                                             suffix=".tmp")
        try:
            with os.fdopen(handle, "wb" if binary else "w",
                           **({} if binary
                              else {"encoding": "utf-8"})) as sink:
                sink.write(data)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise


@dataclass
class FabricStats:
    """What a fabric did, for the runner's wall-clock summary."""

    sweep_cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    mapped_cells: int = 0
    mapped_hits: int = 0
    cell_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"sweep_cells": self.sweep_cells,
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "mapped_cells": self.mapped_cells,
                "mapped_hits": self.mapped_hits,
                "cell_seconds": round(self.cell_seconds, 3)}


class ExperimentFabric:
    """Cell scheduler: process pool + trace store + result cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means :func:`default_jobs`.  With
        ``jobs=1`` cells run in-process (still through both caches).
    cache_dir:
        Root for ``traces/`` and ``results/``; ``None`` means
        :func:`~repro.workloads.trace_store.default_cache_dir`.
    use_result_cache:
        ``False`` (the ``--no-cache`` flag) disables reading *and*
        writing cell results; the trace store stays active (it is pure
        materialization, not memoization).
    refresh:
        ``True`` (the ``--refresh`` flag) ignores cached results but
        rewrites them from the fresh runs.
    progress:
        Optional callable receiving one human-readable line per
        finished cell.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 use_result_cache: bool = True,
                 refresh: bool = False,
                 progress: Optional[Callable[[str], None]] = None) -> None:
        from ..workloads.trace_store import TraceStore, default_cache_dir

        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_jobs()
        self.cache_dir = cache_dir or default_cache_dir()
        self.trace_store = TraceStore(os.path.join(self.cache_dir,
                                                   "traces"))
        self.result_cache = (ResultCache(os.path.join(self.cache_dir,
                                                      "results"))
                             if use_result_cache else None)
        self.refresh = refresh
        self.progress = progress
        #: Display context (the running experiment's name), set by the
        #: runner; purely cosmetic.
        self.context = ""
        self.stats = FabricStats()
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ExperimentFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _report(self, line: str) -> None:
        if self.progress is not None:
            prefix = f"[{self.context}] " if self.context else ""
            self.progress(f"{prefix}{line}")

    # ------------------------------------------------------------------
    # Sweep cells (parallel + cached)
    # ------------------------------------------------------------------

    def run_sweep(self, benchmarks: Sequence[str],
                  configs: Sequence[Tuple[str, ProfilerConfig]],
                  num_intervals: int,
                  kind: EventKind
                  ) -> Dict[str, Dict[str, ErrorSummary]]:
        """Run every benchmark's cell; returns ``sweep()``'s shape."""
        pinned = tuple(
            (label, config.with_backend(config.resolved_backend))
            for label, config in configs)
        cells = [SweepCell(benchmark=benchmark, configs=pinned,
                           num_intervals=num_intervals, kind=kind,
                           seed=self.trace_store.resolve_seed(
                               benchmark, kind, None))
                 for benchmark in benchmarks]
        self.stats.sweep_cells += len(cells)

        outputs: List[Optional[Dict[str, Dict]]] = [None] * len(cells)
        pending: List[int] = []
        for position, cell in enumerate(cells):
            cached = (self.result_cache.load(cell)
                      if self.result_cache is not None and not self.refresh
                      else None)
            if cached is not None:
                outputs[position] = cached
                self.stats.cache_hits += 1
                self._report(f"{cell.benchmark}: cached "
                             f"({len(cell.configs)} configs x "
                             f"{cell.num_intervals} intervals)")
            else:
                pending.append(position)

        if pending:
            # Materialize each needed stream once, up front, in the
            # parent: workers then only memory-map existing files, and
            # concurrent workers never race to generate the same trace.
            seen = set()
            for position in pending:
                cell = cells[position]
                key = (cell.benchmark, cell.kind, cell.interval_length,
                       cell.seed)
                if key not in seen:
                    seen.add(key)
                    self.trace_store.get(cell.benchmark, cell.kind,
                                         cell.interval_length,
                                         cell.num_intervals, cell.seed)
            self._execute_cells(cells, pending, outputs)

        return {cell.benchmark: {label: ErrorSummary.from_dict(summary)
                                 for label, summary
                                 in outputs[position].items()}
                for position, cell in enumerate(cells)}

    def _run_in_process(self, pending_count: int) -> bool:
        """True when a process pool cannot pay for itself.

        Worker fan-out only wins with real parallel hardware and
        enough pending cells to amortize spin-up; on a single-core box
        (CI runners, small containers) or for a near-empty batch the
        pool adds fork and pickling latency for zero overlap, so those
        runs stay in-process (still through both caches, still
        bit-identical).
        """
        return (self.jobs == 1
                or pending_count < MIN_POOL_CELLS
                or (os.cpu_count() or 1) <= 1)

    def _execute_cells(self, cells: List[SweepCell],
                       pending: List[int],
                       outputs: List[Optional[Dict]]) -> None:
        if self._run_in_process(len(pending)):
            for position in pending:
                summaries, seconds = _timed_cell(
                    cells[position], self.trace_store.directory)
                self._finish_cell(cells[position], summaries, seconds)
                outputs[position] = summaries
            return
        executor = self._ensure_executor()
        futures = {executor.submit(_timed_cell, cells[position],
                                   self.trace_store.directory): position
                   for position in pending}
        waiting = set(futures)
        while waiting:
            done, waiting = wait(waiting, return_when=FIRST_COMPLETED)
            for future in done:
                position = futures[future]
                summaries, seconds = future.result()
                self._finish_cell(cells[position], summaries, seconds)
                outputs[position] = summaries

    def _finish_cell(self, cell: SweepCell, summaries: Dict,
                     seconds: float) -> None:
        self.stats.executed += 1
        self.stats.cell_seconds += seconds
        if self.result_cache is not None:
            self.result_cache.store(cell, summaries)
        self._report(f"{cell.benchmark}: ran in {seconds:.1f}s "
                     f"({len(cell.configs)} configs x "
                     f"{cell.num_intervals} x "
                     f"{cell.interval_length:,}-event intervals)")

    # ------------------------------------------------------------------
    # Generic cells (parallel, uncached)
    # ------------------------------------------------------------------

    def map(self, function: Callable, payloads: Sequence) -> List:
        """Order-preserving parallel map over picklable payloads.

        Used by experiments whose per-benchmark loop bodies are not
        config sweeps; *function* must be a module-level callable.
        Results are memoized by a fingerprint of the function's
        qualified name plus the pickled payload (pickle round-trips
        values exactly, so cached results are bit-identical); a payload
        that does not pickle deterministically only costs a cache miss,
        never a wrong result.
        """
        payloads = list(payloads)
        self.stats.mapped_cells += len(payloads)
        results: List = [None] * len(payloads)
        fingerprints: List[Optional[str]] = [None] * len(payloads)
        pending: List[int] = []
        for position, payload in enumerate(payloads):
            fingerprint = (self._mapped_fingerprint(function, payload)
                           if self.result_cache is not None else None)
            fingerprints[position] = fingerprint
            if fingerprint is not None and not self.refresh:
                found, value = self.result_cache.load_mapped(fingerprint)
                if found:
                    results[position] = value
                    self.stats.mapped_hits += 1
                    continue
            pending.append(position)

        if pending:
            if self._run_in_process(len(pending)):
                fresh = [function(payloads[position])
                         for position in pending]
            else:
                executor = self._ensure_executor()
                fresh = list(executor.map(
                    function, [payloads[position]
                               for position in pending]))
            for position, value in zip(pending, fresh):
                results[position] = value
                if fingerprints[position] is not None:
                    self.result_cache.store_mapped(fingerprints[position],
                                                   value)
        return results

    @staticmethod
    def _mapped_fingerprint(function: Callable,
                            payload: object) -> Optional[str]:
        try:
            blob = pickle.dumps(
                (CACHE_SCHEMA, __version__, function.__module__,
                 function.__qualname__, payload), protocol=4)
        except Exception:
            return None  # unpicklable payload: run it, skip the cache
        return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Ambient fabric
# ----------------------------------------------------------------------

_ACTIVE: Optional[ExperimentFabric] = None


def current_fabric() -> Optional[ExperimentFabric]:
    """The fabric experiments should route cells through, if any."""
    return _ACTIVE


@contextlib.contextmanager
def activate(fabric: ExperimentFabric):
    """Make *fabric* ambient for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = fabric
    try:
        yield fabric
    finally:
        _ACTIVE = previous


def fabric_map(function: Callable, payloads: Sequence) -> List:
    """Parallel map through the ambient fabric, else a serial loop."""
    fabric = current_fabric()
    if fabric is None:
        return [function(payload) for payload in payloads]
    return fabric.map(function, payloads)
