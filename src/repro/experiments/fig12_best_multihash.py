"""Figure 12: the best multi-hash configuration for value profiling.

Every benchmark is scored under the best single hash (BSH = P1-R1) and
the best multi-hash family (C1-R0 with retaining) at 1, 2, 4, 8 and 16
hash tables, for both operating points.  Expected shape: 4 tables
consistently at or near the minimum, beating BSH (the paper's gcc
improves from 10 % to 5 %, go from 20 % to 1.5 % at the long point);
error rises again toward 16 tables; and the multi-hash average stays
under ~1 % at 10 K @ 1 %.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.config import IntervalSpec, ProfilerConfig, best_single_hash
from ..metrics.charts import bar_chart
from ..core.tuples import EventKind
from .base import ExperimentReport, ExperimentScale, experiment
from .sweeps import average_error, sweep, totals_table

#: Multi-hash table counts swept (Figure 12 adds 16 to Figure 10's set).
TABLE_COUNTS = (1, 2, 4, 8, 16)


def best_family_configs(spec: IntervalSpec,
                        table_counts: Tuple[int, ...] = TABLE_COUNTS
                        ) -> List[Tuple[str, ProfilerConfig]]:
    """BSH plus the C1-R0 multi-hash family."""
    configs: List[Tuple[str, ProfilerConfig]] = [
        ("BSH", best_single_hash(spec))]
    for tables in table_counts:
        configs.append((f"MH{tables}", ProfilerConfig(
            interval=spec, num_tables=tables, conservative_update=True,
            resetting=False, retaining=True)))
    return configs


@experiment("fig12")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE,
        table_counts: Tuple[int, ...] = TABLE_COUNTS) -> ExperimentReport:
    """Score BSH vs the multi-hash family at both operating points."""
    scale = scale or ExperimentScale.from_env()
    report = ExperimentReport(
        experiment="fig12",
        title="best multi-hash (C1-R0) vs best single hash",
        data={},
    )
    panels = [
        ("10K @ 1%", scale.short_spec, scale.short_intervals),
        (f"{scale.long_interval_length:,} @ 0.1%", scale.long_spec,
         scale.long_intervals),
    ]
    for label, spec, num_intervals in panels:
        configs = best_family_configs(spec, table_counts)
        labels = [name for name, _ in configs]
        results = sweep(scale.benchmarks, configs, num_intervals,
                        kind=kind, backend=scale.backend)
        report.data[label] = results
        report.data[f"{label}/averages"] = {
            name: average_error(results, name) for name in labels}
        report.add_table(f"total error %, intervals of {label}",
                         totals_table(results, labels))
        report.add_table(
            f"average error by configuration, intervals of {label}",
            bar_chart({name: average_error(results, name)
                       for name in labels}))
    return report
