"""Extension: adaptive interval-length selection (Section 5.6.1).

Runs the :mod:`repro.profiling.adaptive` selector over every benchmark
and reports the chosen interval length alongside the candidate-set
stability at each probed length.  Expected shape, from Figure 6's
discussion: m88ksim and vortex prefer long intervals (their 10 K
candidate sets fluctuate), while deltablue prefers short ones (its
coarse phases destabilize long intervals).
"""

from __future__ import annotations

from typing import List

from ..core.tuples import EventKind
from ..metrics.reports import format_table
from ..profiling.adaptive import select_interval_length
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map


def _selection_cell(payload):
    """Run the adaptive selector for one benchmark (a fabric cell)."""
    name, kind, lengths, intervals_per_length = payload
    generator = benchmark_generator(name, kind)
    return select_interval_length(
        generator, lengths, intervals_per_length=intervals_per_length)


@experiment("adaptive")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Select an interval length per benchmark and tabulate stability."""
    scale = scale or ExperimentScale.from_env()
    lengths = sorted({10_000, 50_000, scale.long_interval_length})
    intervals_per_length = max(4, scale.long_intervals)
    choices = fabric_map(
        _selection_cell,
        [(name, kind, lengths, intervals_per_length)
         for name in scale.benchmarks])
    rows: List[List[object]] = []
    data = {}
    for name, choice in zip(scale.benchmarks, choices):
        data[name] = choice
        rows.append([name, f"{choice.selected:,}"]
                    + [round(choice.mean_variation[length], 1)
                       for length in lengths])
    report = ExperimentReport(
        experiment="adaptive",
        title="adaptive profile-interval selection",
        data=data,
    )
    report.add_table(
        "selected length and mean % candidate variation per length",
        format_table(["benchmark", "selected"]
                     + [f"var@{length:,}" for length in lengths], rows))
    return report
