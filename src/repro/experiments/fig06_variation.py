"""Figure 6: candidate-set variation between consecutive intervals.

For each benchmark the paper plots the distribution (as a CDF over
intervals) of the percentage change in candidate tuples from one
profile interval to the next -- for 10 K intervals at 1 % (top panel)
and 1 M intervals at 0.1 % (bottom panel).  Key contrasts: deltablue
has *large-scale* phase behaviour (little change at 10 K, lots at 1 M)
while m88ksim and vortex are the opposite (bursty at 10 K, stable at
1 M) -- evidence that the right interval length is program-specific.
"""

from __future__ import annotations

from typing import List

from ..core.tuples import EventKind
from ..metrics.reports import format_table
from ..workloads.analysis import (candidate_variation, interval_statistics,
                                  variation_profile)
from ..workloads.benchmarks import benchmark_generator
from .base import ExperimentReport, ExperimentScale, experiment
from .fabric import fabric_map

#: CDF points reported (fraction of interval transitions).
CDF_FRACTIONS = (0.25, 0.50, 0.75, 0.90)


def _variation_cell(payload) -> List[float]:
    """One (panel x benchmark) variation series (a fabric cell)."""
    name, kind, length, threshold, num_intervals = payload
    generator = benchmark_generator(name, kind)
    statistics = interval_statistics(
        generator, length, max(3, num_intervals),
        thresholds=(threshold,))
    return candidate_variation(statistics.candidate_sets[threshold])


@experiment("fig06")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Measure per-transition candidate variation at both operating
    points."""
    scale = scale or ExperimentScale.from_env()
    configurations = [
        ("10K @ 1%", scale.short_spec, scale.short_intervals),
        (f"{scale.long_interval_length:,} @ 0.1%", scale.long_spec,
         scale.long_intervals),
    ]
    report = ExperimentReport(
        experiment="fig06",
        title="candidate variation between consecutive intervals",
        data={"variations": {}},
    )
    payloads = [(name, kind, spec.length, spec.threshold, num_intervals)
                for _, spec, num_intervals in configurations
                for name in scale.benchmarks]
    series = iter(fabric_map(_variation_cell, payloads))
    for label, spec, num_intervals in configurations:
        rows: List[List[object]] = []
        for name in scale.benchmarks:
            variations = next(series)
            profile = variation_profile(variations, CDF_FRACTIONS)
            report.data["variations"].setdefault(label, {})[name] = \
                variations
            rows.append([name] + [round(profile[fraction], 1)
                                  for fraction in CDF_FRACTIONS])
        headers = ["benchmark"] + [f"p{int(100 * fraction)}"
                                   for fraction in CDF_FRACTIONS]
        report.add_table(
            f"% candidate change at CDF points, intervals of {label}",
            format_table(headers, rows))
    return report
