"""Extension: hash-table size ablation (Section 6.3's unshown study).

The paper states it "performed error rate analysis for other hash-table
sizes and found that a hash-table of size 2K performs almost as well as
larger hash-tables, while still outperforming hash-tables of size 1K or
smaller", without showing the data.  This experiment regenerates that
study: the best multi-hash configuration (4 tables, C1-R0) swept over
total counter budgets of 512 to 8192 entries at the long operating
point, where table pressure matters.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..core.config import ProfilerConfig, best_multi_hash
from ..core.tuples import EventKind
from .base import ExperimentReport, ExperimentScale, experiment
from .sweeps import sweep, totals_table

#: Total counter budgets swept.
ENTRY_BUDGETS = (512, 1024, 2048, 4096, 8192)


@experiment("tablesize")
def run(scale: ExperimentScale = None,
        kind: EventKind = EventKind.VALUE) -> ExperimentReport:
    """Sweep the total counter budget for the best multi-hash."""
    scale = scale or ExperimentScale.from_env()
    spec = scale.long_spec
    configs: List[Tuple[str, ProfilerConfig]] = []
    for entries in ENTRY_BUDGETS:
        base = best_multi_hash(spec, num_tables=4)
        configs.append((f"{entries}e",
                        replace(base, total_entries=entries)))
    labels = [label for label, _ in configs]
    results = sweep(scale.benchmarks, configs, scale.long_intervals,
                    kind=kind, backend=scale.backend)
    report = ExperimentReport(
        experiment="tablesize",
        title=("hash-table size ablation, MH4 C1-R0, intervals of "
               f"{spec.length:,} @ 0.1%"),
        data={"results": results, "budgets": ENTRY_BUDGETS},
    )
    report.add_table("total error % by counter budget",
                     totals_table(results, labels))
    return report
