"""Consistent-hash routing of stream ids onto worker shards.

Every stream id maps to exactly one worker, so one worker owns each
stream's profiling session and interval boundaries stay coherent
without cross-process locking.  A consistent ring (rather than
``hash(id) % n``) keeps the assignment stable under resharding: when a
worker is added or removed only ``~1/n`` of the streams move, which is
what lets a future operator grow the pool under live traffic without
invalidating every open session.

The ring hashes with BLAKE2b so placements are deterministic across
processes and Python runs (the builtin ``hash`` is salted per
process).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence


def _point(key: str) -> int:
    """Position of *key* on the 64-bit ring."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """A consistent-hash ring over a fixed set of shard ids.

    Parameters
    ----------
    shards:
        Shard identifiers (e.g. ``range(num_workers)``).
    replicas:
        Virtual nodes per shard; more replicas smooth the load split at
        the cost of a larger (still tiny) ring.
    """

    def __init__(self, shards: Sequence[int],
                 replicas: int = 64) -> None:
        if not shards:
            raise ValueError("at least one shard is required")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = list(shards)
        self.replicas = replicas
        points: Dict[int, int] = {}
        for shard in self.shards:
            for replica in range(replicas):
                points[_point(f"shard:{shard}:{replica}")] = shard
        self._points: List[int] = sorted(points)
        self._owners = [points[p] for p in self._points]

    def shard_for(self, stream: str) -> int:
        """The shard owning *stream*."""
        position = bisect.bisect(self._points, _point(f"key:{stream}"))
        if position == len(self._points):
            position = 0
        return self._owners[position]

    def spread(self, streams: Sequence[str]) -> Dict[int, int]:
        """Streams per shard, for balance diagnostics."""
        counts = {shard: 0 for shard in self.shards}
        for stream in streams:
            counts[self.shard_for(stream)] += 1
        return counts
