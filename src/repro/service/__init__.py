"""Multi-tenant streaming profile service.

The paper's profiler is an always-on hardware unit: it continuously
watches an event stream and keeps a live set of hot candidates within a
tiny fixed budget.  This package turns the reproduction's batch
:class:`~repro.profiling.session.ProfilingSession` into that shape as a
long-running server:

* :mod:`repro.service.protocol` -- versioned, length-prefixed binary
  wire format for event batches, control messages, and snapshots;
* :mod:`repro.service.routing` -- consistent-hash routing of stream ids
  onto worker shards;
* :mod:`repro.service.worker` -- per-shard worker processes owning the
  profiling sessions (driven through the vectorized chunked path);
* :mod:`repro.service.server` -- asyncio accept loop, backpressure,
  and graceful drain;
* :mod:`repro.service.client` -- blocking client for traces,
  calibrated benchmark streams, and raw arrays.

See ``docs/SERVICE.md`` for the wire format and operational semantics.
"""

from .client import ProfileClient, ServiceError
from .protocol import PROTOCOL_VERSION, FrameTooLarge, ProtocolError
from .routing import HashRing
from .server import ProfileServer

__all__ = [
    "FrameTooLarge",
    "HashRing",
    "PROTOCOL_VERSION",
    "ProfileClient",
    "ProfileServer",
    "ProtocolError",
    "ServiceError",
]
