"""Shard worker: owns profiling sessions, one process per shard.

A worker is a ``multiprocessing`` process looping over a bounded
request queue.  Each open stream maps to one
:class:`~repro.profiling.session.SessionFeeder` driving a
:class:`~repro.profiling.session.ProfilingSession` through the
vectorized ``observe_chunk`` path -- event batches arrive as raw
``uint64`` buffers and go straight into numpy, so the per-event cost is
the same as the in-process chunked fast path.

The worker also keeps a running stats ledger (events, batches, busy
seconds, per-stream interval counts) that the server polls on demand
over the same request queue -- a "stats channel" multiplexed with the
data plane, which keeps the worker single-threaded and lock-free.

All replies are plain JSON-safe dicts tagged with the request id, so
the server can multiplex many in-flight requests per worker.
"""

from __future__ import annotations

import queue
import signal
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List

import numpy as np

from ..core.batched import BatchedKernelRunner
from ..core.config import ProfilerConfig
from ..profiling.session import ProfilingSession, SessionFeeder, feed_many
from .protocol import WIRE_DTYPE

#: Closed-stream snapshots retained for late queries, per worker.
MAX_FINISHED_STREAMS = 128

#: Most ``batch`` requests folded into one worker tick.  Bounds reply
#: latency for the first op of a tick while still folding every stream
#: a busy shard has pending into one kernel dispatch chain.
MAX_BATCH_FOLD = 256


def _batch_arrays(message: Dict[str, Any]) -> "tuple[np.ndarray, np.ndarray]":
    """Decode one ``batch`` op's event arrays, either message shape.

    The fast data plane ships the whole wire payload (``buffer`` plus
    ``count``/``offset`` from :func:`~repro.service.protocol.
    parse_batch_header``), so the arrays here are zero-copy views over
    the single buffer that crossed the process boundary.  The legacy
    shape carries the two arrays as separate ``pcs``/``values`` byte
    strings copied out of the frame.
    """
    buffer = message.get("buffer")
    if buffer is not None:
        count = message["count"]
        offset = message["offset"]
        pcs = np.frombuffer(buffer, dtype=WIRE_DTYPE, count=count,
                            offset=offset)
        values = np.frombuffer(buffer, dtype=WIRE_DTYPE, count=count,
                               offset=offset + count * WIRE_DTYPE.itemsize)
        return pcs, values
    return (np.frombuffer(message["pcs"], dtype=WIRE_DTYPE),
            np.frombuffer(message["values"], dtype=WIRE_DTYPE))


class _StreamState:
    """One open stream: its feeder plus per-stream accounting."""

    def __init__(self, stream: str, config: ProfilerConfig) -> None:
        self.stream = stream
        self.config = config
        self.session = ProfilingSession(config, keep_profiles=True)
        self.feeder: SessionFeeder = self.session.feeder()
        self.batches = 0


def snapshot_dict(state: _StreamState, max_intervals: int,
                  final: bool = False,
                  flushed: bool = False) -> Dict[str, Any]:
    """JSON-safe snapshot of one stream's current results.

    Candidate tuples are reported as ``[pc, value, count]`` triples (the
    hardware profiler's view); the summary carries the paper's net
    error and four-way breakdown over every completed interval.
    """
    view = state.feeder.snapshot()
    result = view.single()
    summary = result.summary
    errors = {e.index: e.total for e in summary.intervals}
    intervals = [
        {
            "index": profile.index,
            "events_observed": profile.events_observed,
            "error_percent": 100.0 * errors.get(profile.index, 0.0),
            "candidates": [[int(pc), int(value), int(count)]
                           for (pc, value), count
                           in sorted(profile.candidates.items(),
                                     key=lambda item: -item[1])],
        }
        for profile in result.profiles[-max_intervals:]
    ]
    return {
        "stream": state.stream,
        "profiler": state.config.label,
        "backend": state.config.resolved_backend,
        "final": final,
        "flushed_partial": flushed,
        "events": state.feeder.events_fed,
        "pending_events": state.feeder.pending_events,
        "intervals_completed": state.feeder.intervals_completed,
        "batches": state.batches,
        "intervals": intervals,
        "summary": {
            "num_intervals": summary.num_intervals,
            "net_error_percent": summary.percent(),
            "breakdown_percent": summary.breakdown_percent(),
            "per_interval_error_percent": [100.0 * value
                                           for value in summary.series()],
        },
    }


class _Worker:
    """Request-loop state for one shard process."""

    def __init__(self, worker_id: int, snapshot_intervals: int) -> None:
        self.worker_id = worker_id
        self.snapshot_intervals = snapshot_intervals
        self.streams: Dict[str, _StreamState] = {}
        self.finished: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.events = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.streams_opened = 0
        #: Folds all ``backend="batched"`` streams' pending chunks into
        #: one kernel dispatch chain per tick (see
        #: :mod:`repro.core.batched`).
        self.runner = BatchedKernelRunner()
        #: Folded feeds served (each covers >= 1 ``batch`` ops).
        self.ticks = 0
        #: Kernel dispatch chains those ticks issued.
        self.dispatches = 0

    # -- operations ----------------------------------------------------

    def open(self, message: Dict[str, Any]) -> Dict[str, Any]:
        stream = message["stream"]
        if stream in self.streams:
            return _error(f"stream {stream!r} is already open",
                          "stream-exists")
        try:
            config = ProfilerConfig.from_dict(message["config"])
        except (ValueError, TypeError, KeyError) as error:
            return _error(f"bad profiler config: {error}", "bad-config")
        self.streams[stream] = _StreamState(stream, config)
        self.finished.pop(stream, None)
        self.streams_opened += 1
        return {"ok": True, "stream": stream, "shard": self.worker_id,
                "profiler": config.label,
                "backend": config.resolved_backend,
                "interval_length": config.interval.length}

    def batch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return self.batch_many([message])[0]

    def batch_many(self, messages: List[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
        """Serve several ``batch`` ops as one folded feed (one tick).

        All target streams advance through :func:`feed_many`, so every
        ``backend="batched"`` profiler across the shard shares one
        kernel dispatch chain per round instead of dispatching per
        stream.  Several ops for one stream are concatenated in
        arrival order (equivalent by the feeder's split-invariance);
        the stream's total ``intervals_closed`` is reported on its
        last op of the tick.  Returns one reply per message, in order.
        """
        replies: List[Dict[str, Any]] = [None] * len(messages)
        op_ids: Dict[str, List[int]] = {}
        order: List[str] = []
        for position, message in enumerate(messages):
            stream = message["stream"]
            if stream not in self.streams:
                replies[position] = _error(
                    f"stream {stream!r} is not open", "unknown-stream")
                continue
            if stream not in op_ids:
                op_ids[stream] = []
                order.append(stream)
            op_ids[stream].append(position)
        items = []
        fed_events: Dict[str, int] = {}
        for stream in order:
            arrays = [_batch_arrays(messages[i]) for i in op_ids[stream]]
            if len(arrays) == 1:
                pcs, values = arrays[0]
            else:
                pcs = np.concatenate([pair[0] for pair in arrays])
                values = np.concatenate([pair[1] for pair in arrays])
            items.append((self.streams[stream].feeder, pcs, values))
            fed_events[stream] = len(pcs)
        if items:
            started = time.perf_counter()
            dispatches_before = self.runner.dispatches
            closed_by_item = feed_many(items, self.runner)
            self.busy_seconds += time.perf_counter() - started
            self.ticks += 1
            self.dispatches += self.runner.dispatches - dispatches_before
        else:
            closed_by_item = []
        for stream, closed in zip(order, closed_by_item):
            state = self.streams[stream]
            positions = op_ids[stream]
            state.batches += len(positions)
            self.batches += len(positions)
            self.events += fed_events[stream]
            if closed:
                state.feeder.trim(self.snapshot_intervals)
            for ordinal, position in enumerate(positions):
                replies[position] = {
                    "ok": True, "stream": stream,
                    "events": state.feeder.events_fed,
                    "intervals_completed":
                        state.feeder.intervals_completed,
                    "intervals_closed":
                        closed if ordinal == len(positions) - 1 else 0,
                }
        return replies

    def snapshot(self, message: Dict[str, Any]) -> Dict[str, Any]:
        stream = message["stream"]
        state = self.streams.get(stream)
        if state is None:
            late = self.finished.get(stream)
            if late is not None:
                return {"ok": True, "snapshot": late}
            return _error(f"stream {stream!r} is not open",
                          "unknown-stream")
        return {"ok": True,
                "snapshot": snapshot_dict(state, self.snapshot_intervals)}

    def close(self, message: Dict[str, Any]) -> Dict[str, Any]:
        state = self.streams.pop(message["stream"], None)
        if state is None:
            return _error(f"stream {message['stream']!r} is not open",
                          "unknown-stream")
        return {"ok": True, "snapshot": self._finish(state)}

    def stats(self) -> Dict[str, Any]:
        per_stream = {
            stream: {"events": state.feeder.events_fed,
                     "intervals_completed":
                         state.feeder.intervals_completed,
                     "pending_events": state.feeder.pending_events,
                     "batches": state.batches}
            for stream, state in self.streams.items()}
        busy = self.busy_seconds
        return {"ok": True, "stats": {
            "worker": self.worker_id,
            "events": self.events,
            "batches": self.batches,
            "busy_seconds": busy,
            "events_per_second": (self.events / busy) if busy else 0.0,
            "chunk_latency_ms": (1000.0 * busy / self.batches
                                 if self.batches else 0.0),
            "ticks": self.ticks,
            "kernel_dispatches": self.dispatches,
            "dispatches_per_tick": (self.dispatches / self.ticks
                                    if self.ticks else 0.0),
            "streams_open": len(self.streams),
            "streams_opened": self.streams_opened,
            "streams": per_stream,
        }}

    def drain(self) -> Dict[str, Any]:
        """Flush every open stream's trailing interval (shutdown path)."""
        drained = [self._finish(state)
                   for state in list(self.streams.values())]
        self.streams.clear()
        return {"ok": True, "drained": [d["stream"] for d in drained]}

    # -- helpers -------------------------------------------------------

    def _finish(self, state: _StreamState) -> Dict[str, Any]:
        flushed = state.feeder.flush()
        final = snapshot_dict(state, self.snapshot_intervals,
                              final=True, flushed=flushed)
        self.finished[state.stream] = final
        while len(self.finished) > MAX_FINISHED_STREAMS:
            self.finished.popitem(last=False)
        return final


def _error(message: str, code: str) -> Dict[str, Any]:
    return {"ok": False, "error": message, "code": code}


def worker_main(worker_id: int, requests, replies,
                snapshot_intervals: int) -> None:
    """Process entry point: serve *requests* until a shutdown message.

    Every request dict carries ``op`` and ``req`` (the correlation id
    echoed on the reply).  Unknown ops are answered with an error
    rather than crashing the shard.

    The fast data plane packs many ops into one ``group`` message per
    queue put; the group is unpacked onto the backlog in order, so one
    dequeue (one pickle round trip) serves a whole server tick.  Folded
    batch replies likewise travel back as one list per queue put.
    """
    # A terminal ctrl-c signals the whole foreground process group;
    # shutdown is coordinated by the server via the request queue, so
    # the shard must not die out from under it mid-drain.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    worker = _Worker(worker_id, snapshot_intervals)
    backlog: "deque[Dict[str, Any]]" = deque()
    while True:
        message = backlog.popleft() if backlog else requests.get()
        op = message.get("op")
        if op == "group":
            # One queue put carrying many ops (fast data plane);
            # unpack in order ahead of anything still on the queue.
            backlog.extendleft(reversed(message.get("ops") or ()))
            continue
        if op == "shutdown":
            reply = worker.drain()
            reply["req"] = message.get("req")
            replies.put(reply)
            break
        if op == "batch":
            # Fold every already-pending batch op into this tick so all
            # the shard's pending streams share one kernel dispatch
            # chain.  The backlog (unpacked groups) is drained first,
            # then the queue; a non-batch op ends the fold (it is
            # served next iteration, preserving arrival order).
            fold = [message]
            while len(fold) < MAX_BATCH_FOLD:
                if backlog:
                    if backlog[0].get("op") == "batch":
                        fold.append(backlog.popleft())
                        continue
                    break
                try:
                    pending = requests.get_nowait()
                except queue.Empty:
                    break
                pending_op = pending.get("op")
                if pending_op == "group":
                    backlog.extend(pending.get("ops") or ())
                elif pending_op == "batch":
                    fold.append(pending)
                else:
                    backlog.append(pending)
                    break
            try:
                fold_replies = worker.batch_many(fold)
            except Exception as error:  # noqa: BLE001 - shard survives
                fold_replies = [
                    _error(f"worker {worker_id} failed on 'batch': "
                           f"{error}", "worker-error")
                    for _ in fold]
            for folded, reply in zip(fold, fold_replies):
                reply["req"] = folded.get("req")
            # One queue put answers the whole tick.
            if len(fold_replies) == 1:
                replies.put(fold_replies[0])
            else:
                replies.put(fold_replies)
            continue
        try:
            if op == "open":
                reply = worker.open(message)
            elif op == "snapshot":
                reply = worker.snapshot(message)
            elif op == "close":
                reply = worker.close(message)
            elif op == "stats":
                reply = worker.stats()
            else:
                reply = _error(f"unknown worker op {op!r}", "bad-op")
        except Exception as error:  # noqa: BLE001 - shard must survive
            reply = _error(f"worker {worker_id} failed on {op!r}: "
                           f"{error}", "worker-error")
        reply["req"] = message.get("req")
        replies.put(reply)
