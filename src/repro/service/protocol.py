"""Wire protocol of the profile service.

Every message is one *frame*::

    +-------+---------+------+----------------+---------·········--+
    | magic | version | type | payload length |      payload       |
    | u16   | u8      | u8   | u32            | length bytes       |
    +-------+---------+------+----------------+---------·········--+

All integers are big-endian.  Control messages (open/close/snapshot/
stats and their replies) carry a UTF-8 JSON object as payload.  Event
batches (:data:`T_BATCH`) carry a small JSON header followed by the raw
little-endian ``uint64`` PC and value arrays::

    +-----------+--------·····-+------·····---+--------·····--+
    | headerlen | JSON header  | pcs bytes    | values bytes  |
    | u32       |              | count * 8    | count * 8     |
    +-----------+--------·····-+------·····---+--------·····--+

where the JSON header is ``{"stream": <id>, "count": <events>}``.
Arrays travel as raw bytes so a batch costs 16 bytes/event plus a
constant -- no per-event encoding on either side; both ends hand the
buffers straight to numpy.

Malformed input (bad magic, unknown version, oversized or truncated
payloads, inconsistent batch sizes, invalid JSON) raises
:class:`ProtocolError`; the server answers with a :data:`T_ERROR`
frame where the stream is still framed, and closes the connection
where it is not (a bad magic number means the byte stream can no
longer be trusted).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Tuple

import numpy as np

#: Frame magic: rejects non-protocol peers immediately.
MAGIC = 0xCAF1

#: Bump on any incompatible frame or payload change.
PROTOCOL_VERSION = 1

#: ``!`` big-endian: magic u16, version u8, type u8, payload length u32.
HEADER = struct.Struct("!HBBI")

#: One u32: length of the JSON header inside a batch payload.
_BATCH_PREFIX = struct.Struct("!I")

#: Upper bound on a single frame payload (64 MiB ~ 4M events/batch).
MAX_PAYLOAD = 64 * 1024 * 1024

#: Wire dtype of the PC/value arrays.
WIRE_DTYPE = np.dtype("<u8")

# Request frame types.
T_OPEN = 0x01      #: open a stream: {"stream", "config"}
T_BATCH = 0x02     #: event batch (binary payload, see module docstring)
T_SNAPSHOT = 0x03  #: live snapshot query: {"stream"}
T_CLOSE = 0x04     #: close a stream (flushes the open interval): {"stream"}
T_STATS = 0x05     #: server + worker statistics: {}

# Reply frame types.
T_OK = 0x10        #: success; JSON payload depends on the request
T_ERROR = 0x11     #: failure: {"error": <message>, "code": <slug>}

_KNOWN_TYPES = frozenset({T_OPEN, T_BATCH, T_SNAPSHOT, T_CLOSE, T_STATS,
                          T_OK, T_ERROR})


class ProtocolError(Exception):
    """The peer sent bytes that are not a valid protocol frame."""


def encode_frame(msg_type: int, payload: bytes) -> bytes:
    """Frame *payload* under *msg_type*."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds "
                            f"the {MAX_PAYLOAD}-byte frame limit")
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, msg_type,
                       len(payload)) + payload


def decode_header(data: bytes) -> Tuple[int, int]:
    """Parse a frame header into ``(msg_type, payload_length)``."""
    if len(data) != HEADER.size:
        raise ProtocolError(f"short frame header: {len(data)} bytes")
    magic, version, msg_type, length = HEADER.unpack(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic:#06x}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version} "
                            f"(this end speaks {PROTOCOL_VERSION})")
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown frame type {msg_type:#04x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"payload length {length} exceeds the "
                            f"{MAX_PAYLOAD}-byte frame limit")
    return msg_type, length


def encode_json(msg_type: int, body: Dict[str, Any]) -> bytes:
    """Frame a JSON control message."""
    return encode_frame(msg_type,
                        json.dumps(body, separators=(",", ":"))
                        .encode("utf-8"))


def decode_json(payload: bytes) -> Dict[str, Any]:
    """Parse a JSON control payload, insisting on an object."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid JSON payload: {error}") from None
    if not isinstance(body, dict):
        raise ProtocolError(f"JSON payload must be an object, "
                            f"got {type(body).__name__}")
    return body


def encode_batch(stream: str, pcs: np.ndarray,
                 values: np.ndarray) -> bytes:
    """Frame one event batch for *stream*."""
    pcs = np.ascontiguousarray(pcs, dtype=WIRE_DTYPE)
    values = np.ascontiguousarray(values, dtype=WIRE_DTYPE)
    if pcs.shape != values.shape or pcs.ndim != 1:
        raise ValueError(f"batch arrays must be parallel and 1-D, got "
                         f"shapes {pcs.shape} vs {values.shape}")
    header = json.dumps({"stream": stream, "count": len(pcs)},
                        separators=(",", ":")).encode("utf-8")
    payload = (_BATCH_PREFIX.pack(len(header)) + header
               + pcs.tobytes() + values.tobytes())
    return encode_frame(T_BATCH, payload)


def decode_batch(payload: bytes) -> Tuple[str, np.ndarray, np.ndarray]:
    """Parse a batch payload into ``(stream, pcs, values)``."""
    if len(payload) < _BATCH_PREFIX.size:
        raise ProtocolError("batch payload shorter than its header "
                            "length prefix")
    (header_length,) = _BATCH_PREFIX.unpack_from(payload)
    body_start = _BATCH_PREFIX.size + header_length
    if body_start > len(payload):
        raise ProtocolError(f"batch header length {header_length} "
                            f"overruns the payload")
    header = decode_json(payload[_BATCH_PREFIX.size:body_start])
    stream = header.get("stream")
    count = header.get("count")
    if not isinstance(stream, str) or not stream:
        raise ProtocolError("batch header is missing a stream id")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError(f"bad batch event count: {count!r}")
    expected = count * WIRE_DTYPE.itemsize * 2
    if len(payload) - body_start != expected:
        raise ProtocolError(
            f"batch declares {count} events ({expected} array bytes) "
            f"but carries {len(payload) - body_start}")
    array_bytes = count * WIRE_DTYPE.itemsize
    pcs = np.frombuffer(payload, dtype=WIRE_DTYPE, count=count,
                        offset=body_start)
    values = np.frombuffer(payload, dtype=WIRE_DTYPE, count=count,
                           offset=body_start + array_bytes)
    return stream, pcs, values
