"""Wire protocol of the profile service.

Every message is one *frame*::

    +-------+---------+------+----------------+---------·········--+
    | magic | version | type | payload length |      payload       |
    | u16   | u8      | u8   | u32            | length bytes       |
    +-------+---------+------+----------------+---------·········--+

All integers are big-endian.  Control messages (open/close/snapshot/
stats and their replies) carry a UTF-8 JSON object as payload.  Event
batches (:data:`T_BATCH`) carry a small JSON header followed by the raw
little-endian ``uint64`` PC and value arrays::

    +-----------+--------·····-+------·····---+--------·····--+
    | headerlen | JSON header  | pcs bytes    | values bytes  |
    | u32       |              | count * 8    | count * 8     |
    +-----------+--------·····-+------·····---+--------·····--+

where the JSON header is ``{"stream": <id>, "count": <events>}``.
Arrays travel as raw bytes so a batch costs 16 bytes/event plus a
constant -- no per-event encoding on either side; both ends hand the
buffers straight to numpy.

A batch may be assembled from several generation chunks
(:func:`encode_batch_chunks`): the chunks' PC arrays are laid out back
to back, then their value arrays, and the frame is indistinguishable
from a single-chunk batch of the concatenated events.  This is the
client's *coalescing* fast path -- the feeder's split-invariance
guarantees the profile is identical however events are framed, so the
client can amortize one request/reply round trip over many generation
chunks without changing a single result bit.

Decoding is zero-copy: :func:`parse_batch_header` validates a batch
payload and returns array offsets into it, and :func:`decode_batch`
builds ``numpy`` views over the payload buffer (``bytes``,
``bytearray`` or ``memoryview``) without copying the event arrays.

Malformed input (bad magic, unknown version, oversized or truncated
payloads, inconsistent batch sizes, invalid JSON) raises
:class:`ProtocolError`; the server answers with a :data:`T_ERROR`
frame where the stream is still framed, and closes the connection
where it is not (a bad magic number means the byte stream can no
longer be trusted).  An oversized-but-well-formed frame raises the
:class:`FrameTooLarge` refinement, which the server recovers from by
draining the declared payload and answering a clean error instead of
hanging up.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Sequence, Tuple, Union

import numpy as np

#: Anything the decoders accept as a payload buffer.
Buffer = Union[bytes, bytearray, memoryview]

#: Frame magic: rejects non-protocol peers immediately.
MAGIC = 0xCAF1

#: Bump on any incompatible frame or payload change.
PROTOCOL_VERSION = 1

#: ``!`` big-endian: magic u16, version u8, type u8, payload length u32.
HEADER = struct.Struct("!HBBI")

#: One u32: length of the JSON header inside a batch payload.
_BATCH_PREFIX = struct.Struct("!I")

#: Upper bound on a single frame payload (64 MiB ~ 4M events/batch).
MAX_PAYLOAD = 64 * 1024 * 1024

#: Wire dtype of the PC/value arrays.
WIRE_DTYPE = np.dtype("<u8")

# Request frame types.
T_OPEN = 0x01      #: open a stream: {"stream", "config"}
T_BATCH = 0x02     #: event batch (binary payload, see module docstring)
T_SNAPSHOT = 0x03  #: live snapshot query: {"stream"}
T_CLOSE = 0x04     #: close a stream (flushes the open interval): {"stream"}
T_STATS = 0x05     #: server + worker statistics: {}

# Reply frame types.
T_OK = 0x10        #: success; JSON payload depends on the request
T_ERROR = 0x11     #: failure: {"error": <message>, "code": <slug>}

_KNOWN_TYPES = frozenset({T_OPEN, T_BATCH, T_SNAPSHOT, T_CLOSE, T_STATS,
                          T_OK, T_ERROR})


class ProtocolError(Exception):
    """The peer sent bytes that are not a valid protocol frame."""


class FrameTooLarge(ProtocolError):
    """A well-formed frame header declares a payload over the limit.

    Unlike other header errors the byte stream is still in sync: the
    magic, version and type all parsed, so a receiver can skip exactly
    ``length`` payload bytes, answer with a framed error, and keep the
    connection.
    """

    def __init__(self, message: str, length: int) -> None:
        super().__init__(message)
        self.length = length


def encode_frame(msg_type: int, payload: bytes) -> bytes:
    """Frame *payload* under *msg_type*."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds "
                            f"the {MAX_PAYLOAD}-byte frame limit")
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, msg_type,
                       len(payload)) + payload


def decode_header(data: Buffer) -> Tuple[int, int]:
    """Parse a frame header into ``(msg_type, payload_length)``."""
    if len(data) != HEADER.size:
        raise ProtocolError(f"short frame header: {len(data)} bytes")
    magic, version, msg_type, length = HEADER.unpack(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic:#06x}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version} "
                            f"(this end speaks {PROTOCOL_VERSION})")
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown frame type {msg_type:#04x}")
    if length > MAX_PAYLOAD:
        raise FrameTooLarge(
            f"payload length {length} exceeds the "
            f"{MAX_PAYLOAD}-byte frame limit", length)
    return msg_type, length


def encode_json(msg_type: int, body: Dict[str, Any]) -> bytes:
    """Frame a JSON control message."""
    return encode_frame(msg_type,
                        json.dumps(body, separators=(",", ":"))
                        .encode("utf-8"))


def decode_json(payload: Buffer) -> Dict[str, Any]:
    """Parse a JSON control payload, insisting on an object."""
    try:
        if isinstance(payload, memoryview):
            payload = payload.tobytes()
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid JSON payload: {error}") from None
    if not isinstance(body, dict):
        raise ProtocolError(f"JSON payload must be an object, "
                            f"got {type(body).__name__}")
    return body


def encode_batch(stream: str, pcs: np.ndarray,
                 values: np.ndarray) -> bytes:
    """Frame one event batch for *stream*."""
    return encode_batch_chunks(stream, [(pcs, values)])


def encode_batch_chunks(stream: str,
                        chunks: Sequence[Tuple[np.ndarray, np.ndarray]]
                        ) -> bytes:
    """Frame several ``(pcs, values)`` chunks as **one** batch.

    The coalescing fast path: the chunks' PC arrays are written back to
    back, then their value arrays, producing the exact frame a single
    concatenated batch would -- but without materializing the
    concatenated arrays, and with one request/reply round trip instead
    of one per chunk.  Receivers cannot (and need not) tell the
    difference; the feeder's split-invariance makes the profile
    identical either way.
    """
    pieces: List[Tuple[np.ndarray, np.ndarray]] = []
    count = 0
    for pcs, values in chunks:
        pcs = np.ascontiguousarray(pcs, dtype=WIRE_DTYPE)
        values = np.ascontiguousarray(values, dtype=WIRE_DTYPE)
        if pcs.shape != values.shape or pcs.ndim != 1:
            raise ValueError(f"batch arrays must be parallel and 1-D, "
                             f"got shapes {pcs.shape} vs {values.shape}")
        pieces.append((pcs, values))
        count += len(pcs)
    header = json.dumps({"stream": stream, "count": count},
                        separators=(",", ":")).encode("utf-8")
    parts = [_BATCH_PREFIX.pack(len(header)), header]
    parts.extend(pcs.data for pcs, _ in pieces)
    parts.extend(values.data for _, values in pieces)
    payload = b"".join(parts)
    return encode_frame(T_BATCH, payload)


def parse_batch_header(payload: Buffer) -> Tuple[str, int, int]:
    """Validate a batch payload; return ``(stream, count, body_start)``.

    Performs the full wire-level validation of :func:`decode_batch`
    (header bounds, stream id, count consistency) but touches only the
    JSON header -- the event arrays are *not* materialized.  This is
    the server's zero-copy ingest path: the payload buffer travels to
    the owning shard whole, and the worker builds its numpy views with
    ``np.frombuffer(payload, offset=body_start)`` /
    ``offset=body_start + 8 * count`` without any intermediate copy.
    """
    if len(payload) < _BATCH_PREFIX.size:
        raise ProtocolError("batch payload shorter than its header "
                            "length prefix")
    (header_length,) = _BATCH_PREFIX.unpack_from(payload)
    body_start = _BATCH_PREFIX.size + header_length
    if body_start > len(payload):
        raise ProtocolError(f"batch header length {header_length} "
                            f"overruns the payload")
    header = decode_json(payload[_BATCH_PREFIX.size:body_start])
    stream = header.get("stream")
    count = header.get("count")
    if not isinstance(stream, str) or not stream:
        raise ProtocolError("batch header is missing a stream id")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError(f"bad batch event count: {count!r}")
    expected = count * WIRE_DTYPE.itemsize * 2
    if len(payload) - body_start != expected:
        raise ProtocolError(
            f"batch declares {count} events ({expected} array bytes) "
            f"but carries {len(payload) - body_start}")
    return stream, count, body_start


def decode_batch(payload: Buffer) -> Tuple[str, np.ndarray, np.ndarray]:
    """Parse a batch payload into ``(stream, pcs, values)``.

    The returned arrays are zero-copy views over *payload*.
    """
    stream, count, body_start = parse_batch_header(payload)
    pcs = np.frombuffer(payload, dtype=WIRE_DTYPE, count=count,
                        offset=body_start)
    values = np.frombuffer(payload, dtype=WIRE_DTYPE, count=count,
                           offset=body_start + count * WIRE_DTYPE.itemsize)
    return stream, pcs, values
