"""The profile server: asyncio front end over a sharded worker pool.

Architecture::

    clients --TCP--> asyncio accept loop --bounded mp queues--> workers
                         (routing, backpressure)                 (sessions)

* Each accepted connection is one coroutine reading frames in order;
  a frame's reply is awaited before the next frame is read, so one
  stream's batches are applied in arrival order.
* Stream ids are routed to workers with a consistent-hash ring
  (:class:`~repro.service.routing.HashRing`); one worker owns all of a
  stream's state.
* Backpressure is end-to-end: each worker bounds its in-flight
  requests (``max_pending``); at the bound the server answers ``busy``
  instead of buffering without limit, and the client backs off.  On the
  reply side, a client that stops reading is shed: if its socket
  buffer stays full past ``drain_timeout`` the connection is closed.
* The data plane has two selectable paths (``data_plane=``).  The
  default ``"fast"`` path validates a batch frame's header only and
  ships the whole payload buffer to the owning shard (no per-array
  copies), packs every op submitted in one event-loop tick into a
  single ``group`` queue put per worker, and receives folded replies
  as one list per queue get.  ``"legacy"`` reproduces the pre-rewrite
  plane -- per-op bounded-queue puts with the event arrays copied out
  of each frame -- and exists so the load harness can measure one
  against the other in the same binary.
* An oversized-but-well-formed frame is answered with a framed
  ``oversized`` error after draining its payload; the connection
  survives.  Only unframeable byte streams (bad magic, unknown type)
  drop the connection.
* ``stop()`` drains gracefully: listeners close, every worker flushes
  the open interval of every open stream (so trailing events are
  scored and reported, not dropped), then the processes are joined.

The server runs its event loop in a dedicated thread so it can be
embedded (tests, notebooks) or run standalone via the CLI's ``serve``
subcommand.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import queue
import threading
from typing import Any, Dict, List, Optional

from . import protocol
from .protocol import ProtocolError
from .routing import HashRing
from .worker import worker_main

#: Default seconds a reply may sit in a slow client's socket buffer
#: before the connection is shed.
DRAIN_TIMEOUT = 10.0

#: Default bound on queued requests per worker.
MAX_PENDING = 64

#: Default per-interval profiles retained per stream for snapshots.
SNAPSHOT_INTERVALS = 64


class WorkerBusy(Exception):
    """The target shard's request queue is full (shed the request)."""


class _WorkerHandle:
    """Server-side endpoint of one worker process.

    Requests are correlated by id; a pump thread moves replies from the
    worker's queue onto the event loop, resolving the matching future.
    """

    def __init__(self, worker_id: int, max_pending: int,
                 snapshot_intervals: int,
                 context: multiprocessing.context.BaseContext,
                 data_plane: str = "fast") -> None:
        self.worker_id = worker_id
        self.data_plane = data_plane
        self.max_pending = max_pending
        # Fast plane: the queue itself is unbounded (one grouped put
        # per tick) and backpressure is enforced on in-flight futures.
        # Legacy plane: the bounded queue is the backpressure.
        maxsize = 0 if data_plane == "fast" else max_pending
        self.requests = context.Queue(maxsize=maxsize)
        self.replies = context.Queue()
        self.process = context.Process(
            target=worker_main,
            args=(worker_id, self.requests, self.replies,
                  snapshot_intervals),
            name=f"repro-profile-worker-{worker_id}",
            daemon=True)
        self._futures: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ids = itertools.count()
        self._pump: Optional[threading.Thread] = None
        self._pending: List[Dict[str, Any]] = []
        self._flush_scheduled = False

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self.process.start()
        self._pump = threading.Thread(target=self._pump_replies,
                                      args=(loop,), daemon=True,
                                      name=f"reply-pump-{self.worker_id}")
        self._pump.start()

    def _pump_replies(self, loop: asyncio.AbstractEventLoop) -> None:
        while True:
            reply = self.replies.get()
            if reply is None:
                break
            # A list is one folded tick's replies; resolve them all in
            # one hop onto the event loop.
            batch = reply if isinstance(reply, list) else [reply]
            try:
                loop.call_soon_threadsafe(self._resolve_batch, batch)
            except RuntimeError:
                break  # loop closed mid-shutdown; nothing left to wake

    def _resolve_batch(self, batch: List[Dict[str, Any]]) -> None:
        for reply in batch:
            future = self._futures.pop(reply.get("req"), None)
            if future is not None and not future.done():
                future.set_result(reply)

    def submit(self, loop: asyncio.AbstractEventLoop,
               message: Dict[str, Any]
               ) -> "asyncio.Future[Dict[str, Any]]":
        """Enqueue *message*; the future resolves with the reply."""
        request_id = next(self._ids)
        message["req"] = request_id
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        if self.data_plane == "fast":
            if len(self._futures) >= self.max_pending:
                raise WorkerBusy(
                    f"worker {self.worker_id} has "
                    f"{len(self._futures)} requests in flight")
            self._futures[request_id] = future
            self._pending.append(message)
            if not self._flush_scheduled:
                self._flush_scheduled = True
                loop.call_soon(self._flush_pending)
            return future
        self._futures[request_id] = future
        try:
            self.requests.put_nowait(message)
        except queue.Full:
            del self._futures[request_id]
            raise WorkerBusy(
                f"worker {self.worker_id} has "
                f"{self.requests.maxsize} requests pending") from None
        return future

    def _flush_pending(self) -> None:
        """Hand every op submitted this tick to the worker in one put."""
        self._flush_scheduled = False
        pending, self._pending = self._pending, []
        if not pending:
            return
        if len(pending) == 1:
            self.requests.put(pending[0])
        else:
            self.requests.put({"op": "group", "ops": pending})

    def shutdown(self, timeout: float = 10.0) -> None:
        """Ask the worker to drain and exit, then stop the pump."""
        if self.process.is_alive():
            try:
                self.requests.put({"op": "shutdown", "req": -1},
                                  timeout=timeout)
            except queue.Full:
                self.process.terminate()
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)
        self.replies.put(None)
        if self._pump is not None:
            self._pump.join(timeout)


class ProfileServer:
    """Multi-tenant streaming profile server.

    Parameters
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (read back from
        :attr:`port` after :meth:`start`).
    num_workers:
        Shard processes; streams are consistent-hashed across them.
    max_pending:
        Bound on queued requests per worker before ``busy`` shedding.
    drain_timeout:
        Seconds a slow client may leave replies unread before its
        connection is closed.
    snapshot_intervals:
        Most recent per-interval profiles retained per stream.
    data_plane:
        ``"fast"`` (default) for zero-copy batch ingest with grouped
        queue handoff, ``"legacy"`` for the pre-rewrite per-op path
        (kept for before/after measurement; results are identical).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 num_workers: int = 2,
                 max_pending: int = MAX_PENDING,
                 drain_timeout: float = DRAIN_TIMEOUT,
                 snapshot_intervals: int = SNAPSHOT_INTERVALS,
                 data_plane: str = "fast") -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, "
                             f"got {num_workers}")
        if data_plane not in ("fast", "legacy"):
            raise ValueError(f"data_plane must be 'fast' or 'legacy', "
                             f"got {data_plane!r}")
        self.host = host
        self.port = port
        self.num_workers = num_workers
        self.drain_timeout = drain_timeout
        self.data_plane = data_plane
        context = multiprocessing.get_context()
        self._workers = [
            _WorkerHandle(worker_id, max_pending, snapshot_intervals,
                          context, data_plane)
            for worker_id in range(num_workers)]
        self._ring = HashRing(range(num_workers))
        self._streams: Dict[str, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = threading.Event()
        self._stopping = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._connection_tasks: "set[asyncio.Task]" = set()
        # Server-level counters (event-loop thread only).
        self._connections_total = 0
        self._connections_active = 0
        self._frames = 0
        self._busy_rejections = 0
        self._slow_client_sheds = 0
        self._protocol_errors = 0

    # -- lifecycle -----------------------------------------------------

    def start(self, timeout: float = 30.0) -> None:
        """Spawn workers, start the loop thread, bind the listener."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._run_loop,
                                        daemon=True,
                                        name="repro-profile-server")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        if self._startup_error is not None:
            self.stop()
            raise RuntimeError("server failed to start") \
                from self._startup_error

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            for worker in self._workers:
                worker.start(loop)
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as error:  # surface to start()
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._connection_tasks):
            task.cancel()
        await asyncio.gather(*self._connection_tasks,
                             return_exceptions=True)

    def stop(self) -> None:
        """Drain and shut down; safe to call from any thread (once)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if (self._loop is not None and self._stop_event is not None
                and self._loop.is_running()):
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(30.0)
        # Workers flush every open stream's trailing interval on the
        # shutdown message before exiting.
        for worker in self._workers:
            worker.shutdown()
        self._streams.clear()

    def __enter__(self) -> "ProfileServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connection_tasks.add(asyncio.current_task())
        self._connections_total += 1
        self._connections_active += 1
        try:
            while True:
                try:
                    header = await reader.readexactly(
                        protocol.HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    msg_type, length = protocol.decode_header(header)
                except protocol.FrameTooLarge as error:
                    # The header parsed, so the stream is still in
                    # sync: skip the declared payload, answer a clean
                    # framed error, and keep serving the connection.
                    self._protocol_errors += 1
                    try:
                        await self._drain_payload(reader, error.length)
                    except (asyncio.IncompleteReadError,
                            ConnectionError):
                        break
                    if not await self._send(writer, protocol.encode_json(
                            protocol.T_ERROR,
                            {"error": str(error), "code": "oversized"})):
                        break
                    continue
                except ProtocolError as error:
                    # The byte stream is out of sync; answer once and
                    # drop the connection.
                    self._protocol_errors += 1
                    await self._send(writer, protocol.encode_json(
                        protocol.T_ERROR,
                        {"error": str(error), "code": "protocol"}))
                    break
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                self._frames += 1
                try:
                    reply = await self._dispatch(msg_type, payload)
                except ProtocolError as error:
                    self._protocol_errors += 1
                    reply = protocol.encode_json(
                        protocol.T_ERROR,
                        {"error": str(error), "code": "protocol"})
                except WorkerBusy as error:
                    self._busy_rejections += 1
                    reply = protocol.encode_json(
                        protocol.T_ERROR,
                        {"error": str(error), "code": "busy"})
                if not await self._send(writer, reply):
                    break
        except asyncio.CancelledError:
            pass  # server shutdown with the connection still open
        finally:
            self._connection_tasks.discard(asyncio.current_task())
            self._connections_active -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _drain_payload(reader: asyncio.StreamReader,
                             length: int) -> None:
        """Discard *length* payload bytes of a rejected frame."""
        remaining = length
        while remaining:
            chunk = await reader.read(min(remaining, 1 << 20))
            if not chunk:
                raise asyncio.IncompleteReadError(b"", remaining)
            remaining -= len(chunk)

    async def _send(self, writer: asyncio.StreamWriter,
                    frame: bytes) -> bool:
        """Write *frame*, shedding the client if it reads too slowly."""
        writer.write(frame)
        try:
            await asyncio.wait_for(writer.drain(), self.drain_timeout)
        except asyncio.TimeoutError:
            self._slow_client_sheds += 1
            return False
        except (ConnectionError, OSError):
            return False
        return True

    # -- request dispatch ----------------------------------------------

    async def _dispatch(self, msg_type: int, payload: bytes) -> bytes:
        loop = asyncio.get_running_loop()
        if msg_type == protocol.T_BATCH:
            if self.data_plane == "fast":
                # Validate the header only and ship the payload whole:
                # the worker builds its numpy views over this buffer,
                # so the event arrays are never copied server-side.
                stream, count, body_start = \
                    protocol.parse_batch_header(payload)
                op = {"op": "batch", "stream": stream,
                      "buffer": payload, "count": count,
                      "offset": body_start}
            else:
                stream, pcs, values = protocol.decode_batch(payload)
                op = {"op": "batch", "stream": stream,
                      "pcs": pcs.tobytes(), "values": values.tobytes()}
            reply = await self._worker_for(stream).submit(loop, op)
            return self._reply_frame(reply)
        body = protocol.decode_json(payload)
        if msg_type == protocol.T_STATS:
            return await self._stats(loop)
        stream = body.get("stream")
        if not isinstance(stream, str) or not stream:
            raise ProtocolError("request is missing a stream id")
        worker = self._worker_for(stream)
        if msg_type == protocol.T_OPEN:
            config = body.get("config")
            if not isinstance(config, dict):
                raise ProtocolError("open request carries no config "
                                    "object")
            reply = await worker.submit(loop, {
                "op": "open", "stream": stream, "config": config})
            if reply.get("ok"):
                self._streams[stream] = worker.worker_id
        elif msg_type == protocol.T_SNAPSHOT:
            reply = await worker.submit(loop, {"op": "snapshot",
                                               "stream": stream})
        elif msg_type == protocol.T_CLOSE:
            reply = await worker.submit(loop, {"op": "close",
                                               "stream": stream})
            self._streams.pop(stream, None)
        else:
            raise ProtocolError(f"frame type {msg_type:#04x} is not a "
                                f"request")
        return self._reply_frame(reply)

    def _worker_for(self, stream: str) -> _WorkerHandle:
        return self._workers[self._ring.shard_for(stream)]

    async def _stats(self, loop: asyncio.AbstractEventLoop) -> bytes:
        futures = []
        for worker in self._workers:
            try:
                futures.append(worker.submit(loop, {"op": "stats"}))
            except WorkerBusy:
                futures.append(None)
        workers: List[Dict[str, Any]] = []
        for worker, future in zip(self._workers, futures):
            if future is None:
                workers.append({"worker": worker.worker_id,
                                "busy": True})
            else:
                workers.append((await future).get("stats", {}))
        body = {
            "server": {
                "host": self.host,
                "port": self.port,
                "num_workers": self.num_workers,
                "data_plane": self.data_plane,
                "connections_total": self._connections_total,
                "connections_active": self._connections_active,
                "frames": self._frames,
                "streams_open": len(self._streams),
                "busy_rejections": self._busy_rejections,
                "slow_client_sheds": self._slow_client_sheds,
                "protocol_errors": self._protocol_errors,
            },
            "workers": workers,
        }
        return protocol.encode_json(protocol.T_OK, body)

    @staticmethod
    def _reply_frame(reply: Dict[str, Any]) -> bytes:
        body = dict(reply)
        body.pop("req", None)
        if body.pop("ok", False):
            return protocol.encode_json(protocol.T_OK, body)
        return protocol.encode_json(protocol.T_ERROR, {
            "error": body.get("error", "unknown worker error"),
            "code": body.get("code", "worker-error")})
