"""Blocking client for the profile service.

One :class:`ProfileClient` wraps one TCP connection.  Requests are
strictly ordered on a connection (the server replies before reading the
next frame), so a client streaming one stream's batches gets the same
interval boundaries as an in-process session run -- batches cannot
overtake each other.

Beyond raw array pushes the client knows the repository's sources: it
can stream a recorded :class:`~repro.workloads.traces.Trace` or a
calibrated benchmark generator in fixed-size batches, which is what the
``repro-profile push`` subcommand uses.

Transient ``busy`` replies (shard queue full -- the server's
backpressure signal) are retried with exponential backoff; every other
error reply raises :class:`ServiceError`.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.config import ProfilerConfig
from ..workloads.traces import Trace
from . import protocol
from .protocol import ProtocolError

#: Default events per pushed batch.
DEFAULT_BATCH_EVENTS = 8192

#: Backoff schedule for ``busy`` replies: base delay and retry cap.
BUSY_BASE_DELAY = 0.02
BUSY_RETRIES = 8


class ServiceError(Exception):
    """The server answered with an error reply.

    ``code`` carries the server's machine-readable slug (for example
    ``unknown-stream``, ``busy``, ``bad-config``).
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ProfileClient:
    """Blocking connection to a :class:`~repro.service.server.ProfileServer`.

    Usable as a context manager; :meth:`close` only closes the socket,
    it does not close open streams (use :meth:`close_stream`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port),
                                                timeout=timeout)
        self.host = host
        self.port = port

    # -- stream operations ---------------------------------------------

    def open_stream(self, stream: str,
                    config: Optional[ProfilerConfig] = None
                    ) -> Dict[str, Any]:
        """Open *stream* under *config* (default :class:`ProfilerConfig`)."""
        config = config if config is not None else ProfilerConfig()
        return self._request(protocol.encode_json(
            protocol.T_OPEN,
            {"stream": stream, "config": config.to_dict()}))

    def push(self, stream: str, pcs: np.ndarray,
             values: np.ndarray) -> Dict[str, Any]:
        """Push one event batch; retries while the shard is busy."""
        frame = protocol.encode_batch(stream, pcs, values)
        delay = BUSY_BASE_DELAY
        for attempt in range(BUSY_RETRIES):
            try:
                return self._request(frame)
            except ServiceError as error:
                if error.code != "busy" or attempt == BUSY_RETRIES - 1:
                    raise
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")

    def push_arrays(self, stream: str, pcs: np.ndarray,
                    values: np.ndarray,
                    batch_events: int = DEFAULT_BATCH_EVENTS
                    ) -> Dict[str, Any]:
        """Push parallel arrays in *batch_events*-sized batches."""
        if batch_events < 1:
            raise ValueError(f"batch_events must be >= 1, "
                             f"got {batch_events}")
        reply: Dict[str, Any] = {}
        for start in range(0, len(pcs), batch_events):
            stop = start + batch_events
            reply = self.push(stream, pcs[start:stop],
                              values[start:stop])
        return reply

    def push_trace(self, stream: str, trace: Trace,
                   batch_events: int = DEFAULT_BATCH_EVENTS
                   ) -> Dict[str, Any]:
        """Stream a recorded trace, batch by batch."""
        return self.push_arrays(stream, trace.pcs, trace.values,
                                batch_events)

    def push_generator(self, stream: str, generator, events: int,
                       batch_events: int = DEFAULT_BATCH_EVENTS
                       ) -> Dict[str, Any]:
        """Stream *events* events from a chunked generator.

        *generator* is anything with a ``chunk(count) -> (pcs, values)``
        method (e.g. :class:`~repro.workloads.generators.TupleStreamGenerator`).
        """
        reply: Dict[str, Any] = {}
        remaining = events
        while remaining > 0:
            count = min(remaining, batch_events)
            pcs, values = generator.chunk(count)
            reply = self.push(stream, pcs, values)
            remaining -= count
        return reply

    def snapshot(self, stream: str) -> Dict[str, Any]:
        """Live snapshot: completed intervals, candidates, error summary."""
        reply = self._request(protocol.encode_json(
            protocol.T_SNAPSHOT, {"stream": stream}))
        return reply["snapshot"]

    def close_stream(self, stream: str) -> Dict[str, Any]:
        """Close *stream*; the final snapshot includes the flushed
        trailing interval, if one was open."""
        reply = self._request(protocol.encode_json(
            protocol.T_CLOSE, {"stream": stream}))
        return reply["snapshot"]

    def server_stats(self) -> Dict[str, Any]:
        """Server- and worker-level statistics."""
        return self._request(protocol.encode_json(protocol.T_STATS, {}))

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        self._socket.close()

    def __enter__(self) -> "ProfileClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, frame: bytes) -> Dict[str, Any]:
        self._socket.sendall(frame)
        msg_type, payload = self._read_frame()
        body = protocol.decode_json(payload)
        if msg_type == protocol.T_ERROR:
            raise ServiceError(body.get("error", "unknown error"),
                               body.get("code", "error"))
        if msg_type != protocol.T_OK:
            raise ProtocolError(f"unexpected reply frame type "
                                f"{msg_type:#04x}")
        return body

    def _read_frame(self) -> Tuple[int, bytes]:
        header = self._recv_exact(protocol.HEADER.size)
        msg_type, length = protocol.decode_header(header)
        return msg_type, self._recv_exact(length)

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = self._socket.recv(remaining)
            if not chunk:
                raise ConnectionError(
                    "server closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
