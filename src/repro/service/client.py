"""Blocking client for the profile service.

One :class:`ProfileClient` wraps one TCP connection.  Requests are
strictly ordered on a connection (the server replies before reading the
next frame), so a client streaming one stream's batches gets the same
interval boundaries as an in-process session run -- batches cannot
overtake each other.

Beyond raw array pushes the client knows the repository's sources: it
can stream a recorded :class:`~repro.workloads.traces.Trace` or a
calibrated benchmark generator in fixed-size batches, which is what the
``repro-profile push`` subcommand uses.

Transient ``busy`` replies (shard queue full -- the server's
backpressure signal) are retried with exponential backoff; every other
error reply raises :class:`ServiceError`.

The push helpers can *coalesce*: frame several generation chunks (or
array slices) into one batch frame via
:func:`~repro.service.protocol.encode_batch_chunks`, paying one
request/reply round trip for many chunks.  The chunk pattern fed to
the profiler is unchanged (the feeder is split-invariant), so results
are byte-identical at any coalescing factor.  Replies are received
into a reusable buffer (``recv_into``), so steady-state reads allocate
nothing.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ProfilerConfig
from ..workloads.traces import Trace
from . import protocol
from .protocol import ProtocolError

#: Default events per pushed batch.
DEFAULT_BATCH_EVENTS = 8192

#: Default generation chunks coalesced into one frame by the push
#: helpers when the caller does not choose a factor.
DEFAULT_COALESCE = 1

#: Backoff schedule for ``busy`` replies: base delay and retry cap.
BUSY_BASE_DELAY = 0.02
BUSY_RETRIES = 8


class ServiceError(Exception):
    """The server answered with an error reply.

    ``code`` carries the server's machine-readable slug (for example
    ``unknown-stream``, ``busy``, ``bad-config``).
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ProfileClient:
    """Blocking connection to a :class:`~repro.service.server.ProfileServer`.

    Usable as a context manager; :meth:`close` only closes the socket,
    it does not close open streams (use :meth:`close_stream`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port),
                                                timeout=timeout)
        self.host = host
        self.port = port
        self._recv_buffer = bytearray(64 * 1024)

    # -- stream operations ---------------------------------------------

    def open_stream(self, stream: str,
                    config: Optional[ProfilerConfig] = None
                    ) -> Dict[str, Any]:
        """Open *stream* under *config* (default :class:`ProfilerConfig`)."""
        config = config if config is not None else ProfilerConfig()
        return self._request(protocol.encode_json(
            protocol.T_OPEN,
            {"stream": stream, "config": config.to_dict()}))

    def push(self, stream: str, pcs: np.ndarray,
             values: np.ndarray) -> Dict[str, Any]:
        """Push one event batch; retries while the shard is busy."""
        return self._push_frame(protocol.encode_batch(stream, pcs,
                                                      values))

    def push_chunks(self, stream: str,
                    chunks: Sequence[Tuple[np.ndarray, np.ndarray]]
                    ) -> Dict[str, Any]:
        """Push several ``(pcs, values)`` chunks as **one** batch frame.

        One request/reply round trip covers all the chunks; the
        feeder's split-invariance makes the resulting profile
        identical to pushing them one by one.
        """
        return self._push_frame(
            protocol.encode_batch_chunks(stream, chunks))

    def push_arrays(self, stream: str, pcs: np.ndarray,
                    values: np.ndarray,
                    batch_events: int = DEFAULT_BATCH_EVENTS,
                    coalesce: int = DEFAULT_COALESCE
                    ) -> Dict[str, Any]:
        """Push parallel arrays in *batch_events*-sized batches,
        framing up to *coalesce* batches per request."""
        if batch_events < 1:
            raise ValueError(f"batch_events must be >= 1, "
                             f"got {batch_events}")
        if coalesce < 1:
            raise ValueError(f"coalesce must be >= 1, got {coalesce}")
        reply: Dict[str, Any] = {}
        chunks: List[Tuple[np.ndarray, np.ndarray]] = []
        for start in range(0, len(pcs), batch_events):
            stop = start + batch_events
            chunks.append((pcs[start:stop], values[start:stop]))
            if len(chunks) == coalesce:
                reply = self.push_chunks(stream, chunks)
                chunks = []
        if chunks:
            reply = self.push_chunks(stream, chunks)
        return reply

    def push_trace(self, stream: str, trace: Trace,
                   batch_events: int = DEFAULT_BATCH_EVENTS,
                   coalesce: int = DEFAULT_COALESCE
                   ) -> Dict[str, Any]:
        """Stream a recorded trace, batch by batch."""
        return self.push_arrays(stream, trace.pcs, trace.values,
                                batch_events, coalesce)

    def push_generator(self, stream: str, generator, events: int,
                       batch_events: int = DEFAULT_BATCH_EVENTS,
                       coalesce: int = DEFAULT_COALESCE
                       ) -> Dict[str, Any]:
        """Stream *events* events from a chunked generator.

        *generator* is anything with a ``chunk(count) -> (pcs, values)``
        method (e.g. :class:`~repro.workloads.generators.TupleStreamGenerator`).
        With *coalesce* > 1 that many generation chunks share one frame
        -- the ``chunk()`` call pattern (and so the generated event
        stream and the profile) is identical at any factor.
        """
        if coalesce < 1:
            raise ValueError(f"coalesce must be >= 1, got {coalesce}")
        reply: Dict[str, Any] = {}
        remaining = events
        while remaining > 0:
            chunks: List[Tuple[np.ndarray, np.ndarray]] = []
            while remaining > 0 and len(chunks) < coalesce:
                count = min(remaining, batch_events)
                chunks.append(generator.chunk(count))
                remaining -= count
            reply = self.push_chunks(stream, chunks)
        return reply

    def snapshot(self, stream: str) -> Dict[str, Any]:
        """Live snapshot: completed intervals, candidates, error summary."""
        reply = self._request(protocol.encode_json(
            protocol.T_SNAPSHOT, {"stream": stream}))
        return reply["snapshot"]

    def close_stream(self, stream: str) -> Dict[str, Any]:
        """Close *stream*; the final snapshot includes the flushed
        trailing interval, if one was open."""
        reply = self._request(protocol.encode_json(
            protocol.T_CLOSE, {"stream": stream}))
        return reply["snapshot"]

    def server_stats(self) -> Dict[str, Any]:
        """Server- and worker-level statistics."""
        return self._request(protocol.encode_json(protocol.T_STATS, {}))

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        self._socket.close()

    def __enter__(self) -> "ProfileClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _push_frame(self, frame: bytes) -> Dict[str, Any]:
        """Send one batch frame; retries while the shard is busy."""
        delay = BUSY_BASE_DELAY
        for attempt in range(BUSY_RETRIES):
            try:
                return self._request(frame)
            except ServiceError as error:
                if error.code != "busy" or attempt == BUSY_RETRIES - 1:
                    raise
                time.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")

    def _request(self, frame: bytes) -> Dict[str, Any]:
        self._socket.sendall(frame)
        msg_type, payload = self._read_frame()
        body = protocol.decode_json(payload)
        if msg_type == protocol.T_ERROR:
            raise ServiceError(body.get("error", "unknown error"),
                               body.get("code", "error"))
        if msg_type != protocol.T_OK:
            raise ProtocolError(f"unexpected reply frame type "
                                f"{msg_type:#04x}")
        return body

    def _read_frame(self) -> Tuple[int, memoryview]:
        header = self._recv_exact(protocol.HEADER.size)
        msg_type, length = protocol.decode_header(header)
        return msg_type, self._recv_exact(length)

    def _recv_exact(self, count: int) -> memoryview:
        """Read exactly *count* bytes into the reusable buffer.

        The returned view is only valid until the next call -- callers
        decode it immediately.  ``decode_header`` runs before the
        payload read, so the header/payload sequence in
        :meth:`_read_frame` is safe.
        """
        if len(self._recv_buffer) < count:
            self._recv_buffer = bytearray(
                max(count, 2 * len(self._recv_buffer)))
        view = memoryview(self._recv_buffer)[:count]
        received = 0
        while received < count:
            read = self._socket.recv_into(view[received:])
            if not read:
                raise ConnectionError(
                    "server closed the connection mid-frame")
            received += read
        return view
