"""Optimization clients consuming hardware profiles (Section 2).

Each module implements one of the paper's motivating run-time
optimizations as a consumer of the accumulator table's output:

* :mod:`~repro.clients.value_specialization` -- value-based
  optimization from ``<load PC, value>`` profiles;
* :mod:`~repro.clients.trace_formation` -- hot-trace layout from
  ``<branch PC, target PC>`` profiles;
* :mod:`~repro.clients.prefetch` -- delinquent-load stride prefetching
  from ``<load PC, miss line>`` profiles;
* :mod:`~repro.clients.hard_branches` -- dual-path (Multiple Path
  Execution) branch selection from misprediction profiles.
"""

from .hard_branches import (DualPathOutcome, HardBranchSelection,
                            MispredictionMonitor, evaluate_selection,
                            misprediction_tuple, select_hard_branches)
from .prefetch import (PrefetchOutcome, StridePrefetcher, delinquent_loads,
                       run_with_prefetcher)
from .trace_formation import (HotTrace, TraceOutcome, TracePlan,
                              build_edge_graph, evaluate_traces,
                              form_traces)
from .value_specialization import (Specialization, SpecializationOutcome,
                                   SpecializationPlan, evaluate_plan,
                                   plan_specializations)

__all__ = [
    "DualPathOutcome",
    "HardBranchSelection",
    "HotTrace",
    "MispredictionMonitor",
    "PrefetchOutcome",
    "Specialization",
    "SpecializationOutcome",
    "SpecializationPlan",
    "StridePrefetcher",
    "TraceOutcome",
    "TracePlan",
    "build_edge_graph",
    "delinquent_loads",
    "evaluate_plan",
    "evaluate_selection",
    "evaluate_traces",
    "form_traces",
    "misprediction_tuple",
    "plan_specializations",
    "run_with_prefetcher",
    "select_hard_branches",
]
