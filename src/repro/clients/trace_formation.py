"""Hot-trace formation from hardware edge profiles (Section 2).

Trace caches fetch dynamically contiguous code; picking which code to
lay out needs exactly the frequently-executed edges the profiler
captures ("a hardware profiling table is needed to track the run-time
behavior").  This client builds a weighted control-flow multigraph from
captured ``<branch PC, target PC>`` candidates and grows hot traces
greedily (most-frequent unconsumed edge first, always following the
heaviest outgoing edge), then scores how much of an actual execution's
control flow the formed traces cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import networkx as nx

from ..core.tuples import ProfileTuple


@dataclass(frozen=True)
class HotTrace:
    """One formed trace: the edge path and its profiled weight."""

    edges: Tuple[ProfileTuple, ...]
    weight: int

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def head(self) -> int:
        return self.edges[0][0]


@dataclass
class TracePlan:
    """The formed traces plus the graph they came from."""

    traces: List[HotTrace] = field(default_factory=list)
    total_profiled_weight: int = 0

    @property
    def covered_weight(self) -> int:
        return sum(trace.weight for trace in self.traces)

    @property
    def coverage(self) -> float:
        """Share of profiled edge weight inside formed traces."""
        if not self.total_profiled_weight:
            return 0.0
        return self.covered_weight / self.total_profiled_weight

    def edge_set(self) -> Set[ProfileTuple]:
        return {edge for trace in self.traces for edge in trace.edges}


def build_edge_graph(candidates: Mapping[ProfileTuple, int]) -> nx.DiGraph:
    """Weighted CFG digraph from captured edge candidates.

    Nodes are PCs; a profiled edge ``<branch, target>`` contributes a
    directed edge with its profiled count as weight.  The branch PC is
    the block terminator, so chaining ``target -> next branch`` is
    approximated by connecting an edge's target to every branch that
    executes after it -- unknown to the profiler -- hence traces here
    follow *edges whose source is the previous edge's target's block*;
    with tuple granularity we conservatively chain ``(a, b)`` to
    ``(b', c)`` when ``b <= b' < b + MAX_BLOCK_BYTES``.
    """
    graph = nx.DiGraph()
    for (branch_pc, target_pc), count in candidates.items():
        if graph.has_edge(branch_pc, target_pc):
            graph[branch_pc][target_pc]["weight"] += count
        else:
            graph.add_edge(branch_pc, target_pc, weight=count)
    return graph


#: Fall-through window used to chain an edge's target to the next
#: branch: a basic block longer than this is assumed cold-terminated.
MAX_BLOCK_BYTES = 128


def form_traces(candidates: Mapping[ProfileTuple, int],
                max_traces: int = 8,
                max_trace_edges: int = 8,
                min_edge_weight: int = 1) -> TracePlan:
    """Greedy hot-trace growing over the profiled edges.

    Repeatedly seeds a trace at the heaviest unconsumed edge and
    extends it through the heaviest chainable successor edge until the
    next edge is consumed, too cold, would revisit a block already in
    the trace, or the length limit is reached.
    """
    if max_traces < 1 or max_trace_edges < 1:
        raise ValueError("max_traces and max_trace_edges must be >= 1")
    remaining: Dict[ProfileTuple, int] = {
        edge: count for edge, count in candidates.items()
        if count >= min_edge_weight}
    plan = TracePlan(total_profiled_weight=sum(candidates.values()))
    by_source: Dict[int, List[ProfileTuple]] = {}
    for edge in remaining:
        by_source.setdefault(edge[0], []).append(edge)

    for _ in range(max_traces):
        if not remaining:
            break
        seed = max(remaining, key=remaining.get)
        trace_edges = [seed]
        weight = remaining.pop(seed)
        visited = {seed[0]}
        current_target = seed[1]
        while len(trace_edges) < max_trace_edges:
            successor = _heaviest_successor(current_target, remaining,
                                            by_source)
            if successor is None or successor[0] in visited:
                break
            trace_edges.append(successor)
            weight += remaining.pop(successor)
            visited.add(successor[0])
            current_target = successor[1]
        plan.traces.append(HotTrace(edges=tuple(trace_edges),
                                    weight=weight))
    return plan


def _heaviest_successor(target: int,
                        remaining: Mapping[ProfileTuple, int],
                        by_source: Mapping[int, Sequence[ProfileTuple]]
                        ):
    best = None
    best_weight = 0
    for source in by_source:
        if not target <= source < target + MAX_BLOCK_BYTES:
            continue
        for edge in by_source[source]:
            weight = remaining.get(edge)
            if weight is not None and weight > best_weight:
                best, best_weight = edge, weight
    return best


@dataclass(frozen=True)
class TraceOutcome:
    """Evaluation of formed traces against an executed edge stream."""

    executed_edges: int
    covered_edges: int

    @property
    def fetch_coverage(self) -> float:
        """Share of executed control transfers inside formed traces."""
        if not self.executed_edges:
            return 0.0
        return self.covered_edges / self.executed_edges


def evaluate_traces(plan: TracePlan,
                    edges: Iterable[ProfileTuple]) -> TraceOutcome:
    """Score *plan* on an actual edge stream.

    Each executed edge counts as covered when it belongs to any formed
    trace -- the fraction of fetches a trace cache built from this plan
    could serve.
    """
    members = plan.edge_set()
    executed = 0
    covered = 0
    for edge in edges:
        executed += 1
        if edge in members:
            covered += 1
    return TraceOutcome(executed_edges=executed, covered_edges=covered)
