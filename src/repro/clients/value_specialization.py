"""Value specialization driven by hardware value profiles (Section 2).

Calder et al. gathered value profiles with ATOM to drive value
specialization; Zhang et al. found ~50 % of accesses dominated by ten
values.  This client closes the loop with our profiler: given an
interval's captured ``<load PC, value>`` candidates, it plans which
loads to specialize on which value, and evaluates the plan against an
actual execution trace -- how often the guarded fast path would hit,
and the resulting cycle saving under a simple latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from ..core.tuples import ProfileTuple


@dataclass(frozen=True)
class Specialization:
    """One planned specialization: guard loads at *pc* against *value*.

    ``profiled_count`` is the profiler's count for the tuple;
    ``profiled_share`` is its share of the PC's profiled activity.
    """

    pc: int
    value: int
    profiled_count: int
    profiled_share: float


@dataclass
class SpecializationPlan:
    """The set of load specializations chosen from one profile."""

    specializations: List[Specialization] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specializations)

    def chosen_values(self) -> Dict[int, int]:
        """Primary specialized value per PC (the highest-count one)."""
        values: Dict[int, int] = {}
        for item in self.specializations:
            values.setdefault(item.pc, item.value)
        return values

    def pcs(self) -> Tuple[int, ...]:
        return tuple({item.pc for item in self.specializations})


def plan_specializations(candidates: Mapping[ProfileTuple, int],
                         min_share: float = 0.5,
                         max_values_per_pc: int = 1
                         ) -> SpecializationPlan:
    """Choose specializations from a captured value profile.

    For each load PC appearing in *candidates*, its values are ranked
    by profiled count; a value is specialized when it accounts for at
    least *min_share* of the PC's profiled occurrences (the classic
    "semi-invariant load" criterion).  At most *max_values_per_pc*
    values are taken per PC.
    """
    if not 0.0 < min_share <= 1.0:
        raise ValueError(f"min_share must be in (0, 1], got {min_share}")
    if max_values_per_pc < 1:
        raise ValueError(f"max_values_per_pc must be >= 1, got "
                         f"{max_values_per_pc}")
    by_pc: Dict[int, List[Tuple[int, int]]] = {}
    for (pc, value), count in candidates.items():
        by_pc.setdefault(pc, []).append((value, count))
    plan = SpecializationPlan()
    for pc, values in sorted(by_pc.items()):
        total = sum(count for _, count in values)
        values.sort(key=lambda item: -item[1])
        for value, count in values[:max_values_per_pc]:
            share = count / total
            if share >= min_share:
                plan.specializations.append(Specialization(
                    pc=pc, value=value, profiled_count=count,
                    profiled_share=share))
    plan.specializations.sort(key=lambda item: -item.profiled_count)
    return plan


@dataclass(frozen=True)
class SpecializationOutcome:
    """Evaluation of a plan against an actual execution trace."""

    guarded_loads: int
    fast_hits: int
    cycles_saved: float

    @property
    def hit_rate(self) -> float:
        """How often the guarded fast path actually fired."""
        if not self.guarded_loads:
            return 0.0
        return self.fast_hits / self.guarded_loads


def evaluate_plan(plan: SpecializationPlan,
                  events: Iterable[ProfileTuple],
                  load_latency: float = 3.0,
                  guard_cost: float = 1.0) -> SpecializationOutcome:
    """Replay *events* (``<pc, value>`` tuples) against *plan*.

    Every event at a specialized PC pays *guard_cost*; when the value
    matches the specialization the *load_latency* is saved.  A plan
    whose specializations rarely hit therefore shows a net loss --
    exactly the danger of false positives the paper's error metric is
    designed to expose.
    """
    specialized = {}
    for item in plan.specializations:
        specialized.setdefault(item.pc, set()).add(item.value)
    guarded = 0
    hits = 0
    for pc, value in events:
        values = specialized.get(pc)
        if values is None:
            continue
        guarded += 1
        if value in values:
            hits += 1
    saved = hits * load_latency - guarded * guard_cost
    return SpecializationOutcome(guarded_loads=guarded, fast_hits=hits,
                                 cycles_saved=saved)
