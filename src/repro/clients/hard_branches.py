"""Hard-branch identification for Multiple Path Execution (Section 2).

Dual-path execution eliminates misprediction stalls but doubles
resource demand, so it "should not be done on all branches, only those
that are known to be problematic.  Finding these problematic branches
is again a task that can be performed by a hardware profiler."

The profiling events here are *mispredictions*: every time a
conventional predictor is wrong, the tuple ``<branch PC, taken
direction>`` is emitted.  Branches crossing the candidate threshold are
the hard branches; this client selects them and scores the selection by
misprediction coverage -- the share of all stalls that dual-path
execution on just those branches would attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..core.tuples import ProfileTuple, make_tuple
from ..simulator.branch_predictor import TwoBitPredictor
from ..simulator.machine import Machine


def misprediction_tuple(pc: int, taken: bool) -> ProfileTuple:
    """Name a misprediction event: ``<branch PC, actual direction>``."""
    return make_tuple(pc, int(taken))


class MispredictionMonitor:
    """Attach a predictor to a machine and emit misprediction tuples.

    Only *conditional* direction mispredictions count (indirect-target
    mispredictions are a different mechanism); the machine reports
    unconditional transfers as taken, which the predictor would learn
    instantly, so they are filtered by construction of the hook.
    """

    def __init__(self, machine: Machine, predictor=None, sink=None) -> None:
        self.machine = machine
        self.predictor = predictor or TwoBitPredictor()
        self.sink = sink
        self.tuples: List[ProfileTuple] = []
        self.true_mispredicts: Dict[int, int] = {}
        machine.branch_hooks.append(self._observe)

    def _observe(self, pc: int, target: int, taken: bool) -> None:
        if self.predictor.update(pc, taken):
            event = misprediction_tuple(pc, taken)
            self.tuples.append(event)
            self.true_mispredicts[pc] = \
                self.true_mispredicts.get(pc, 0) + 1
            if self.sink is not None:
                self.sink(event)

    def detach(self) -> None:
        self.machine.branch_hooks.remove(self._observe)


@dataclass
class HardBranchSelection:
    """Branches chosen for dual-path execution."""

    branches: Tuple[int, ...]
    profiled_weight: Dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.branches)


def select_hard_branches(candidates: Mapping[ProfileTuple, int],
                         max_branches: int = 8) -> HardBranchSelection:
    """Pick the branches with the most profiled mispredictions.

    A branch hard in *both* directions (both ``<pc, 0>`` and
    ``<pc, 1>`` cross the threshold) accumulates both counts -- those
    alternating branches are dual-path execution's best customers.
    """
    if max_branches < 1:
        raise ValueError(f"max_branches must be >= 1, got {max_branches}")
    weight: Dict[int, int] = {}
    for (pc, _direction), count in candidates.items():
        weight[pc] = weight.get(pc, 0) + count
    ranked = sorted(weight.items(), key=lambda item: -item[1])
    chosen = tuple(pc for pc, _ in ranked[:max_branches])
    return HardBranchSelection(
        branches=chosen,
        profiled_weight={pc: weight[pc] for pc in chosen})


@dataclass(frozen=True)
class DualPathOutcome:
    """Evaluation of a hard-branch selection against ground truth."""

    total_mispredictions: int
    covered_mispredictions: int
    selected_branches: int

    @property
    def coverage(self) -> float:
        """Share of all mispredictions at selected branches."""
        if not self.total_mispredictions:
            return 0.0
        return self.covered_mispredictions / self.total_mispredictions


def evaluate_selection(selection: HardBranchSelection,
                       true_mispredicts: Mapping[int, int]
                       ) -> DualPathOutcome:
    """Score the selection against per-branch misprediction truth."""
    total = sum(true_mispredicts.values())
    covered = sum(true_mispredicts.get(pc, 0)
                  for pc in selection.branches)
    return DualPathOutcome(total_mispredictions=total,
                           covered_mispredictions=covered,
                           selected_branches=len(selection))
