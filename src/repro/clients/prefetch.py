"""Profile-guided stride prefetching (Section 2).

"In many cases a large percentage of data cache misses are caused by a
very small number of instructions."  The profiler finds those
*delinquent loads* from ``<load PC, miss line>`` tuples; this client
turns the captured profile into a per-PC stride prefetcher and measures
the miss reduction on a re-run -- observation followed by adaptation,
entirely from hardware-captured state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.tuples import ProfileTuple
from ..simulator.cache import SetAssociativeCache


def delinquent_loads(candidates: Mapping[ProfileTuple, int],
                     top: int = 8) -> List[Tuple[int, int]]:
    """Rank load PCs by profiled miss weight.

    *candidates* holds ``<load PC, miss line>`` tuples; a PC missing on
    many distinct lines (a streaming or striding load) accumulates the
    weight of all of them.  Returns up to *top* ``(pc, weight)`` pairs,
    heaviest first.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    weights: Dict[int, int] = {}
    for (pc, _line), count in candidates.items():
        weights[pc] = weights.get(pc, 0) + count
    ranked = sorted(weights.items(), key=lambda item: -item[1])
    return ranked[:top]


@dataclass
class _StrideState:
    """Per-PC stride detector: last address, last stride, confidence."""

    last_address: Optional[int] = None
    stride: int = 0
    confidence: int = 0


@dataclass
class PrefetcherStats:
    """Issue accounting for the prefetch engine."""

    observed_loads: int = 0
    issued: int = 0


class StridePrefetcher:
    """Stride prefetcher restricted to profiled delinquent PCs.

    On each load by a tracked PC the detector updates its stride; once
    the same stride repeats (``confidence >= threshold``) the next
    ``degree`` strided lines are prefetched into the cache.
    """

    def __init__(self, cache: SetAssociativeCache,
                 pcs, degree: int = 2,
                 confidence_threshold: int = 1) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.cache = cache
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self._states: Dict[int, _StrideState] = {
            pc: _StrideState() for pc in pcs}
        self.stats = PrefetcherStats()

    @property
    def tracked_pcs(self) -> Tuple[int, ...]:
        return tuple(self._states)

    def observe(self, pc: int, address: int) -> None:
        """Feed one committed load; may issue prefetches."""
        state = self._states.get(pc)
        if state is None:
            return
        self.stats.observed_loads += 1
        if state.last_address is not None:
            stride = address - state.last_address
            if stride != 0 and stride == state.stride:
                state.confidence += 1
            else:
                state.stride = stride
                state.confidence = 0
        state.last_address = address
        if (state.confidence >= self.confidence_threshold
                and state.stride != 0):
            for step in range(1, self.degree + 1):
                target = address + step * state.stride
                if target >= 0 and self.cache.prefetch(target):
                    self.stats.issued += 1


@dataclass(frozen=True)
class PrefetchOutcome:
    """Before/after cache behaviour for a profile-guided prefetch run."""

    baseline_misses: int
    prefetched_misses: int
    accesses: int
    issued: int
    prefetch_accuracy: float

    @property
    def miss_reduction(self) -> float:
        """Fraction of baseline misses removed."""
        if not self.baseline_misses:
            return 0.0
        return 1.0 - self.prefetched_misses / self.baseline_misses


def run_with_prefetcher(program, candidates: Mapping[ProfileTuple, int],
                        cache_factory=SetAssociativeCache,
                        top: int = 8, degree: int = 2,
                        max_instructions: int = 10_000_000
                        ) -> PrefetchOutcome:
    """Measure profile-guided prefetching on *program* end to end.

    Runs the program twice on identical caches: once bare (baseline),
    once with a :class:`StridePrefetcher` configured from the profiled
    *candidates*.  Returns the miss-reduction outcome.
    """
    from ..simulator.machine import Machine

    baseline_cache = cache_factory()
    machine = Machine(program)
    machine.load_hooks.append(
        lambda pc, address, value: baseline_cache.access(address))
    machine.run(max_instructions)

    tracked = [pc for pc, _ in delinquent_loads(candidates, top=top)]
    prefetch_cache = cache_factory()
    prefetcher = StridePrefetcher(prefetch_cache, tracked, degree=degree)

    def observe(pc: int, address: int, value: int) -> None:
        prefetch_cache.access(address)
        prefetcher.observe(pc, address)

    machine = Machine(program)
    machine.load_hooks.append(observe)
    machine.run(max_instructions)

    return PrefetchOutcome(
        baseline_misses=baseline_cache.stats.misses,
        prefetched_misses=prefetch_cache.stats.misses,
        accesses=prefetch_cache.stats.accesses,
        issued=prefetcher.stats.issued,
        prefetch_accuracy=prefetch_cache.stats.prefetch_accuracy,
    )
