"""repro -- reproduction of "Catching Accurate Profiles in Hardware".

A Python library implementing the HPCA 2003 Multi-Hash hardware
profiling architecture of Narayanasamy, Sherwood, Sair, Calder and
Varghese, together with everything its evaluation depends on:

* :mod:`repro.core` -- the interval-based single-hash and multi-hash
  profilers, the perfect (oracle) profiler, the Stratified Sampler
  baseline, the paper's hash-function family, the theoretical
  false-positive model, and the hardware area model;
* :mod:`repro.metrics` -- the four-way candidate classification and the
  weighted error metric of Section 5.5;
* :mod:`repro.simulator` -- a small register-machine ISA, assembler and
  interpreter standing in for the paper's DEC Alpha + ATOM testbed;
* :mod:`repro.profiling` -- ATOM-like instrumentation and the session
  driver that feeds event streams to profilers and scores them;
* :mod:`repro.workloads` -- per-benchmark synthetic tuple-stream models
  calibrated to the paper's SPEC / C++ workload statistics, plus trace
  record/replay;
* :mod:`repro.experiments` -- one module per evaluation figure,
  regenerating its rows/series.

Quickstart::

    from repro import (MultiHashProfiler, best_multi_hash,
                       SHORT_INTERVAL)
    from repro.workloads import benchmark_stream
    from repro.profiling import ProfilingSession

    session = ProfilingSession(best_multi_hash(SHORT_INTERVAL))
    result = session.run(benchmark_stream("gcc", SHORT_INTERVAL,
                                          num_intervals=20))
    print(result.summary.percent(), "% error")
"""

from .core import (LONG_INTERVAL, SHORT_INTERVAL, HardwareProfiler,
                   HotSpotConfig, HotSpotDetector, IntervalProfile,
                   IntervalSpec, MultiHashProfiler, PerfectProfiler,
                   ProfilerConfig, SingleHashProfiler, StratifiedConfig,
                   StratifiedSampler, TaggedTableConfig,
                   TaggedTableProfiler, best_multi_hash,
                   best_single_hash, build_profiler, edge_tuple,
                   value_tuple)
from .metrics import Category, ErrorSummary

__version__ = "1.0.0"

__all__ = [
    "Category",
    "HotSpotConfig",
    "HotSpotDetector",
    "TaggedTableConfig",
    "TaggedTableProfiler",
    "ErrorSummary",
    "HardwareProfiler",
    "IntervalProfile",
    "IntervalSpec",
    "LONG_INTERVAL",
    "MultiHashProfiler",
    "PerfectProfiler",
    "ProfilerConfig",
    "SHORT_INTERVAL",
    "SingleHashProfiler",
    "StratifiedConfig",
    "StratifiedSampler",
    "best_multi_hash",
    "best_single_hash",
    "build_profiler",
    "edge_tuple",
    "value_tuple",
    "__version__",
]
