"""Config-driven scenario suite: seeded YAML stream scenarios.

The paper's evaluation rests on eight fixed benchmark traces, but its
own Section 5.6.1 says profiler accuracy is governed by stream
*properties*: distinct tuples per interval, candidates over threshold,
and inter-interval variation.  A **scenario** pins those properties
under direct control: a YAML config names a base tuple population
(either one of the calibrated benchmark models or an explicit
:class:`~repro.workloads.generators.StreamModel`) and composes it with
injection knobs that actively try to break the profiler:

* **aliasing** -- a cluster of distinct tuples engineered to collide in
  the fused fold-table hash (:mod:`repro.core.hashing`), each
  individually sub-threshold but collectively pounding one counter.
  This is the worst case for the single-hash architecture; the
  multi-hash tables use independent functions, so the cluster scatters
  everywhere else (the Section 6.2 argument, made adversarial).
* **heavy_tail** -- a Zipf-weighted tuple population, the
  heavy-hitter-stream shape of the Estan-Varghese lineage.
* **bursts** -- rare-event bursts: a never-before-seen tuple suddenly
  repeating for a run of events (fraud/anomaly style), destabilizing
  short intervals.
* **phase_drift** (on the stream model) -- the working set's rotation
  period drifts geometrically, so a fixed profiling interval length
  slides across the stream's natural phases.

Scenarios are deterministic per ``(config, seed)``: the same config and
seed produce byte-identical event streams, whether emitted as JSONL
(:func:`write_jsonl`), materialized into the shared trace store
(:meth:`~repro.workloads.trace_store.TraceStore.get_scenario`), or fed
live to a :class:`~repro.profiling.session.ProfilingSession` or the
profile service -- all three consume the same
:class:`ScenarioStream.chunk` path.

Preset configs ship with the package (``scenario_configs/``); see
``docs/SCENARIOS.md`` for the schema and knob semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache
from typing import (Any, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

from ..core.hashing import HashFunctionFamily
from ..core.tuples import EventKind
from .generators import HotBand, StreamModel, TupleStreamGenerator, _mix64

#: PC-space bases for the injected populations, disjoint from the
#: generator's hot/recurring/fresh bases.
ALIAS_PC_BASE = 0x7_0000_0000
HEAVY_PC_BASE = 0x8_0000_0000
BURST_PC_BASE = 0x9_0000_0000

#: Where the shipped preset configs live.
PRESET_DIR = os.path.join(os.path.dirname(__file__), "scenario_configs")

#: Combined injection rate ceiling: some of the base stream must
#: survive, or the scenario no longer exercises the population model.
MAX_INJECT_RATE = 0.9


def _require_yaml():
    try:
        import yaml
    except ImportError as error:  # pragma: no cover - dep is declared
        raise RuntimeError(
            "scenario configs are YAML; install pyyaml") from error
    return yaml


def _check_keys(data: Mapping[str, Any], allowed: Sequence[str],
                context: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(
            f"unknown {context} keys: {', '.join(sorted(unknown))}; "
            f"allowed: {', '.join(allowed)}")


def _mix_seed(seed: int, salt: int) -> int:
    """Derive an independent sub-seed (splitmix64 finalizer)."""
    mixed = (seed + 0x9E3779B97F4A7C15 * (salt + 1)) & (2 ** 64 - 1)
    mixed ^= mixed >> 30
    mixed = (mixed * 0xBF58476D1CE4E5B9) & (2 ** 64 - 1)
    mixed ^= mixed >> 27
    mixed = (mixed * 0x94D049BB133111EB) & (2 ** 64 - 1)
    return mixed ^ (mixed >> 31)


def _mix_scalar(value: int) -> int:
    return int(_mix64(np.array([value], dtype=np.uint64))[0])


# ----------------------------------------------------------------------
# Config schema
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AliasingSpec:
    """Adversarial hash-aliasing injection.

    ``rate`` of the stream is replaced by uniform draws from a cluster
    of ``cluster`` distinct tuples engineered (offline, deterministic)
    to share one table index under hash function ``ordinal`` of the
    ``(index_bits, hash_seed)`` family -- i.e. the exact function a
    single-hash profiler with ``2**index_bits`` counters and that seed
    would use.
    """

    rate: float = 0.0
    cluster: int = 16
    index_bits: int = 11
    hash_seed: int = 0x5EED
    ordinal: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"aliasing rate must be in [0, 1), got "
                             f"{self.rate}")
        if self.cluster < 1:
            raise ValueError(f"aliasing cluster must be >= 1, got "
                             f"{self.cluster}")
        if not 1 <= self.index_bits <= 24:
            raise ValueError(f"aliasing index_bits must be in [1, 24], "
                             f"got {self.index_bits}")
        if self.ordinal < 0:
            raise ValueError(f"aliasing ordinal must be >= 0, got "
                             f"{self.ordinal}")

    def to_dict(self) -> Dict[str, Any]:
        return {"rate": self.rate, "cluster": self.cluster,
                "index_bits": self.index_bits,
                "hash_seed": self.hash_seed, "ordinal": self.ordinal}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AliasingSpec":
        _check_keys(data, ["rate", "cluster", "index_bits", "hash_seed",
                           "ordinal"], "inject.aliasing")
        return cls(**{key: value for key, value in data.items()})


@dataclass(frozen=True)
class HeavyTailSpec:
    """Zipf-weighted tuple population claiming ``rate`` of the stream."""

    rate: float = 0.0
    pool: int = 256
    alpha: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"heavy_tail rate must be in [0, 1), got "
                             f"{self.rate}")
        if self.pool < 1:
            raise ValueError(f"heavy_tail pool must be >= 1, got "
                             f"{self.pool}")
        if self.alpha <= 0.0:
            raise ValueError(f"heavy_tail alpha must be positive, got "
                             f"{self.alpha}")

    def to_dict(self) -> Dict[str, Any]:
        return {"rate": self.rate, "pool": self.pool, "alpha": self.alpha}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HeavyTailSpec":
        _check_keys(data, ["rate", "pool", "alpha"], "inject.heavy_tail")
        return cls(**{key: value for key, value in data.items()})


@dataclass(frozen=True)
class BurstSpec:
    """Rare-event bursts: every ~``every`` events (exponential gaps), a
    fresh tuple identity repeats for ``length`` consecutive events.
    ``every == 0`` disables bursts."""

    every: int = 0
    length: int = 256

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError(f"bursts every must be >= 0, got "
                             f"{self.every}")
        if self.length < 1:
            raise ValueError(f"bursts length must be >= 1, got "
                             f"{self.length}")

    def to_dict(self) -> Dict[str, Any]:
        return {"every": self.every, "length": self.length}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BurstSpec":
        _check_keys(data, ["every", "length"], "inject.bursts")
        return cls(**{key: value for key, value in data.items()})


#: StreamSpec fields forwarded verbatim to :class:`StreamModel`.
_MODEL_FIELDS = ("recurring_mass", "recurring_pool", "num_phases",
                 "phase_length", "phase_overlap", "phase_drift",
                 "burstiness", "fresh_pc_count")

#: Explicit-model defaults for omitted StreamSpec fields.
_MODEL_DEFAULTS = {
    "recurring_mass": 0.3,
    "recurring_pool": 2048,
    "num_phases": 1,
    "phase_length": 1_000_000,
    "phase_overlap": 0.5,
    "phase_drift": 1.0,
    "burstiness": 0.0,
    "fresh_pc_count": 32,
}

_DEFAULT_BANDS = ({"count": 8, "top_share": 0.03, "bottom_share": 0.011},)


@dataclass(frozen=True)
class StreamSpec:
    """The base tuple population of a scenario.

    Either names a calibrated ``benchmark`` model (in which case only
    ``phase_drift`` may additionally be set -- it is grafted onto the
    calibrated model) or describes an explicit
    :class:`~repro.workloads.generators.StreamModel` via ``bands`` and
    the ``_MODEL_FIELDS``; omitted fields take :data:`_MODEL_DEFAULTS`.
    """

    benchmark: Optional[str] = None
    bands: Optional[Tuple[Mapping[str, Any], ...]] = None
    recurring_mass: Optional[float] = None
    recurring_pool: Optional[int] = None
    num_phases: Optional[int] = None
    phase_length: Optional[int] = None
    phase_overlap: Optional[float] = None
    phase_drift: Optional[float] = None
    burstiness: Optional[float] = None
    fresh_pc_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bands is not None:
            object.__setattr__(self, "bands", tuple(
                dict(band) for band in self.bands))
        if self.benchmark is not None:
            fixed = [name for name in ("bands",) + _MODEL_FIELDS
                     if name != "phase_drift"
                     and getattr(self, name) is not None]
            if fixed:
                raise ValueError(
                    f"stream.benchmark={self.benchmark!r} uses the "
                    f"calibrated model; only phase_drift may be "
                    f"overridden, not: {', '.join(fixed)}")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.benchmark is not None:
            data["benchmark"] = self.benchmark
        if self.bands is not None:
            data["bands"] = [dict(band) for band in self.bands]
        for name in _MODEL_FIELDS:
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamSpec":
        _check_keys(data, ["benchmark", "bands"] + list(_MODEL_FIELDS),
                    "stream")
        kwargs: Dict[str, Any] = dict(data)
        if "bands" in kwargs and kwargs["bands"] is not None:
            kwargs["bands"] = tuple(dict(band) for band in kwargs["bands"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ProfilePoint:
    """The scenario's default profiling operating point."""

    interval_length: int = 10_000
    threshold: float = 0.01
    intervals: int = 8

    def __post_init__(self) -> None:
        # IntervalSpec validates length/threshold consistency.
        self.spec  # noqa: B018 - construction is the validation
        if self.intervals < 1:
            raise ValueError(f"profile intervals must be >= 1, got "
                             f"{self.intervals}")

    @property
    def spec(self):
        from ..core.config import IntervalSpec

        return IntervalSpec(self.interval_length, self.threshold)

    def to_dict(self) -> Dict[str, Any]:
        return {"interval_length": self.interval_length,
                "threshold": self.threshold,
                "intervals": self.intervals}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProfilePoint":
        _check_keys(data, ["interval_length", "threshold", "intervals"],
                    "profile")
        return cls(**{key: value for key, value in data.items()})


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully-specified, seeded stream scenario."""

    name: str
    description: str = ""
    kind: EventKind = EventKind.VALUE
    seed: int = 0
    stream: StreamSpec = field(default_factory=StreamSpec)
    aliasing: AliasingSpec = field(default_factory=AliasingSpec)
    heavy_tail: HeavyTailSpec = field(default_factory=HeavyTailSpec)
    bursts: BurstSpec = field(default_factory=BurstSpec)
    profile: ProfilePoint = field(default_factory=ProfilePoint)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        total = self.aliasing.rate + self.heavy_tail.rate
        if total > MAX_INJECT_RATE:
            raise ValueError(
                f"combined injection rate {total:.3f} exceeds "
                f"{MAX_INJECT_RATE} of the stream")
        # Building the model validates the stream spec eagerly, so a
        # bad config fails at load time, not first generation.
        build_stream_model(self.stream, self.kind, self.name, self.seed)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind.value,
            "seed": self.seed,
            "stream": self.stream.to_dict(),
            "inject": {"aliasing": self.aliasing.to_dict(),
                       "heavy_tail": self.heavy_tail.to_dict(),
                       "bursts": self.bursts.to_dict()},
            "profile": self.profile.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioConfig":
        _check_keys(data, ["name", "description", "kind", "seed",
                           "stream", "inject", "profile"], "scenario")
        if "name" not in data:
            raise ValueError("scenario config must carry a name")
        inject = data.get("inject", {})
        _check_keys(inject, ["aliasing", "heavy_tail", "bursts"],
                    "inject")
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            kind=EventKind(data.get("kind", EventKind.VALUE.value)),
            seed=int(data.get("seed", 0)),
            stream=StreamSpec.from_dict(data.get("stream", {})),
            aliasing=AliasingSpec.from_dict(inject.get("aliasing", {})),
            heavy_tail=HeavyTailSpec.from_dict(
                inject.get("heavy_tail", {})),
            bursts=BurstSpec.from_dict(inject.get("bursts", {})),
            profile=ProfilePoint.from_dict(data.get("profile", {})),
        )

    def canonical_json(self) -> str:
        """Stable serialized form -- the scenario's identity."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """SHA-256 of the canonical config (seed included): the trace
        store and result cache key component."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# YAML load / dump and the preset catalog
# ----------------------------------------------------------------------


def dump_scenario(config: ScenarioConfig) -> str:
    """Canonical YAML form; ``load_scenario_text`` inverts it exactly."""
    yaml = _require_yaml()
    return yaml.safe_dump(config.to_dict(), sort_keys=True,
                          default_flow_style=False)


def load_scenario_text(text: str) -> ScenarioConfig:
    """Parse one YAML document into a validated :class:`ScenarioConfig`."""
    yaml = _require_yaml()
    data = yaml.safe_load(text)
    if not isinstance(data, Mapping):
        raise ValueError("scenario YAML must be a mapping at top level")
    return ScenarioConfig.from_dict(data)


def list_presets() -> List[str]:
    """Names of the shipped preset configs."""
    if not os.path.isdir(PRESET_DIR):
        return []
    return sorted(os.path.splitext(entry)[0]
                  for entry in os.listdir(PRESET_DIR)
                  if entry.endswith(".yaml"))


def preset_path(name: str) -> str:
    path = os.path.join(PRESET_DIR, f"{name}.yaml")
    if not os.path.exists(path):
        raise ValueError(f"unknown scenario preset {name!r}; shipped "
                         f"presets: {', '.join(list_presets())}")
    return path


def resolve_scenario_path(ref: str) -> str:
    """*ref* is a YAML path or a shipped preset name."""
    if os.path.exists(ref):
        return ref
    if os.path.sep not in ref and not ref.endswith(".yaml"):
        return preset_path(ref)
    raise FileNotFoundError(f"no scenario config at {ref}")


def load_scenario(ref: str,
                  seed: Optional[int] = None) -> ScenarioConfig:
    """Load a scenario from a path or preset name, optionally reseeded."""
    with open(resolve_scenario_path(ref), "r", encoding="utf-8") as handle:
        config = load_scenario_text(handle.read())
    return config if seed is None else config.with_seed(seed)


# ----------------------------------------------------------------------
# Model composition
# ----------------------------------------------------------------------


@lru_cache(maxsize=32)
def _benchmark_base_model(name: str, kind: EventKind) -> StreamModel:
    # benchmark_model re-runs its calibration solve on every call;
    # config validation would otherwise pay ~1s per construction.
    from .benchmarks import benchmark_model

    return benchmark_model(name, kind)


def build_stream_model(spec: StreamSpec, kind: EventKind, name: str,
                       seed: int = 0) -> StreamModel:
    """The base :class:`StreamModel` a scenario generates from."""
    if spec.benchmark is not None:
        model = _benchmark_base_model(spec.benchmark, kind)
        overrides: Dict[str, Any] = {"name": name, "seed": seed}
        if spec.phase_drift is not None:
            overrides["phase_drift"] = spec.phase_drift
        return replace(model, **overrides)
    band_specs = spec.bands if spec.bands is not None else _DEFAULT_BANDS
    bands = []
    for band in band_specs:
        _check_keys(band, ["count", "top_share", "bottom_share"],
                    "stream.bands entry")
        bands.append(HotBand(count=int(band["count"]),
                             top_share=float(band["top_share"]),
                             bottom_share=float(band["bottom_share"])))
    kwargs = {field_name: (getattr(spec, field_name)
                           if getattr(spec, field_name) is not None
                           else _MODEL_DEFAULTS[field_name])
              for field_name in _MODEL_FIELDS}
    return StreamModel(name=name, kind=kind, bands=tuple(bands),
                       seed=seed, **kwargs)


@lru_cache(maxsize=64)
def alias_cluster(spec: AliasingSpec) -> Tuple[np.ndarray, np.ndarray]:
    """``cluster`` distinct tuples sharing one fold-table index.

    The search is deterministic: candidate tuples are enumerated from a
    fixed sequence (four alias PCs, splitmix64 values) and kept when
    the target hash function maps them to the index of candidate 0.
    Expected scan length is ``cluster * 2**index_bits`` candidates;
    the fused fold tables make each batch a few array gathers.
    """
    function = HashFunctionFamily(spec.index_bits,
                                  spec.hash_seed)[spec.ordinal]
    batch = 1 << 14
    limit = max(batch, spec.cluster * function.table_size * 64)
    found_pcs: List[np.ndarray] = []
    found_values: List[np.ndarray] = []
    found = 0
    target = None
    ordinal = 0
    while found < spec.cluster:
        if ordinal >= limit:  # pragma: no cover - statistical safety net
            raise RuntimeError(
                f"alias search exhausted {limit} candidates for "
                f"{spec.cluster} collisions at {spec.index_bits} bits")
        ordinals = np.arange(ordinal, ordinal + batch, dtype=np.uint64)
        pcs = (np.uint64(ALIAS_PC_BASE)
               + np.uint64(8) * (ordinals % np.uint64(4)))
        values = _mix64(ordinals + np.uint64(1 << 36))
        indices = function.index_array(pcs, values)
        if target is None:
            target = int(indices[0])
        mask = indices == target
        found_pcs.append(pcs[mask])
        found_values.append(values[mask])
        found += int(mask.sum())
        ordinal += batch
    pcs = np.concatenate(found_pcs)[:spec.cluster].copy()
    values = np.concatenate(found_values)[:spec.cluster].copy()
    pcs.setflags(write=False)
    values.setflags(write=False)
    return pcs, values


# ----------------------------------------------------------------------
# The stream
# ----------------------------------------------------------------------


class ScenarioStream:
    """Deterministic chunked event source for one scenario.

    Wraps the base :class:`TupleStreamGenerator` and overlays the
    injection knobs chunk-wise.  Exposes the same ``chunk(count)``
    protocol as the generator, so sessions, the trace store, the JSONL
    emitter and the profile service client all consume scenarios
    through one path.  Like the base generator, the exact event
    sequence depends on the pattern of ``chunk`` sizes; replay paths
    therefore standardize on the profiling session's chunk pattern
    (see :func:`session_chunks`).
    """

    def __init__(self, config: ScenarioConfig,
                 seed: Optional[int] = None) -> None:
        self.config = config if seed is None else config.with_seed(seed)
        self.seed = self.config.seed
        model = build_stream_model(self.config.stream, self.config.kind,
                                   self.config.name, self.seed)
        self.model = model
        self._base = TupleStreamGenerator(model, seed=self.seed)
        if self.config.aliasing.rate > 0.0:
            self._alias_pcs, self._alias_values = alias_cluster(
                self.config.aliasing)
        heavy = self.config.heavy_tail
        if heavy.rate > 0.0:
            ranks = np.arange(1, heavy.pool + 1, dtype=np.float64)
            weights = ranks ** -heavy.alpha
            self._heavy_weights = weights / weights.sum()
            pc_modulus = max(1, heavy.pool // 4)
            identities = np.arange(heavy.pool, dtype=np.uint64)
            self._heavy_pcs = (np.uint64(HEAVY_PC_BASE) + np.uint64(8)
                               * (identities % np.uint64(pc_modulus)))
            self._heavy_values = _mix64(identities + np.uint64(1 << 37))
        self.reset()

    @property
    def kind(self) -> EventKind:
        return self.config.kind

    def reset(self) -> None:
        """Rewind to the start of the stream."""
        self._base.reset()
        self._rng = np.random.default_rng(_mix_seed(self.seed, 0xA11A5))
        self._burst_rng = np.random.default_rng(
            _mix_seed(self.seed, 0xB0057))
        self._position = 0
        self._burst_remaining = 0
        self._burst_pc = 0
        self._burst_value = 0
        self._burst_counter = 0
        bursts = self.config.bursts
        self._next_burst = (self._draw_gap() if bursts.every else None)

    def _draw_gap(self) -> int:
        return max(1, int(self._burst_rng.exponential(
            self.config.bursts.every)))

    def chunk(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Generate the next *count* events as ``(pcs, values)``."""
        pcs, values = self._base.chunk(count)
        alias_rate = self.config.aliasing.rate
        heavy_rate = self.config.heavy_tail.rate
        if alias_rate or heavy_rate:
            u = self._rng.random(count)
            if alias_rate:
                mask = u < alias_rate
                picks = int(mask.sum())
                if picks:
                    members = self._rng.integers(len(self._alias_pcs),
                                                 size=picks)
                    pcs[mask] = self._alias_pcs[members]
                    values[mask] = self._alias_values[members]
            if heavy_rate:
                mask = (u >= alias_rate) & (u < alias_rate + heavy_rate)
                picks = int(mask.sum())
                if picks:
                    members = self._rng.choice(
                        len(self._heavy_weights), size=picks,
                        p=self._heavy_weights)
                    pcs[mask] = self._heavy_pcs[members]
                    values[mask] = self._heavy_values[members]
        if self.config.bursts.every:
            self._overlay_bursts(pcs, values)
        self._position += count
        return pcs, values

    def _overlay_bursts(self, pcs: np.ndarray,
                        values: np.ndarray) -> None:
        """Overwrite burst windows with their burst tuple, carrying
        partially-consumed bursts across chunk boundaries."""
        count = len(pcs)
        offset = 0
        while offset < count:
            if self._burst_remaining:
                take = min(self._burst_remaining, count - offset)
                pcs[offset:offset + take] = self._burst_pc
                values[offset:offset + take] = self._burst_value
                self._burst_remaining -= take
                offset += take
                continue
            start = self._next_burst - self._position
            if start >= count:
                break
            offset = max(offset, start)
            self._burst_counter += 1
            ident = self._burst_counter
            self._burst_pc = int(BURST_PC_BASE + 8 * (ident % 64))
            self._burst_value = _mix_scalar(ident + (1 << 38))
            self._burst_remaining = self.config.bursts.length
            self._next_burst += (self.config.bursts.length
                                 + self._draw_gap())

    def events(self, count: int,
               chunk_size: int = 1 << 16) -> Iterator[Tuple[int, int]]:
        """Yield the next *count* events as Python ``(pc, value)``."""
        remaining = count
        while remaining > 0:
            size = min(remaining, chunk_size)
            pcs, values = self.chunk(size)
            yield from zip(pcs.tolist(), values.tolist())
            remaining -= size


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------


def session_chunks(stream, interval_length: int, num_intervals: int,
                   chunk_events: Optional[int] = None
                   ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Pieces in the exact pattern :class:`ProfilingSession` reads.

    Both the trace store and the JSONL emitter generate through this
    single pattern, so a materialized/emitted scenario replays
    bit-identically to feeding the live stream to a session.
    """
    if chunk_events is None:
        from ..profiling.session import CHUNK_EVENTS

        chunk_events = CHUNK_EVENTS
    for _ in range(num_intervals):
        pending = 0
        while pending < interval_length:
            take = min(chunk_events, interval_length - pending)
            yield stream.chunk(take)
            pending += take


def jsonl_lines(config: ScenarioConfig,
                num_intervals: Optional[int] = None) -> Iterator[str]:
    """The scenario's JSONL emission: one meta line, then one compact
    ``{"pc": ..., "value": ...}`` object per event."""
    intervals = (config.profile.intervals if num_intervals is None
                 else num_intervals)
    length = config.profile.interval_length
    meta = {"scenario": config.name, "kind": config.kind.value,
            "seed": config.seed, "interval_length": length,
            "intervals": intervals, "events": intervals * length,
            "config_sha256": config.fingerprint()}
    yield json.dumps(meta, sort_keys=True, separators=(",", ":"))
    stream = ScenarioStream(config)
    for pcs, values in session_chunks(stream, length, intervals):
        for pc, value in zip(pcs.tolist(), values.tolist()):
            yield f'{{"pc":{pc},"value":{value}}}'


def write_jsonl(config: ScenarioConfig, path: str,
                num_intervals: Optional[int] = None) -> int:
    """Atomically write the scenario's JSONL stream; returns the event
    count.  Uses the same atomic-write helper as the bench JSON
    writers, so a crashed emission never leaves a torn file."""
    from ..ioutil import atomic_write_text

    lines = list(jsonl_lines(config, num_intervals))
    atomic_write_text(path, "\n".join(lines) + "\n")
    return len(lines) - 1
