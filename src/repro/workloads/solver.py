"""Solve benchmark targets into stream-model parameters.

The paper characterizes each workload by three observable statistics
(Section 5.6.1, Figures 4-5): distinct tuples per interval, candidates
over the 1 % threshold, and candidates over the 0.1 % threshold.  This
module turns those targets -- plus qualitative character (phases,
burstiness) -- into a concrete :class:`~repro.workloads.generators.StreamModel`:

* the 1 % candidates become a *strong* hot band with shares log-spaced
  down to just above 1 %;
* the remaining 0.1 % candidates become a *weak* band just above 0.1 %;
* the distinct-tuple budget left after the hot set is split between a
  saturated recurring pool (repeating, sub-threshold tuples) and fresh
  never-repeating tuples, with masses chosen so the expected distinct
  count at the 10 K reference interval hits the target.

The construction is checked for feasibility: you cannot ask for more
distinct tuples per interval than the non-hot event budget can supply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.tuples import EventKind
from .generators import HotBand, StreamModel

#: Reference interval length the distinct-tuple target refers to
#: (Figure 4's 10 K configuration).
REFERENCE_INTERVAL = 10_000

#: Strong band sits just above the 1 % threshold.
STRONG_THRESHOLD = 0.01
#: Weak band sits just above the 0.1 % threshold.
WEAK_THRESHOLD = 0.001

#: Safety margins: band bottoms sit 7 % above their threshold so the
#: expected candidate count survives per-interval sampling noise.
_BOTTOM_MARGIN = 1.07
#: The weak band spans [1.07, 2.0] x the 0.1 % threshold.
_WEAK_TOP_FACTOR = 2.0
#: The mid band spans from just under the 1 % threshold down to 2.4 x
#: the 0.1 % threshold -- the frequency continuum between the two
#: thresholds that real programs exhibit.  Mid tuples are what alias
#: into false positives at short intervals (two tuples at ~0.5 % each
#: sharing a counter cross the 1 % threshold together).
_MID_TOP_FACTOR = 0.93
_MID_BOTTOM = 2.4 * WEAK_THRESHOLD

#: Warm-band ceiling: the hottest sub-threshold noise tuple stays at
#: 55 % of the 0.1 % threshold, so warm tuples essentially never cross
#: a candidate threshold at any interval length (the Poisson tail at a
#: 10 K interval is the only residual crossing, as in real programs).
WARM_CAP = 0.55 * WEAK_THRESHOLD

#: Warm-band share spread (top / bottom ratio).
_WARM_SPREAD = 16.0


@dataclass(frozen=True)
class BenchmarkTargets:
    """Observable statistics + character for one benchmark model.

    Attributes
    ----------
    distinct_10k:
        Target distinct tuples in a 10,000-event interval (Figure 4).
    candidates_1pct / candidates_01pct:
        Target candidates over 1 % and over 0.1 % (Figure 5); the
        latter includes the former.
    strong_top_share:
        Share of the hottest tuple (how skewed the top of the
        distribution is; li-like programs are very skewed).
    mid_fraction:
        Fraction of the 0.1 %-only candidates placed in the *mid* band
        spanning the continuum between the two thresholds (the rest sit
        just above 0.1 %).  Mid tuples drive short-interval false
        positives through pairwise aliasing.
    recurring_fraction:
        Fraction of the non-hot distinct budget served by the
        recurring pool rather than fresh tuples.
    num_phases / phase_length / phase_overlap / burstiness:
        Temporal character, driving Figure 6 behaviour.
    """

    name: str
    distinct_10k: int
    candidates_1pct: int
    candidates_01pct: int
    strong_top_share: float = 0.022
    mid_fraction: float = 0.25
    recurring_fraction: float = 0.35
    num_phases: int = 4
    phase_length: int = 1_000_000
    phase_overlap: float = 0.5
    burstiness: float = 0.25
    fresh_pc_count: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.candidates_1pct < 1:
            raise ValueError(f"{self.name}: need at least one 1% candidate")
        if self.candidates_01pct < self.candidates_1pct:
            raise ValueError(
                f"{self.name}: candidates_01pct ({self.candidates_01pct}) "
                f"must include candidates_1pct ({self.candidates_1pct})")
        if self.distinct_10k <= self.candidates_01pct:
            raise ValueError(
                f"{self.name}: distinct_10k ({self.distinct_10k}) must "
                f"exceed the candidate count ({self.candidates_01pct})")
        if not 0.0 <= self.recurring_fraction < 1.0:
            raise ValueError(
                f"{self.name}: recurring_fraction must be in [0, 1), got "
                f"{self.recurring_fraction}")
        if not 0.0 <= self.mid_fraction <= 1.0:
            raise ValueError(
                f"{self.name}: mid_fraction must be in [0, 1], got "
                f"{self.mid_fraction}")


def build_model(targets: BenchmarkTargets,
                kind: EventKind = EventKind.VALUE) -> StreamModel:
    """Construct the stream model meeting *targets*.

    Raises :class:`ValueError` when the targets are infeasible (the hot
    mass implied by the candidate counts leaves too few events per
    reference interval to reach the distinct-tuple target).
    """
    bands = _hot_bands(targets)
    hot_mass = sum(band.mass for band in bands)
    hot_count = sum(band.count for band in bands)
    noise_mass = 1.0 - hot_mass
    noise_distinct = targets.distinct_10k - hot_count
    noise_events = noise_mass * REFERENCE_INTERVAL
    if noise_events < 1.02 * noise_distinct:
        raise ValueError(
            f"{targets.name}: infeasible targets -- the candidate "
            f"structure implies hot mass {hot_mass:.3f}, leaving "
            f"{noise_events:.0f} noise events per {REFERENCE_INTERVAL} "
            f"but {noise_distinct} distinct noise tuples are required")

    warm_band = _solve_warm_band(targets.name, noise_mass,
                                 noise_distinct,
                                 targets.recurring_fraction)
    bursty_slots = None
    if warm_band is not None:
        bursty_slots = sum(band.count for band in bands)
        bands = bands + (warm_band,)

    return StreamModel(
        name=targets.name,
        kind=kind,
        bands=bands,
        recurring_mass=0.0,
        recurring_pool=1,
        bursty_slots=bursty_slots,
        num_phases=targets.num_phases,
        phase_length=targets.phase_length,
        phase_overlap=targets.phase_overlap,
        burstiness=targets.burstiness,
        fresh_pc_count=targets.fresh_pc_count,
        seed=targets.seed,
    )


def _hot_bands(targets: BenchmarkTargets) -> Tuple[HotBand, ...]:
    """Strong band over 1 %, mid band spanning the threshold gap, weak
    band just over 0.1 %."""
    strong_bottom = _BOTTOM_MARGIN * STRONG_THRESHOLD
    strong_top = max(targets.strong_top_share, strong_bottom)
    bands = [HotBand(count=targets.candidates_1pct,
                     top_share=strong_top,
                     bottom_share=strong_bottom)]
    gap_count = targets.candidates_01pct - targets.candidates_1pct
    mid_count = round(targets.mid_fraction * gap_count)
    weak_count = gap_count - mid_count
    if mid_count > 0:
        bands.append(HotBand(count=mid_count,
                             top_share=_MID_TOP_FACTOR * STRONG_THRESHOLD,
                             bottom_share=_MID_BOTTOM))
    if weak_count > 0:
        bands.append(HotBand(count=weak_count,
                             top_share=_WEAK_TOP_FACTOR * WEAK_THRESHOLD,
                             bottom_share=_BOTTOM_MARGIN * WEAK_THRESHOLD))
    return tuple(bands)


def _solve_warm_band(name: str, noise_mass: float, noise_distinct: int,
                     recurring_fraction: float) -> HotBand:
    """Fit the warm (recurring, sub-threshold) band.

    The non-candidate stream splits into *fresh* tuples (never repeat;
    ``recurring_fraction`` of the distinct budget is withheld from
    them) and a *warm band* of recurring tuples whose log-spaced shares
    top out at :data:`WARM_CAP`.  Given the warm band's mass and
    distinct budgets, the band's placement (top share) and width
    (tuple count) are solved by bisection on the predicted distinct
    count at the reference interval.

    Returns ``None`` when the targets leave no warm band (all noise is
    fresh).  Raises :class:`ValueError` when the warm mass per distinct
    tuple is too high to stay under the cap -- the fix is more hot
    (candidate) mass or a larger distinct target.
    """
    warm_distinct = recurring_fraction * noise_distinct
    fresh_mass = (noise_distinct - warm_distinct) / REFERENCE_INTERVAL
    warm_mass = noise_mass - fresh_mass
    if warm_distinct < 1.0 or warm_mass <= 0.0:
        return None

    def predicted_distinct(top_share: float, spread: float) -> float:
        shares = _warm_shares(top_share, warm_mass, spread)
        return float((1.0 - np.exp(-shares * REFERENCE_INTERVAL)).sum())

    floor = 1e-8
    # A wide band is preferred (smoother share continuum); when the
    # warm mass per distinct tuple is high, narrow the band toward the
    # cap so each tuple can absorb more occurrences while staying
    # sub-threshold.
    spread = _WARM_SPREAD
    while (predicted_distinct(WARM_CAP, spread) > warm_distinct
           and spread > 1.05):
        spread = max(1.05, spread / 2.0)
    if predicted_distinct(WARM_CAP, spread) > warm_distinct:
        needed = warm_mass * REFERENCE_INTERVAL / warm_distinct
        raise ValueError(
            f"{name}: warm noise needs ~{needed:.1f} occurrences per "
            f"distinct tuple at the reference interval, which exceeds "
            f"the sub-threshold cap; raise the candidate mass "
            f"(strong_top_share / mid_fraction), the "
            f"recurring_fraction, or the distinct_10k target")
    if predicted_distinct(floor, spread) < warm_distinct:
        raise ValueError(
            f"{name}: not enough warm mass ({warm_mass:.3f}) to "
            f"produce {warm_distinct:.0f} distinct recurring tuples")
    low, high = floor, WARM_CAP
    for _ in range(60):
        middle = math.sqrt(low * high)
        if predicted_distinct(middle, spread) > warm_distinct:
            low = middle
        else:
            high = middle
    top_share = high
    count = len(_warm_shares(top_share, warm_mass, spread))
    return HotBand(count=count, top_share=top_share,
                   bottom_share=top_share / spread)


def _warm_shares(top_share: float, warm_mass: float,
                 spread: float) -> np.ndarray:
    """Log-spaced warm shares of total mass *warm_mass* under
    *top_share*."""
    mean_share = (top_share * (1.0 - 1.0 / spread) / math.log(spread))
    count = max(1, round(warm_mass / mean_share))
    return np.geomspace(top_share, top_share / spread, count)


def expected_distinct(model: StreamModel, interval_length: int) -> float:
    """Expected distinct tuples in one interval (calibration check).

    Hot tuples count when at least one occurrence is expected
    (``1 - exp(-share * L)`` each); the recurring pool contributes the
    classic occupancy expectation; fresh tuples are all distinct.
    """
    shares = model.hot_shares
    hot = float((1.0 - np.exp(-shares * interval_length)).sum())
    recurring = 0.0
    if model.recurring_mass > 0 and model.recurring_pool > 0:
        draws = model.recurring_mass * interval_length
        pool = model.recurring_pool
        recurring = pool * (1.0 - math.exp(-draws / pool))
    fresh = model.fresh_mass * interval_length
    return hot + recurring + fresh


def expected_candidates(model: StreamModel, threshold: float) -> int:
    """Expected candidate-tuple count at *threshold* (Figure 5 check)."""
    return model.candidates_at(threshold)
