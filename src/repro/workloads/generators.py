"""Synthetic profiling-event stream generators.

The paper's evaluation is driven by ATOM traces of SPEC and C++
programs.  Section 5.6.1 identifies what actually determines profiler
accuracy: (1) the number of distinct tuples per interval, (2) the
number of candidate tuples over the threshold, and (3) how candidates
vary between intervals (Figures 4-6).  The generators here synthesize
streams with exactly those properties under direct control, via four
tuple populations:

* **hot bands** -- a small set of tuples with per-tuple stream shares
  laid out on a log scale between configurable bounds.  Bands above the
  candidate threshold produce the candidates of Figure 5; their share
  layout fixes how many cross 1 % and 0.1 %.
* **recurring pool** -- a fixed population sampled uniformly; with
  draws >> pool size it models a warm working set (sub-threshold but
  repeating), with draws << pool it adds slowly-revisited noise.
* **fresh tuples** -- never-repeating tuples (a load PC reading
  ever-new values), which make the distinct-tuple count grow
  proportionally with interval length, as the paper observes.
* **phases** -- the hot set is rotated every ``phase_length`` events
  with configurable overlap, producing the inter-interval candidate
  variation of Figure 6; **burstiness** clusters a hot tuple's
  occurrences into runs, which destabilizes short intervals (the
  m88ksim/vortex behaviour) without affecting long ones.

Generation is vectorized with numpy and fully deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..core.tuples import EventKind, ProfileTuple

#: PC-space bases keeping the three populations disjoint.
HOT_PC_BASE = 0x4_0000_0000
RECURRING_PC_BASE = 0x5_0000_0000
FRESH_PC_BASE = 0x6_0000_0000

#: Events generated per vectorized chunk.
DEFAULT_CHUNK = 1 << 16


@dataclass(frozen=True)
class HotBand:
    """A band of hot tuples with log-spaced stream shares.

    ``count`` tuples receive shares spaced geometrically from
    ``top_share`` down to ``bottom_share`` (inclusive).  A band whose
    bottom share sits just above the candidate threshold contributes
    exactly ``count`` candidates in expectation.
    """

    count: int
    top_share: float
    bottom_share: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"band count must be >= 1, got {self.count}")
        if not 0 < self.bottom_share <= self.top_share < 1:
            raise ValueError(
                f"need 0 < bottom_share <= top_share < 1, got "
                f"{self.bottom_share} / {self.top_share}")

    def shares(self) -> np.ndarray:
        """Per-tuple shares, descending."""
        if self.count == 1:
            return np.array([self.top_share])
        return np.geomspace(self.top_share, self.bottom_share, self.count)

    @property
    def mass(self) -> float:
        """Total stream share of the band."""
        return float(self.shares().sum())


@dataclass(frozen=True)
class StreamModel:
    """Full specification of one benchmark's tuple stream.

    ``recurring_mass`` and the derived fresh mass
    (``1 - hot - recurring``) partition the non-hot stream.  Phase
    ``p`` uses hot-tuple identities ``(p * shift + i) mod universe``
    where ``shift = round(hot_count * (1 - phase_overlap))``, so
    consecutive phases share ``phase_overlap`` of their hot set and the
    schedule cycles through ``num_phases`` phases forever.
    """

    name: str
    kind: EventKind
    bands: Tuple[HotBand, ...]
    recurring_mass: float
    recurring_pool: int
    num_phases: int = 1
    phase_length: int = 1_000_000
    phase_overlap: float = 0.5
    #: Geometric drift of the phase length: phase ``k`` lasts roughly
    #: ``phase_length * phase_drift**k`` events (clamped to a factor of
    #: 16 either way so the boundary schedule stays bounded).  ``1.0``
    #: keeps the paper-style fixed-length phases; values above 1 model
    #: a working set whose turnover slows relative to the profiling
    #: interval, values below 1 one that speeds up -- the
    #: "interval-length drift" scenario knob.
    phase_drift: float = 1.0
    burstiness: float = 0.0
    #: Bursts apply only to the first this-many hot slots (``None`` =
    #: all).  The solver points this at the candidate bands so the warm
    #: sub-threshold band keeps Poisson statistics -- burst-clustered
    #: warm tuples would spuriously cross low thresholds in short
    #: intervals.
    bursty_slots: Optional[int] = None
    fresh_pc_count: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.bands:
            raise ValueError("at least one hot band is required")
        if not 0.0 <= self.recurring_mass < 1.0:
            raise ValueError(f"recurring_mass must be in [0, 1), got "
                             f"{self.recurring_mass}")
        if self.recurring_mass > 0 and self.recurring_pool < 1:
            raise ValueError("recurring_pool must be >= 1 when "
                             "recurring_mass > 0")
        if self.fresh_mass < 0:
            raise ValueError(
                f"populations overcommit the stream: hot {self.hot_mass:.3f}"
                f" + recurring {self.recurring_mass:.3f} > 1")
        if self.num_phases < 1:
            raise ValueError(f"num_phases must be >= 1, got "
                             f"{self.num_phases}")
        if self.phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got "
                             f"{self.phase_length}")
        if not 0.0 <= self.phase_overlap <= 1.0:
            raise ValueError(f"phase_overlap must be in [0, 1], got "
                             f"{self.phase_overlap}")
        if not 0.0 < self.phase_drift:
            raise ValueError(f"phase_drift must be positive, got "
                             f"{self.phase_drift}")
        if not 0.0 <= self.burstiness < 1.0:
            raise ValueError(f"burstiness must be in [0, 1), got "
                             f"{self.burstiness}")

    @property
    def hot_shares(self) -> np.ndarray:
        """Concatenated per-tuple shares of all bands, descending."""
        return np.concatenate([band.shares() for band in self.bands])

    @property
    def hot_count(self) -> int:
        """Hot tuples active in any single phase."""
        return sum(band.count for band in self.bands)

    @property
    def hot_mass(self) -> float:
        """Stream fraction drawn from the hot set."""
        return float(self.hot_shares.sum())

    @property
    def fresh_mass(self) -> float:
        """Stream fraction that is never-repeating tuples."""
        return 1.0 - self.hot_mass - self.recurring_mass

    def band_rotation(self, band: "HotBand") -> Tuple[int, int]:
        """Per-phase identity ``(shift, universe)`` for one band.

        Each band rotates independently so that consecutive phases
        share ``phase_overlap`` of *that band's* tuples -- a candidate
        stays a candidate across a phase boundary with probability
        ``phase_overlap`` regardless of how large the sub-threshold
        bands are.
        """
        if self.num_phases == 1:
            return 0, band.count
        shift = max(1, round(band.count * (1.0 - self.phase_overlap)))
        return shift, max(band.count + 1, shift * self.num_phases)

    @property
    def hot_universe(self) -> int:
        """Total distinct hot identities across the phase cycle."""
        return sum(self.band_rotation(band)[1] for band in self.bands)

    def candidates_at(self, threshold: float) -> int:
        """Expected candidates per interval at *threshold* (a fraction)."""
        return int((self.hot_shares >= threshold).sum())


def _build_phase_identities(model: StreamModel) -> np.ndarray:
    """Slot -> global identity per phase, rotating bands independently.

    Band ``b`` occupies its own identity range; within it, phase ``p``
    maps the band's slots to ``(p * shift_b + i) mod universe_b``.
    """
    table = np.empty((model.num_phases, model.hot_count), dtype=np.int64)
    slot_base = 0
    identity_base = 0
    for band in model.bands:
        shift, universe = model.band_rotation(band)
        offsets = np.arange(band.count, dtype=np.int64)
        for phase in range(model.num_phases):
            table[phase, slot_base:slot_base + band.count] = (
                identity_base + (phase * shift + offsets) % universe)
        slot_base += band.count
        identity_base += universe
    return table


def _mix64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized (derives tuple values from ids)."""
    x = values.astype(np.uint64)
    x = (x + np.uint64(0x9E3779B97F4A7C15))
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


class TupleStreamGenerator:
    """Deterministic event-stream generator for one :class:`StreamModel`.

    The generator is stateful (absolute stream position, fresh-tuple
    counter, burst carry-over) so repeated :meth:`chunk` calls produce
    one continuous stream.  Two generators built from the same model
    and seed produce identical streams.
    """

    def __init__(self, model: StreamModel, seed: int | None = None) -> None:
        self.model = model
        self.seed = model.seed if seed is None else seed
        self._rng = np.random.default_rng(self.seed)
        shares = model.hot_shares
        self._hot_probabilities = shares / shares.sum()
        self._hot_mass = model.hot_mass
        self._recurring_mass = model.recurring_mass
        self._position = 0
        self._fresh_counter = 0
        self._burst_carry: int | None = None
        # Drifting-phase boundary schedule, extended lazily (only used
        # when phase_drift != 1; the fixed-length path stays modulo
        # arithmetic, bit-identical to the pre-drift generator).
        self._phase_boundaries: list[int] = [0]
        # Per-phase slot -> identity map, rotating each band
        # independently (see StreamModel.band_rotation).
        self._phase_identities = _build_phase_identities(model)
        # Hot identity -> (pc, value).  Several hot values share a PC
        # (a hot load PC usually has a handful of hot values), so the
        # PC space is a quarter of the identity space.
        universe = model.hot_universe
        identities = np.arange(universe, dtype=np.uint64)
        pc_modulus = max(1, universe // 4)
        self._hot_pcs = (np.uint64(HOT_PC_BASE)
                         + np.uint64(8) * (identities % np.uint64(pc_modulus)))
        self._hot_values = _mix64(identities)

    def reset(self) -> None:
        """Rewind to the start of the stream."""
        self._rng = np.random.default_rng(self.seed)
        self._position = 0
        self._fresh_counter = 0
        self._burst_carry = None

    def chunk(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Generate the next *count* events as ``(pcs, values)`` arrays."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        model = self.model
        rng = self._rng
        pcs = np.empty(count, dtype=np.uint64)
        values = np.empty(count, dtype=np.uint64)

        u = rng.random(count)
        hot_mask = u < self._hot_mass
        recurring_mask = (~hot_mask
                          & (u < self._hot_mass + self._recurring_mass))
        fresh_mask = ~hot_mask & ~recurring_mask

        self._fill_hot(pcs, values, hot_mask)
        self._fill_recurring(pcs, values, recurring_mask)
        self._fill_fresh(pcs, values, fresh_mask)

        self._position += count
        return pcs, values

    def _fill_hot(self, pcs: np.ndarray, values: np.ndarray,
                  mask: np.ndarray) -> None:
        count = int(mask.sum())
        if not count:
            return
        model = self.model
        rng = self._rng
        slots = rng.choice(len(self._hot_probabilities), size=count,
                           p=self._hot_probabilities)
        if model.burstiness > 0.0:
            slots = self._apply_bursts(slots)
        if model.num_phases > 1:
            positions = self._position + np.nonzero(mask)[0]
            phases = self._phase_of(positions)
            identities = self._phase_identities[phases, slots]
        else:
            identities = self._phase_identities[0, slots]
        pcs[mask] = self._hot_pcs[identities]
        values[mask] = self._hot_values[identities]

    def _phase_of(self, positions: np.ndarray) -> np.ndarray:
        """Phase index of each absolute stream position.

        Fixed-length phases reduce to modulo arithmetic; with
        ``phase_drift != 1`` the k-th phase lasts
        ``clamp(phase_length * drift**k)`` events and positions are
        located by bisecting the (lazily extended) boundary schedule.
        """
        model = self.model
        if model.phase_drift == 1.0:
            return (positions // model.phase_length) % model.num_phases
        top = int(positions.max())
        boundaries = self._phase_boundaries
        while boundaries[-1] <= top:
            ordinal = len(boundaries) - 1
            length = model.phase_length * (model.phase_drift ** ordinal)
            length = min(max(length, model.phase_length / 16, 1.0),
                         model.phase_length * 16.0)
            boundaries.append(boundaries[-1] + max(1, int(length)))
        schedule = np.asarray(boundaries, dtype=np.int64)
        ordinals = np.searchsorted(schedule, positions, side="right") - 1
        return ordinals % model.num_phases

    def _apply_bursts(self, slots: np.ndarray) -> np.ndarray:
        """Cluster hot draws into geometric runs (carrying across chunks).

        Only slots below the model's ``bursty_slots`` limit are
        clustered; draws above it (the warm band) pass through with
        their original independent statistics.
        """
        rng = self._rng
        repeat = rng.random(len(slots)) < self.model.burstiness
        if self._burst_carry is None:
            repeat[0] = False
        elif repeat[0]:
            slots[0] = self._burst_carry
            repeat[0] = False
        source = np.where(repeat, 0, np.arange(len(slots)))
        np.maximum.accumulate(source, out=source)
        clustered = slots[source]
        limit = self.model.bursty_slots
        if limit is not None:
            # A warm draw keeps its independent value, and a run led by
            # a warm tuple must not replicate it -- either way the
            # position falls back to its own iid draw.
            exempt = (slots >= limit) | (clustered >= limit)
            clustered = np.where(exempt, slots, clustered)
        self._burst_carry = int(clustered[-1])
        return clustered

    def _fill_recurring(self, pcs: np.ndarray, values: np.ndarray,
                        mask: np.ndarray) -> None:
        count = int(mask.sum())
        if not count:
            return
        identities = self._rng.integers(self.model.recurring_pool,
                                        size=count).astype(np.uint64)
        pcs[mask] = np.uint64(RECURRING_PC_BASE) + np.uint64(8) * identities
        values[mask] = _mix64(identities + np.uint64(1 << 32))

    def _fill_fresh(self, pcs: np.ndarray, values: np.ndarray,
                    mask: np.ndarray) -> None:
        count = int(mask.sum())
        if not count:
            return
        model = self.model
        pc_choice = self._rng.integers(model.fresh_pc_count,
                                       size=count).astype(np.uint64)
        pcs[mask] = np.uint64(FRESH_PC_BASE) + np.uint64(8) * pc_choice
        # Unique values, but well mixed: raw sequential counters would
        # make every fresh tuple differ only in its low byte, which the
        # paper's per-byte randomize hash maps onto a tiny orbit of
        # table indices -- an artifact of the synthetic encoding, not
        # of real fresh values (pointers, hashes, varying data).
        ordinals = (np.uint64(self._fresh_counter)
                    + np.arange(count, dtype=np.uint64))
        values[mask] = _mix64(ordinals + np.uint64(1 << 33))
        self._fresh_counter += count

    def events(self, count: int,
               chunk_size: int = DEFAULT_CHUNK) -> Iterator[ProfileTuple]:
        """Yield the next *count* events as Python ``(pc, value)`` tuples."""
        remaining = count
        while remaining > 0:
            size = min(remaining, chunk_size)
            pcs, values = self.chunk(size)
            yield from zip(pcs.tolist(), values.tolist())
            remaining -= size

    def intervals(self, interval_length: int,
                  num_intervals: int) -> Iterator[ProfileTuple]:
        """Yield exactly ``interval_length * num_intervals`` events."""
        return self.events(interval_length * num_intervals)
