"""The paper's eight benchmark workloads as calibrated stream models.

The evaluation uses five SPEC programs (go, li, m88ksim from SPEC95;
gcc, vortex from SPEC2000) and three C++ programs (deltablue, sis,
burg), traced for 500 M instructions.  Each is modelled here by a
:class:`~repro.workloads.solver.BenchmarkTargets` record whose numbers
are read off the paper's own characterization:

* ``distinct_10k`` from Figure 4 (distinct tuples in a 10 K interval;
  gcc and go largest, li and m88ksim smallest);
* ``candidates_1pct`` / ``candidates_01pct`` from Figure 5;
* temporal character from Figure 6 -- deltablue has long coarse phases
  (high candidate variation at 1 M intervals, low at 10 K), while
  m88ksim and vortex are bursty with long stable phases (variation at
  10 K, stability at 1 M);
* Section 6.3 notes gcc and go have "the largest number of unique
  tuples", which is why they stress the hash tables hardest.

Edge-profiling models (Figure 14) see far fewer distinct tuples --
branch edges are a static population -- so their targets shrink the
distinct count and nearly eliminate fresh tuples.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..core.config import IntervalSpec
from ..core.tuples import EventKind, ProfileTuple
from .generators import StreamModel, TupleStreamGenerator
from .solver import BenchmarkTargets, build_model

#: Benchmark order used by every figure.
BENCHMARK_NAMES = ("burg", "deltablue", "gcc", "go", "li", "m88ksim",
                   "sis", "vortex")

#: Value-profiling targets (Figures 4-6 characterization).
VALUE_TARGETS: Dict[str, BenchmarkTargets] = {
    "burg": BenchmarkTargets(
        name="burg", distinct_10k=2000,
        candidates_1pct=14, candidates_01pct=70,
        strong_top_share=0.030, recurring_fraction=0.40,
        num_phases=4, phase_length=600_000, phase_overlap=0.50,
        burstiness=0.30, mid_fraction=0.6, seed=101),
    "deltablue": BenchmarkTargets(
        name="deltablue", distinct_10k=2500,
        candidates_1pct=12, candidates_01pct=80,
        strong_top_share=0.034, recurring_fraction=0.35,
        # Large-scale phase behaviour: high candidate variation at 1 M
        # intervals, little at 10 K (Figure 6 discussion).
        num_phases=6, phase_length=1_500_000, phase_overlap=0.15,
        burstiness=0.20, seed=102),
    "gcc": BenchmarkTargets(
        name="gcc", distinct_10k=4300,
        candidates_1pct=20, candidates_01pct=150,
        strong_top_share=0.016, recurring_fraction=0.12,
        num_phases=8, phase_length=1_500_000, phase_overlap=0.75,
        burstiness=0.20, seed=103),
    "go": BenchmarkTargets(
        name="go", distinct_10k=4200,
        candidates_1pct=22, candidates_01pct=150,
        strong_top_share=0.015, recurring_fraction=0.10,
        num_phases=8, phase_length=1_800_000, phase_overlap=0.70,
        burstiness=0.20, seed=104),
    "li": BenchmarkTargets(
        name="li", distinct_10k=1000,
        candidates_1pct=10, candidates_01pct=45,
        strong_top_share=0.11, recurring_fraction=0.8,
        num_phases=3, phase_length=1_200_000, phase_overlap=0.60,
        burstiness=0.30, mid_fraction=1.0, seed=105),
    "m88ksim": BenchmarkTargets(
        name="m88ksim", distinct_10k=1400,
        candidates_1pct=12, candidates_01pct=55,
        strong_top_share=0.045, recurring_fraction=0.7,
        # Bursty with very long stable phases: candidates fluctuate at
        # 10 K but are stable at 1 M (Figure 6 discussion).
        num_phases=2, phase_length=6_000_000, phase_overlap=0.70,
        burstiness=0.85, mid_fraction=0.8, seed=106),
    "sis": BenchmarkTargets(
        name="sis", distinct_10k=3000,
        candidates_1pct=15, candidates_01pct=90,
        strong_top_share=0.026, recurring_fraction=0.30,
        num_phases=5, phase_length=900_000, phase_overlap=0.45,
        burstiness=0.30, seed=107),
    "vortex": BenchmarkTargets(
        name="vortex", distinct_10k=2200,
        candidates_1pct=14, candidates_01pct=75,
        strong_top_share=0.030, recurring_fraction=0.40,
        num_phases=3, phase_length=5_000_000, phase_overlap=0.60,
        burstiness=0.80, mid_fraction=0.4, seed=108),
}

#: Edge-profiling targets: "the edge profiler will see fewer distinct
#: tuples than value profiling" (Section 6.4.2).  Branch edges are a
#: static population, so fresh tuples all but vanish.
EDGE_TARGETS: Dict[str, BenchmarkTargets] = {
    "burg": BenchmarkTargets(
        name="burg", distinct_10k=600,
        candidates_1pct=12, candidates_01pct=55,
        strong_top_share=0.12, recurring_fraction=0.92,
        num_phases=4, phase_length=600_000, phase_overlap=0.50,
        burstiness=0.30, mid_fraction=0.8, seed=201),
    "deltablue": BenchmarkTargets(
        name="deltablue", distinct_10k=500,
        candidates_1pct=10, candidates_01pct=60,
        strong_top_share=0.15, recurring_fraction=0.92,
        num_phases=6, phase_length=1_500_000, phase_overlap=0.15,
        burstiness=0.20, mid_fraction=1.0, seed=202),
    "gcc": BenchmarkTargets(
        name="gcc", distinct_10k=1800,
        candidates_1pct=18, candidates_01pct=120,
        strong_top_share=0.020, recurring_fraction=0.85,
        num_phases=8, phase_length=1_500_000, phase_overlap=0.55,
        burstiness=0.20, seed=203),
    "go": BenchmarkTargets(
        name="go", distinct_10k=2000,
        candidates_1pct=20, candidates_01pct=125,
        strong_top_share=0.018, recurring_fraction=0.85,
        num_phases=8, phase_length=1_800_000, phase_overlap=0.45,
        burstiness=0.20, seed=204),
    "li": BenchmarkTargets(
        name="li", distinct_10k=260,
        candidates_1pct=8, candidates_01pct=35,
        strong_top_share=0.3, recurring_fraction=0.92,
        num_phases=3, phase_length=1_200_000, phase_overlap=0.60,
        burstiness=0.30, mid_fraction=0.8, seed=205),
    "m88ksim": BenchmarkTargets(
        name="m88ksim", distinct_10k=350,
        candidates_1pct=10, candidates_01pct=40,
        strong_top_share=0.2, recurring_fraction=0.92,
        num_phases=2, phase_length=6_000_000, phase_overlap=0.70,
        burstiness=0.85, mid_fraction=1.0, seed=206),
    "sis": BenchmarkTargets(
        name="sis", distinct_10k=900,
        candidates_1pct=13, candidates_01pct=70,
        strong_top_share=0.04, recurring_fraction=0.95,
        num_phases=5, phase_length=900_000, phase_overlap=0.45,
        burstiness=0.30, mid_fraction=1.0, seed=207),
    "vortex": BenchmarkTargets(
        name="vortex", distinct_10k=700,
        candidates_1pct=12, candidates_01pct=60,
        strong_top_share=0.08, recurring_fraction=0.95,
        num_phases=3, phase_length=5_000_000, phase_overlap=0.60,
        burstiness=0.80, mid_fraction=1.0, seed=208),
}

_TARGETS_BY_KIND = {
    EventKind.VALUE: VALUE_TARGETS,
    EventKind.EDGE: EDGE_TARGETS,
}


def benchmark_targets(name: str,
                      kind: EventKind = EventKind.VALUE
                      ) -> BenchmarkTargets:
    """Targets for one benchmark, failing with the known names listed."""
    try:
        targets = _TARGETS_BY_KIND[kind]
    except KeyError:
        raise ValueError(f"no benchmark models for event kind {kind!r}; "
                         f"available: value, edge") from None
    try:
        return targets[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; available: "
                         f"{', '.join(BENCHMARK_NAMES)}") from None


def benchmark_model(name: str,
                    kind: EventKind = EventKind.VALUE) -> StreamModel:
    """The calibrated stream model for one benchmark."""
    return build_model(benchmark_targets(name, kind), kind=kind)


def benchmark_generator(name: str, kind: EventKind = EventKind.VALUE,
                        seed: Optional[int] = None) -> TupleStreamGenerator:
    """A fresh, rewound generator for one benchmark's stream."""
    return TupleStreamGenerator(benchmark_model(name, kind), seed=seed)


def benchmark_stream(name: str, interval: IntervalSpec,
                     num_intervals: int,
                     kind: EventKind = EventKind.VALUE,
                     seed: Optional[int] = None) -> Iterator[ProfileTuple]:
    """Event stream of exactly *num_intervals* whole intervals."""
    generator = benchmark_generator(name, kind, seed)
    return generator.intervals(interval.length, num_intervals)


def all_models(kind: EventKind = EventKind.VALUE) -> List[StreamModel]:
    """Models for every benchmark, in the figures' order."""
    return [benchmark_model(name, kind) for name in BENCHMARK_NAMES]
