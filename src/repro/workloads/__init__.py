"""Workload substrate: calibrated benchmark streams and traces."""

from .benchmarks import (BENCHMARK_NAMES, EDGE_TARGETS, VALUE_TARGETS,
                         all_models, benchmark_generator, benchmark_model,
                         benchmark_stream, benchmark_targets)
from .generators import HotBand, StreamModel, TupleStreamGenerator
from .scenarios import (ScenarioConfig, ScenarioStream, dump_scenario,
                        list_presets, load_scenario, load_scenario_text,
                        write_jsonl)
from .solver import (BenchmarkTargets, build_model, expected_candidates,
                     expected_distinct)
from .trace_store import ScenarioKey, TraceStore, default_cache_dir
from .traces import Trace, load_trace, record, save_trace

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkTargets",
    "EDGE_TARGETS",
    "HotBand",
    "ScenarioConfig",
    "ScenarioKey",
    "ScenarioStream",
    "StreamModel",
    "Trace",
    "TraceStore",
    "TupleStreamGenerator",
    "VALUE_TARGETS",
    "all_models",
    "benchmark_generator",
    "benchmark_model",
    "benchmark_stream",
    "benchmark_targets",
    "build_model",
    "default_cache_dir",
    "dump_scenario",
    "expected_candidates",
    "expected_distinct",
    "list_presets",
    "load_scenario",
    "load_scenario_text",
    "load_trace",
    "record",
    "save_trace",
    "write_jsonl",
]
