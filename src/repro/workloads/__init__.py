"""Workload substrate: calibrated benchmark streams and traces."""

from .benchmarks import (BENCHMARK_NAMES, EDGE_TARGETS, VALUE_TARGETS,
                         all_models, benchmark_generator, benchmark_model,
                         benchmark_stream, benchmark_targets)
from .generators import HotBand, StreamModel, TupleStreamGenerator
from .solver import (BenchmarkTargets, build_model, expected_candidates,
                     expected_distinct)
from .trace_store import TraceStore, default_cache_dir
from .traces import Trace, load_trace, record, save_trace

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkTargets",
    "EDGE_TARGETS",
    "HotBand",
    "StreamModel",
    "Trace",
    "TraceStore",
    "TupleStreamGenerator",
    "VALUE_TARGETS",
    "all_models",
    "benchmark_generator",
    "benchmark_model",
    "benchmark_stream",
    "benchmark_targets",
    "build_model",
    "default_cache_dir",
    "expected_candidates",
    "expected_distinct",
    "load_trace",
    "record",
    "save_trace",
]
