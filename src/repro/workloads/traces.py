"""Trace record and replay.

The paper profiles fixed 500 M-instruction ATOM traces, so every
profiler configuration sees the *same* event stream.  Our generators
are deterministic per seed, which gives the same property, but traces
are still useful: simulator runs (:mod:`repro.simulator`) are much
slower than statistical generation, so their event streams are recorded
once and replayed into every profiler configuration.

Format: numpy ``.npz`` with two ``uint64`` arrays (``pcs``, ``values``)
plus a metadata array carrying the event kind and source name.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..core.tuples import EventKind, ProfileTuple

#: Events per ``np.fromiter`` batch when materializing a stream.
RECORD_CHUNK = 1 << 16

#: Structured pair dtype used to pull ``(pc, value)`` tuples straight
#: into parallel uint64 columns without intermediate Python lists.
_EVENT_DTYPE = np.dtype([("p", np.uint64), ("v", np.uint64)])


@dataclass
class Trace:
    """An in-memory event trace: parallel PC/value arrays plus metadata."""

    pcs: np.ndarray
    values: np.ndarray
    kind: EventKind = EventKind.VALUE
    source: str = ""

    def __post_init__(self) -> None:
        if self.pcs.shape != self.values.shape:
            raise ValueError(
                f"pcs and values must have the same shape, got "
                f"{self.pcs.shape} vs {self.values.shape}")
        if self.pcs.ndim != 1:
            raise ValueError(f"trace arrays must be 1-D, got "
                             f"{self.pcs.ndim} dimensions")
        self.pcs = self.pcs.astype(np.uint64, copy=False)
        self.values = self.values.astype(np.uint64, copy=False)

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    def events(self) -> Iterator[ProfileTuple]:
        """Replay the trace as Python tuples."""
        return iter(zip(self.pcs.tolist(), self.values.tolist()))

    def __iter__(self) -> Iterator[ProfileTuple]:
        return self.events()

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace (for fast-forward / interval-window studies)."""
        return Trace(pcs=self.pcs[start:stop],
                     values=self.values[start:stop],
                     kind=self.kind, source=self.source)


def record(events: Iterable[ProfileTuple],
           kind: EventKind = EventKind.VALUE,
           source: str = "") -> Trace:
    """Materialize an event stream into a trace.

    Events are consumed in :data:`RECORD_CHUNK`-sized ``np.fromiter``
    batches -- this is the hot path of trace materialization, and
    per-event list appends made it the dominant cost for long streams.
    """
    iterator = iter(events)
    chunks = []
    while True:
        chunk = np.fromiter(itertools.islice(iterator, RECORD_CHUNK),
                            dtype=_EVENT_DTYPE)
        if chunk.size:
            chunks.append(chunk)
        if chunk.size < RECORD_CHUNK:
            break
    if not chunks:
        empty = np.empty(0, dtype=np.uint64)
        return Trace(pcs=empty, values=empty.copy(), kind=kind,
                     source=source)
    packed = (chunks[0] if len(chunks) == 1
              else np.concatenate(chunks))
    return Trace(pcs=np.ascontiguousarray(packed["p"]),
                 values=np.ascontiguousarray(packed["v"]),
                 kind=kind, source=source)


def save_trace(trace: Trace, path: str) -> None:
    """Write *trace* to an ``.npz`` file (parent directory must exist)."""
    np.savez_compressed(path,
                        pcs=trace.pcs,
                        values=trace.values,
                        kind=np.array([trace.kind.value]),
                        source=np.array([trace.source]))


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        return Trace(pcs=data["pcs"],
                     values=data["values"],
                     kind=EventKind(str(data["kind"][0])),
                     source=str(data["source"][0]))
