"""Trace record and replay.

The paper profiles fixed 500 M-instruction ATOM traces, so every
profiler configuration sees the *same* event stream.  Our generators
are deterministic per seed, which gives the same property, but traces
are still useful: simulator runs (:mod:`repro.simulator`) are much
slower than statistical generation, so their event streams are recorded
once and replayed into every profiler configuration.

Format: numpy ``.npz`` with two ``uint64`` arrays (``pcs``, ``values``)
plus a metadata array carrying the event kind and source name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List

import numpy as np

from ..core.tuples import EventKind, ProfileTuple


@dataclass
class Trace:
    """An in-memory event trace: parallel PC/value arrays plus metadata."""

    pcs: np.ndarray
    values: np.ndarray
    kind: EventKind = EventKind.VALUE
    source: str = ""

    def __post_init__(self) -> None:
        if self.pcs.shape != self.values.shape:
            raise ValueError(
                f"pcs and values must have the same shape, got "
                f"{self.pcs.shape} vs {self.values.shape}")
        if self.pcs.ndim != 1:
            raise ValueError(f"trace arrays must be 1-D, got "
                             f"{self.pcs.ndim} dimensions")
        self.pcs = self.pcs.astype(np.uint64, copy=False)
        self.values = self.values.astype(np.uint64, copy=False)

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    def events(self) -> Iterator[ProfileTuple]:
        """Replay the trace as Python tuples."""
        return iter(zip(self.pcs.tolist(), self.values.tolist()))

    def __iter__(self) -> Iterator[ProfileTuple]:
        return self.events()

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace (for fast-forward / interval-window studies)."""
        return Trace(pcs=self.pcs[start:stop],
                     values=self.values[start:stop],
                     kind=self.kind, source=self.source)


def record(events: Iterable[ProfileTuple],
           kind: EventKind = EventKind.VALUE,
           source: str = "") -> Trace:
    """Materialize an event stream into a trace."""
    pcs: List[int] = []
    values: List[int] = []
    for pc, value in events:
        pcs.append(pc)
        values.append(value)
    return Trace(pcs=np.array(pcs, dtype=np.uint64),
                 values=np.array(values, dtype=np.uint64),
                 kind=kind, source=source)


def save_trace(trace: Trace, path: str) -> None:
    """Write *trace* to an ``.npz`` file (parent directory must exist)."""
    np.savez_compressed(path,
                        pcs=trace.pcs,
                        values=trace.values,
                        kind=np.array([trace.kind.value]),
                        source=np.array([trace.source]))


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        return Trace(pcs=data["pcs"],
                     values=data["values"],
                     kind=EventKind(str(data["kind"][0])),
                     source=str(data["source"][0]))
