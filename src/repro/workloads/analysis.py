"""Perfect-profile stream statistics (Figures 4-6).

These analyses characterize workloads independently of any hardware
profiler, using exact per-interval counting:

* distinct tuples per interval (Figure 4),
* candidate tuples over a threshold per interval (Figure 5),
* percentage change of the candidate set between consecutive intervals
  (Figure 6).

Counting is vectorized (one ``numpy.unique`` per interval), so the
1 M-event intervals of the paper are practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..core.tuples import ProfileTuple
from .generators import TupleStreamGenerator

_PAIR_DTYPE = np.dtype([("p", np.uint64), ("v", np.uint64)])

#: Chunk size for interval assembly.
_CHUNK = 1 << 16


@dataclass
class IntervalStatistics:
    """Per-interval stream statistics for one configuration.

    ``candidate_sets`` maps each analyzed threshold to the per-interval
    sets of candidate tuples (kept for variation analysis);
    ``candidate_counts`` are their sizes.
    """

    interval_length: int
    distinct: List[int]
    candidate_counts: Dict[float, List[int]]
    candidate_sets: Dict[float, List[Set[ProfileTuple]]]

    @property
    def num_intervals(self) -> int:
        return len(self.distinct)

    def mean_distinct(self) -> float:
        """Average distinct tuples per interval (a Figure 4 bar)."""
        if not self.distinct:
            return 0.0
        return sum(self.distinct) / len(self.distinct)

    def mean_candidates(self, threshold: float) -> float:
        """Average candidate count per interval (a Figure 5 bar)."""
        counts = self.candidate_counts[threshold]
        if not counts:
            return 0.0
        return sum(counts) / len(counts)


def interval_statistics(generator: TupleStreamGenerator,
                        interval_length: int,
                        num_intervals: int,
                        thresholds: Sequence[float] = (0.01, 0.001)
                        ) -> IntervalStatistics:
    """Measure *num_intervals* intervals of *generator*'s stream."""
    if interval_length <= 0:
        raise ValueError(f"interval_length must be positive, got "
                         f"{interval_length}")
    if num_intervals <= 0:
        raise ValueError(f"num_intervals must be positive, got "
                         f"{num_intervals}")
    distinct: List[int] = []
    candidate_counts: Dict[float, List[int]] = {t: [] for t in thresholds}
    candidate_sets: Dict[float, List[Set[ProfileTuple]]] = {
        t: [] for t in thresholds}
    for _ in range(num_intervals):
        unique, counts = _count_interval(generator, interval_length)
        distinct.append(len(unique))
        for threshold in thresholds:
            needed = max(1, int(np.ceil(threshold * interval_length)))
            over = counts >= needed
            candidates = {(int(pair["p"]), int(pair["v"]))
                          for pair in unique[over]}
            candidate_counts[threshold].append(len(candidates))
            candidate_sets[threshold].append(candidates)
    return IntervalStatistics(interval_length=interval_length,
                              distinct=distinct,
                              candidate_counts=candidate_counts,
                              candidate_sets=candidate_sets)


def _count_interval(generator: TupleStreamGenerator,
                    interval_length: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
    structured = np.empty(interval_length, dtype=_PAIR_DTYPE)
    cursor = 0
    while cursor < interval_length:
        take = min(_CHUNK, interval_length - cursor)
        pcs, values = generator.chunk(take)
        structured["p"][cursor:cursor + take] = pcs
        structured["v"][cursor:cursor + take] = values
        cursor += take
    return np.unique(structured, return_counts=True)


def candidate_variation(candidate_sets: Sequence[Set[ProfileTuple]]
                        ) -> List[float]:
    """Percent change of the candidate set between consecutive intervals.

    The change between intervals ``i-1`` and ``i`` is the symmetric
    difference relative to the union, in percent (0 = identical sets,
    100 = disjoint sets) -- the quantity whose distribution Figure 6
    plots.  An empty pair of sets counts as 0 % change.
    """
    variations: List[float] = []
    for previous, current in zip(candidate_sets, candidate_sets[1:]):
        union = previous | current
        if not union:
            variations.append(0.0)
            continue
        changed = len(previous ^ current)
        variations.append(100.0 * changed / len(union))
    return variations


def variation_profile(variations: Sequence[float],
                      fractions: Sequence[float] = (0.10, 0.25, 0.50,
                                                    0.75, 0.90)
                      ) -> Dict[float, float]:
    """Summarize a variation series as CDF quantiles.

    Returns ``{fraction: variation}`` -- e.g. ``{0.5: 35.0}`` means
    "50 % of interval transitions change less than 35 % of candidates",
    directly comparable to reading a Figure 6 curve at x = 50.
    """
    if not variations:
        return {fraction: 0.0 for fraction in fractions}
    ordered = sorted(variations)
    profile: Dict[float, float] = {}
    for fraction in fractions:
        position = min(len(ordered) - 1,
                       max(0, int(fraction * len(ordered))))
        profile[fraction] = ordered[position]
    return profile
