"""Shared on-disk store of materialized benchmark streams.

Every experiment replays the same deterministic per-benchmark streams,
and the suite used to regenerate them from scratch for each experiment
(and, with the parallel fabric, would regenerate them in every worker
process).  The store materializes each stream **once** per
``(benchmark, kind, interval length, seed)`` as plain ``.npy`` files
under a cache directory and replays it memory-mapped, so workers share
pages instead of each paying generation and a private copy.

Chunk-pattern fidelity
----------------------

Stream generation is *not* chunk-pattern independent: the generator
fills the hot/recurring/fresh populations per chunk, so the order in
which random variates are consumed -- and therefore the exact event
sequence -- depends on the sizes of the ``chunk()`` calls.  The
profiling session reads a source in pieces of
``min(CHUNK_EVENTS, interval_length - pending)``.  The store
materializes traces with **exactly that pattern**, which makes replay
through :class:`~repro.profiling.session.ProfilingSession`
bit-identical to feeding the live generator -- the property the
fabric's parity guarantee rests on.  The pattern is per-interval, which
is why the interval length is part of the key, and why a trace
materialized for ``n`` intervals is a valid prefix-exact substitute for
any run of ``<= n`` intervals at the same interval length.

Files are written atomically (temp file + ``os.replace``), so
concurrent workers racing to materialize the same stream both succeed
and agree on content.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.tuples import EventKind
from .benchmarks import benchmark_generator, benchmark_model
from .traces import Trace

#: Environment variable naming the cache root (traces live in a
#: ``traces/`` subdirectory of it).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _session_chunk_events() -> int:
    # Imported lazily: profiling.session imports repro.workloads
    # modules, so a top-level import here would be circular.
    from ..profiling.session import CHUNK_EVENTS

    return CHUNK_EVENTS


@dataclass(frozen=True)
class TraceKey:
    """Identity of one materialized stream."""

    benchmark: str
    kind: EventKind
    interval_length: int
    seed: int

    @property
    def stem(self) -> str:
        return (f"{self.benchmark}-{self.kind.value}"
                f"-L{self.interval_length}-S{self.seed}")


@dataclass(frozen=True)
class ScenarioKey:
    """Identity of one materialized scenario stream.

    Keyed on the **full scenario fingerprint** -- the SHA-256 of the
    canonical config, which includes the seed -- plus the chunk
    pattern (interval length and session chunk size).  Benchmark
    streams key on ``(name, kind, length, seed)`` alone; a scenario
    wrapping the same base model produces a *different* event stream,
    so sharing those keys would let scenario streams alias cached
    benchmark streams.  The ``scenario-`` stem prefix and the config
    hash make the two namespaces disjoint.
    """

    fingerprint: str
    kind: EventKind
    interval_length: int
    chunk_events: int

    @property
    def stem(self) -> str:
        return (f"scenario-{self.fingerprint[:20]}-{self.kind.value}"
                f"-L{self.interval_length}-C{self.chunk_events}")


class TraceStore:
    """Materialize-once, replay-memory-mapped benchmark streams.

    Parameters
    ----------
    directory:
        Where trace files live; created on first write.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _paths(self, key: TraceKey) -> tuple:
        stem = os.path.join(self.directory, key.stem)
        return f"{stem}.pcs.npy", f"{stem}.values.npy"

    def resolve_seed(self, benchmark: str, kind: EventKind,
                     seed: Optional[int]) -> int:
        """The effective generator seed (models carry a default)."""
        if seed is not None:
            return seed
        return benchmark_model(benchmark, kind).seed

    def stored_intervals(self, key: TraceKey) -> int:
        """Whole intervals available in the stored trace (0 if absent)."""
        pcs_path, values_path = self._paths(key)
        if not (os.path.exists(pcs_path) and os.path.exists(values_path)):
            return 0
        try:
            pcs = np.load(pcs_path, mmap_mode="r")
        except (ValueError, OSError):
            return 0
        return pcs.shape[0] // key.interval_length

    def get(self, benchmark: str, kind: EventKind, interval_length: int,
            num_intervals: int, seed: Optional[int] = None) -> Trace:
        """A memory-mapped trace of at least *num_intervals* intervals.

        Materializes (or extends, by regenerating -- the stream is a
        deterministic prefix) the stored file when it is missing or too
        short.
        """
        key = TraceKey(benchmark=benchmark, kind=kind,
                       interval_length=interval_length,
                       seed=self.resolve_seed(benchmark, kind, seed))
        if self.stored_intervals(key) < num_intervals:
            self._materialize(key, num_intervals)
        trace = self._load(key)
        needed = interval_length * num_intervals
        if len(trace) > needed:
            trace = trace.slice(0, needed)
        return trace

    def get_scenario(self, config, num_intervals: Optional[int] = None,
                     chunk_events: Optional[int] = None) -> Trace:
        """A memory-mapped trace of a scenario stream.

        *config* is a :class:`~repro.workloads.scenarios.ScenarioConfig`;
        the stored file is keyed on its full fingerprint (config
        SHA-256, seed included) plus the chunk pattern, so distinct
        scenarios -- and scenarios vs. plain benchmarks -- never share
        a cache entry.  Defaults to the scenario's own profile point.
        """
        from .scenarios import ScenarioStream, session_chunks

        if num_intervals is None:
            num_intervals = config.profile.intervals
        if chunk_events is None:
            chunk_events = _session_chunk_events()
        interval_length = config.profile.interval_length
        key = ScenarioKey(fingerprint=config.fingerprint(),
                          kind=config.kind,
                          interval_length=interval_length,
                          chunk_events=chunk_events)
        if self.stored_intervals(key) < num_intervals:
            stream = ScenarioStream(config)
            self._store_pieces(key, session_chunks(
                stream, interval_length, num_intervals, chunk_events))
        trace = self._load(key, source=f"scenario:{config.name}")
        needed = interval_length * num_intervals
        if len(trace) > needed:
            trace = trace.slice(0, needed)
        return trace

    def _load(self, key, source: Optional[str] = None) -> Trace:
        pcs_path, values_path = self._paths(key)
        if source is None:
            source = f"benchmark:{key.benchmark}"
        return Trace(pcs=np.load(pcs_path, mmap_mode="r"),
                     values=np.load(values_path, mmap_mode="r"),
                     kind=key.kind,
                     source=source)

    def _materialize(self, key: TraceKey, num_intervals: int) -> None:
        """Generate and atomically store *num_intervals* intervals."""
        chunk_events = _session_chunk_events()
        generator = benchmark_generator(key.benchmark, key.kind, key.seed)
        pieces = []
        for _ in range(num_intervals):
            pending = 0
            while pending < key.interval_length:
                take = min(chunk_events, key.interval_length - pending)
                pieces.append(generator.chunk(take))
                pending += take
        self._store_pieces(key, pieces)

    def _store_pieces(self, key, pieces) -> None:
        pieces = list(pieces)
        pcs = np.concatenate([piece_pcs for piece_pcs, _ in pieces])
        values = np.concatenate([piece_values for _, piece_values in pieces])
        os.makedirs(self.directory, exist_ok=True)
        pcs_path, values_path = self._paths(key)
        # values first: readers gate on the pcs file, so a reader that
        # sees new pcs is guaranteed to see at-least-as-new values.
        self._atomic_save(values_path, values)
        self._atomic_save(pcs_path, pcs)

    def _atomic_save(self, path: str, array: np.ndarray) -> None:
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp.npy")
        try:
            with os.fdopen(handle, "wb") as sink:
                np.lib.format.write_array(sink, array)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
