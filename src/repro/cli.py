"""``repro-profile``: profile streams and traces from the command line.

Subcommands::

    repro-profile stream --benchmark gcc --intervals 10
        Profile a calibrated benchmark stream and print per-interval
        candidates and the error summary.

    repro-profile trace mytrace.npz --tables 4
        Replay a recorded trace (``repro.workloads.traces`` format)
        through a profiler configuration.

    repro-profile record --benchmark gcc --events 200000 -o gcc.npz
        Record a benchmark stream (or a synthetic simulator program
        with ``--program``) to a trace file for later replay.

    repro-profile serve --port 7071 --workers 4
        Run the multi-tenant streaming profile server
        (:mod:`repro.service`) until interrupted.

    repro-profile push --port 7071 --stream gcc-0 --benchmark gcc \
            --events 100000
        Open a stream on a running server, push a benchmark stream (or
        a recorded trace with ``--trace``) in batches, and print the
        final snapshot.

    repro-profile snapshot --port 7071 --stream gcc-0
        Query a live snapshot of an open stream; ``--stats`` prints
        server and worker statistics instead.

    repro-profile loadgen --compare --profile steady --profile bursty
        Drive named workload profiles (steady, bursty, fan_in, mixed,
        scenario_*) against an embedded server on both data planes and
        write throughput/latency rows to
        ``benchmarks/results/BENCH_service.json``.

    repro-profile scenario generate --config stress_test --seed 42
        Emit a scenario's JSONL event stream (``-o`` to a file,
        ``--store`` to materialize it in the shared trace store);
        ``scenario validate`` checks a config, ``scenario list``
        prints the shipped presets.

The profiler configuration flags mirror
:class:`~repro.core.config.ProfilerConfig`: ``--tables``, ``--entries``,
``--interval``, ``--threshold``, ``--no-conservative-update``,
``--resetting``, ``--no-retaining``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.config import BACKENDS, IntervalSpec, ProfilerConfig
from .core.tuples import EventKind
from .ioutil import atomic_write_json
from .metrics.reports import format_table
from .profiling.session import ProfilingSession
from .workloads.benchmarks import BENCHMARK_NAMES, benchmark_generator
from .workloads.traces import load_trace, record, save_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Run the HPCA 2003 multi-hash hardware profiler on "
                    "streams, traces, or simulated programs")
    commands = parser.add_subparsers(dest="command", required=True)

    stream = commands.add_parser(
        "stream", help="profile a calibrated benchmark stream")
    _add_workload_flags(stream)
    _add_profiler_flags(stream)
    stream.add_argument("--intervals", type=int, default=10,
                        help="profile intervals to run (default 10)")
    stream.add_argument("--top", type=int, default=10,
                        help="candidates to print per interval")

    trace = commands.add_parser(
        "trace", help="replay a recorded .npz trace")
    trace.add_argument("path", help="trace file (see 'record')")
    _add_profiler_flags(trace)
    trace.add_argument("--top", type=int, default=10,
                       help="candidates to print per interval")

    recorder = commands.add_parser(
        "record", help="record a stream to a replayable trace")
    _add_workload_flags(recorder)
    recorder.add_argument("--events", type=int, default=100_000,
                          help="events to record (default 100000)")
    recorder.add_argument("--program",
                          choices=["value", "dispatch", "mixed"],
                          help="record a synthetic simulator program "
                               "instead of a benchmark stream")
    recorder.add_argument("-o", "--output", required=True,
                          help="output .npz path")
    recorder.add_argument("--chunk", type=int, default=None,
                          help="generation chunk size; a synthetic "
                               "stream's content depends on its draw "
                               "batching, so match this to a live "
                               "session's per-interval chunking to "
                               "record the identical stream")

    serve = commands.add_parser(
        "serve", help="run the streaming profile server")
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7071,
                       help="listen port, 0 for ephemeral "
                            "(default 7071)")
    serve.add_argument("--workers", type=int, default=2,
                       help="shard worker processes (default 2)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="queued requests per worker before busy "
                            "shedding (default 64)")
    serve.add_argument("--snapshot-intervals", type=int, default=64,
                       help="recent per-interval profiles kept per "
                            "stream (default 64)")
    serve.add_argument("--data-plane", default="fast",
                       choices=["fast", "legacy"],
                       help="batch ingest path: zero-copy grouped "
                            "handoff ('fast', default) or the "
                            "pre-rewrite per-op path ('legacy')")

    push = commands.add_parser(
        "push", help="stream events into a running server")
    _add_service_flags(push)
    push.add_argument("--stream", required=True,
                      help="stream id to open and push")
    _add_workload_flags(push)
    _add_profiler_flags(push)
    push.add_argument("--trace", default=None,
                      help="push a recorded .npz trace instead of a "
                           "benchmark stream")
    push.add_argument("--scenario", default=None,
                      help="push a scenario stream (YAML path or "
                           "preset name) instead of a benchmark "
                           "stream")
    push.add_argument("--events", type=int, default=100_000,
                      help="events to push from a benchmark stream "
                           "(default 100000; ignored with --trace)")
    push.add_argument("--batch", type=int, default=8192,
                      help="events per pushed batch (default 8192)")
    push.add_argument("--keep-open", action="store_true",
                      help="leave the stream open (poll it later with "
                           "'snapshot') instead of closing it")
    push.add_argument("--top", type=int, default=10,
                      help="candidates to print from the last interval")

    bench = commands.add_parser(
        "bench", help="measure backend throughput (BENCH_kernels.json)")
    bench.add_argument("--benchmark", default="gcc",
                       choices=list(BENCHMARK_NAMES),
                       help="calibrated workload (default gcc)")
    bench.add_argument("--seed", type=int, default=7,
                       help="stream seed (default 7)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per chunked row, best taken "
                            "(default 3; the per-event row runs once)")
    bench.add_argument("--quick", action="store_true",
                       help="tiny operating points for CI smoke runs")
    bench.add_argument("-o", "--output",
                       default="benchmarks/results/BENCH_kernels.json",
                       help="result file (default "
                            "benchmarks/results/BENCH_kernels.json)")

    scenario = commands.add_parser(
        "scenario", help="generate, validate, or list stream scenarios")
    scenario_commands = scenario.add_subparsers(dest="scenario_command",
                                                required=True)
    generate = scenario_commands.add_parser(
        "generate", help="emit a scenario's JSONL event stream")
    _add_scenario_flags(generate)
    generate.add_argument("--intervals", type=int, default=None,
                          help="intervals to emit (default: the "
                               "config's profile point)")
    generate.add_argument("-o", "--output", default=None,
                          help="JSONL output path (default stdout)")
    generate.add_argument("--store", action="store_true",
                          help="materialize the stream into the shared "
                               "trace store instead of emitting JSONL")
    validate = scenario_commands.add_parser(
        "validate", help="check a scenario config and print its "
                         "fingerprint")
    _add_scenario_flags(validate)
    scenario_commands.add_parser(
        "list", help="list the shipped preset scenarios")

    loadgen = commands.add_parser(
        "loadgen", help="drive load profiles against the profile "
                        "service (BENCH_service.json)")
    loadgen.add_argument("--profile", action="append", default=None,
                         dest="profiles", metavar="NAME",
                         help="profile to run (repeatable; default: "
                              "all shipped profiles; see --list)")
    loadgen.add_argument("--list", action="store_true",
                         help="list the shipped load profiles and exit")
    loadgen.add_argument("--compare", action="store_true",
                         help="run each profile down both data planes "
                              "(legacy then fast) and report speedups")
    loadgen.add_argument("--data-plane", default="fast",
                         choices=["fast", "legacy"],
                         help="server data plane for single-leg runs "
                              "(default fast; ignored with --compare)")
    loadgen.add_argument("--workers", type=int, default=2,
                         help="shard worker processes (default 2)")
    loadgen.add_argument("--max-pending", type=int, default=64,
                         help="in-flight requests per worker before "
                              "busy shedding (default 64)")
    loadgen.add_argument("--streams", type=int, default=None,
                         help="cap concurrent streams per profile")
    loadgen.add_argument("--events", type=int, default=None,
                         help="cap events per stream")
    loadgen.add_argument("--quick", action="store_true",
                         help="tiny operating points for CI smoke runs "
                              "(32 streams, 1024 events/stream)")
    loadgen.add_argument("-o", "--output",
                         default="benchmarks/results/BENCH_service.json",
                         help="result file (default benchmarks/results/"
                              "BENCH_service.json); '-' to skip "
                              "writing")

    snapshot = commands.add_parser(
        "snapshot", help="query a live stream snapshot or server stats")
    _add_service_flags(snapshot)
    snapshot.add_argument("--stream", default=None,
                          help="stream id to snapshot")
    snapshot.add_argument("--stats", action="store_true",
                          help="print server/worker statistics instead")
    snapshot.add_argument("--top", type=int, default=10,
                          help="candidates to print from the last "
                               "interval")
    return parser


def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", required=True,
                        help="scenario YAML path or preset name (see "
                             "'scenario list')")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the config's seed")


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7071,
                        help="server port (default 7071)")


def _add_workload_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", default="gcc",
                        choices=list(BENCHMARK_NAMES),
                        help="calibrated workload (default gcc)")
    parser.add_argument("--kind", default="value",
                        choices=["value", "edge"],
                        help="profiling event kind (default value)")
    parser.add_argument("--seed", type=int, default=None,
                        help="stream seed override")


def _add_profiler_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tables", type=int, default=4,
                        help="hash tables (default 4)")
    parser.add_argument("--entries", type=int, default=2048,
                        help="total counters (default 2048)")
    parser.add_argument("--interval", type=int, default=10_000,
                        help="interval length in events (default 10000)")
    parser.add_argument("--threshold", type=float, default=0.01,
                        help="candidate threshold fraction (default "
                             "0.01 = 1%%)")
    parser.add_argument("--no-conservative-update", action="store_true",
                        help="disable conservative update (C0)")
    parser.add_argument("--resetting", action="store_true",
                        help="enable immediate counter reset (R1)")
    parser.add_argument("--no-retaining", action="store_true",
                        help="disable accumulator retaining (P0)")
    parser.add_argument("--backend", default="auto",
                        choices=list(BACKENDS),
                        help="event-processing backend: the NumPy batch "
                             "kernels ('vectorized', the default via "
                             "'auto'), the per-event reference "
                             "('scalar'), or the cross-session fold "
                             "('batched': one kernel dispatch per tick "
                             "over all sessions sharing a shape)")


def config_from_args(args: argparse.Namespace) -> ProfilerConfig:
    return ProfilerConfig(
        interval=IntervalSpec(args.interval, args.threshold),
        total_entries=args.entries,
        num_tables=args.tables,
        conservative_update=(args.tables > 1
                             and not args.no_conservative_update),
        resetting=args.resetting,
        retaining=not args.no_retaining,
        backend=getattr(args, "backend", "auto"),
    )


def _print_result(result, config: ProfilerConfig, top: int) -> None:
    print(f"profiler {config.label}: {config.num_tables} x "
          f"{config.entries_per_table} counters, accumulator "
          f"{config.accumulator_capacity}, interval "
          f"{config.interval.length:,} @ "
          f"{100 * config.interval.threshold:g}%")
    summary = result.summary
    profiles = result.single().profiles
    for profile in profiles:
        ranked = sorted(profile.candidates.items(),
                        key=lambda item: -item[1])[:top]
        rows = [[f"{pc:#x}", f"{value:#x}", count]
                for (pc, value), count in ranked]
        print(f"\ninterval {profile.index}: "
              f"{len(profile.candidates)} candidates, error "
              f"{100 * summary.intervals[profile.index].total:.3f}%")
        print(format_table(["pc", "value", "count"], rows))
    breakdown = summary.breakdown_percent()
    print(f"\nnet error: {summary.percent():.3f}%  ("
          + ", ".join(f"{key}={value:.3f}"
                      for key, value in breakdown.items()) + ")")


def _run_stream(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    generator = benchmark_generator(args.benchmark,
                                    EventKind(args.kind), seed=args.seed)
    session = ProfilingSession(config, keep_profiles=True)
    result = session.run(generator, max_intervals=args.intervals)
    _print_result(result, config, args.top)
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    trace = load_trace(args.path)
    print(f"loaded {args.path}: {len(trace)} events "
          f"({trace.kind.value}; source {trace.source or 'unknown'})")
    session = ProfilingSession(config, keep_profiles=True)
    result = session.run(trace)
    if not result.summary.num_intervals:
        print("trace shorter than one interval; nothing to profile",
              file=sys.stderr)
        return 1
    _print_result(result, config, args.top)
    return 0


def _run_record(args: argparse.Namespace) -> int:
    kind = EventKind(args.kind)
    if args.program:
        from .profiling.atom import trace_events
        from .simulator.synth import (dispatch_program, mixed_program,
                                      value_locality_program)

        factories = {"value": value_locality_program,
                     "dispatch": dispatch_program,
                     "mixed": mixed_program}
        trace = trace_events(factories[args.program](), kind)
        source = f"program:{args.program}"
    else:
        generator = benchmark_generator(args.benchmark, kind,
                                        seed=args.seed)
        events = (generator.events(args.events) if args.chunk is None
                  else generator.events(args.events,
                                        chunk_size=args.chunk))
        trace = record(events, kind=kind,
                       source=f"benchmark:{args.benchmark}")
        source = trace.source
    save_trace(trace, args.output)
    print(f"recorded {len(trace)} {kind.value} events from {source} "
          f"to {args.output}")
    return 0


def _print_snapshot(snapshot: dict, top: int) -> None:
    summary = snapshot["summary"]
    state = "final" if snapshot.get("final") else "live"
    print(f"stream {snapshot['stream']} ({snapshot['profiler']}, "
          f"{state}): {snapshot['events']:,} events, "
          f"{snapshot['intervals_completed']} intervals complete, "
          f"{snapshot['pending_events']} pending"
          + (", flushed partial interval"
             if snapshot.get("flushed_partial") else ""))
    if snapshot["intervals"]:
        last = snapshot["intervals"][-1]
        rows = [[f"{pc:#x}", f"{value:#x}", count]
                for pc, value, count in last["candidates"][:top]]
        print(f"\ninterval {last['index']}: "
              f"{len(last['candidates'])} candidates, error "
              f"{last['error_percent']:.3f}%")
        print(format_table(["pc", "value", "count"], rows))
    breakdown = summary["breakdown_percent"]
    print(f"\nnet error over {summary['num_intervals']} intervals: "
          f"{summary['net_error_percent']:.3f}%  ("
          + ", ".join(f"{key}={value:.3f}"
                      for key, value in breakdown.items()) + ")")


def _run_serve(args: argparse.Namespace) -> int:
    from .service import ProfileServer

    server = ProfileServer(host=args.host, port=args.port,
                           num_workers=args.workers,
                           max_pending=args.max_pending,
                           snapshot_intervals=args.snapshot_intervals,
                           data_plane=args.data_plane)
    server.start()
    print(f"profile server listening on {server.host}:{server.port} "
          f"({args.workers} workers; ctrl-c to drain and stop)",
          flush=True)
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        # A repeated ctrl-c (terminals signal the whole process group)
        # must not abort the drain midway.
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)
        server.stop()
        print("drained and stopped")
    return 0


def _run_push(args: argparse.Namespace) -> int:
    from .service import ProfileClient, ServiceError

    config = config_from_args(args)
    try:
        return _push_with(ProfileClient, args, config)
    except ServiceError as error:
        print(f"error: server refused ({error.code}): {error}",
              file=sys.stderr)
        return 2


def _push_with(client_type, args: argparse.Namespace, config) -> int:
    with client_type(host=args.host, port=args.port) as client:
        opened = client.open_stream(args.stream, config)
        print(f"opened stream {args.stream} on shard "
              f"{opened['shard']} ({opened['profiler']})")
        if args.trace:
            trace = load_trace(args.trace)
            client.push_trace(args.stream, trace,
                              batch_events=args.batch)
            print(f"pushed {len(trace)} events from {args.trace}")
        elif args.scenario:
            from .workloads.scenarios import ScenarioStream, load_scenario

            scenario = load_scenario(args.scenario, seed=args.seed)
            client.push_generator(args.stream, ScenarioStream(scenario),
                                  args.events, batch_events=args.batch)
            print(f"pushed {args.events} events from "
                  f"scenario:{scenario.name}")
        else:
            generator = benchmark_generator(args.benchmark,
                                            EventKind(args.kind),
                                            seed=args.seed)
            client.push_generator(args.stream, generator, args.events,
                                  batch_events=args.batch)
            print(f"pushed {args.events} events from "
                  f"benchmark:{args.benchmark}")
        if args.keep_open:
            snapshot = client.snapshot(args.stream)
        else:
            snapshot = client.close_stream(args.stream)
        _print_snapshot(snapshot, args.top)
    return 0


#: Benchmark operating points: the paper's fig07/fig12 scale (three
#: 200K-event intervals at 0.1 %) plus a short-interval point (thirty
#: 10K-event intervals at 1 %) that stresses interval turnover.
_BENCH_POINTS = [("long", 200_000, 0.001, 3), ("short", 10_000, 0.01, 30)]
_BENCH_QUICK_POINTS = [("long", 20_000, 0.001, 2), ("short", 4_000, 0.01, 5)]


def _bench_feed_scalar(profiler, pcs, values, spec):
    """Per-event reference loop: ``observe()`` on every tuple."""
    length = spec.length
    observe = profiler.observe
    for position, event in enumerate(zip(pcs.tolist(), values.tolist()),
                                     start=1):
        observe(event)
        if position % length == 0:
            profiler.end_interval()


def _bench_feed_chunked(profiler, pcs, values, spec):
    """The scalar production path: ``observe_chunk`` over event lists
    with pre-hashed index lists, exactly as ``SessionFeeder`` feeds a
    scalar profiler."""
    from .profiling.session import CHUNK_EVENTS, ProfilingSession

    functions = ProfilingSession._hash_functions(profiler)
    length = spec.length
    position = 0
    while position < len(pcs):
        take = min(CHUNK_EVENTS, length - position % length,
                   len(pcs) - position)
        piece_pcs = pcs[position:position + take]
        piece_values = values[position:position + take]
        events = list(zip(piece_pcs.tolist(), piece_values.tolist()))
        index_lists = [function.index_array(piece_pcs, piece_values).tolist()
                       for function in functions]
        profiler.observe_chunk(events, index_lists)
        position += take
        if position % length == 0:
            profiler.end_interval()


def _bench_feed_vectorized(profiler, pcs, values, spec):
    """The kernel path: ``observe_array_chunk`` on uint64 arrays."""
    from .profiling.session import CHUNK_EVENTS

    length = spec.length
    position = 0
    while position < len(pcs):
        take = min(CHUNK_EVENTS, length - position % length,
                   len(pcs) - position)
        profiler.observe_array_chunk(pcs[position:position + take],
                                     values[position:position + take])
        position += take
        if position % length == 0:
            profiler.end_interval()


#: Multi-session fold operating point: concurrent sessions advance in
#: lockstep ticks of a small per-session chunk -- the latency-bound
#: streaming regime the batched cross-session dispatch is built for.
_BENCH_SESSION_COUNTS = [1, 8, 64]
_BENCH_QUICK_SESSION_COUNTS = [1, 8]
_BENCH_SESSION_INTERVALS = 2
_BENCH_QUICK_SESSION_INTERVALS = 1
_BENCH_SESSION_SPEC = (10_000, 0.01)
_BENCH_QUICK_SESSION_SPEC = (2_000, 0.01)
_BENCH_SESSION_TICK = 100


def _bench_feed_sessions(config, backend, streams, spec, time_module):
    """Time one backend serving ``len(streams)`` concurrent sessions.

    Every tick advances each session by ``_BENCH_SESSION_TICK`` events.
    ``scalar-chunked`` and ``vectorized`` serve sessions one at a time
    (one ``observe_chunk`` / ``observe_array_chunk`` call per session
    per tick); ``batched`` folds the whole tick into a single
    :class:`~repro.core.batched.BatchedKernelRunner` dispatch.
    Returns ``(seconds, ticks, kernel_dispatches)``.
    """
    from .core.batched import BatchedKernelRunner
    from .profiling.session import ProfilingSession

    resolved = config.with_backend(
        "scalar" if backend == "scalar-chunked" else "vectorized")
    profilers = [_bench_profiler(resolved) for _ in streams]
    runner = BatchedKernelRunner()
    tick = _BENCH_SESSION_TICK
    length = spec.length
    total = len(streams[0][0])
    if backend == "scalar-chunked":
        functions = [ProfilingSession._hash_functions(profiler)
                     for profiler in profilers]
    ticks = 0
    offset = 0
    started = time_module.perf_counter()
    while offset < total:
        take = min(tick, length - offset % length, total - offset)
        stop = offset + take
        ticks += 1
        if backend == "batched":
            runner.dispatch(
                [(profiler, pcs[offset:stop], values[offset:stop])
                 for profiler, (pcs, values) in zip(profilers, streams)])
        elif backend == "vectorized":
            for profiler, (pcs, values) in zip(profilers, streams):
                profiler.observe_array_chunk(pcs[offset:stop],
                                             values[offset:stop])
        else:
            for profiler, (pcs, values), funcs in zip(profilers, streams,
                                                      functions):
                piece_pcs = pcs[offset:stop]
                piece_values = values[offset:stop]
                events = list(zip(piece_pcs.tolist(),
                                  piece_values.tolist()))
                index_lists = [
                    f.index_array(piece_pcs, piece_values).tolist()
                    for f in funcs]
                profiler.observe_chunk(events, index_lists)
        if stop % length == 0:
            for profiler in profilers:
                profiler.end_interval()
        offset = stop
    elapsed = time_module.perf_counter() - started
    dispatches = (runner.dispatches if backend == "batched"
                  else len(streams) * ticks)
    return elapsed, ticks, dispatches


def _run_bench(args: argparse.Namespace) -> int:
    """Measure profiler event throughput per backend and architecture.

    Covers the paper's two headline architectures -- the fig07 best
    single-hash (SH-R1-P1) and the fig12 best multi-hash (MH4-C1-P1)
    -- at two operating points, with three rows each:

    * ``scalar``: the per-event ``observe()`` reference loop the
      kernels are parity-tested against (run once -- it is slow),
    * ``scalar-chunked``: the scalar production path (``observe_chunk``
      with vectorized pre-hashing, as ``SessionFeeder`` drives it),
    * ``vectorized``: the NumPy array kernels.

    Every row consumes the identical pre-generated stream, split at
    interval boundaries; only profiler work is timed.  The headline
    speedup is vectorized vs the per-event reference; the
    chunked-baseline speedup is reported alongside so the comparison
    against the tuned scalar path stays honest.
    """
    import json
    import os
    import time

    from .core.config import best_multi_hash, best_single_hash

    feeders = [("scalar", _bench_feed_scalar),
               ("scalar-chunked", _bench_feed_chunked),
               ("vectorized", _bench_feed_vectorized)]
    points = _BENCH_QUICK_POINTS if args.quick else _BENCH_POINTS
    workloads = []
    speedups = {}
    chunked_speedups = {}
    for figure, factory in (("fig07", best_single_hash),
                            ("fig12", best_multi_hash)):
        for point, length, threshold, intervals in points:
            spec = IntervalSpec(length, threshold)
            config = factory(spec)
            pcs, values = benchmark_generator(
                args.benchmark, seed=args.seed).chunk(length * intervals)
            rows = {}
            for backend, feed in feeders:
                resolved = config.with_backend(
                    "vectorized" if backend == "vectorized" else "scalar")
                repeats = 1 if backend == "scalar" else max(1, args.repeats)
                elapsed = min(
                    _timed(_bench_profiler(resolved), feed, pcs, values,
                           spec, time)
                    for _ in range(repeats))
                rows[backend] = {
                    "seconds": elapsed,
                    "events_per_second": len(pcs) / elapsed,
                }
                print(f"{figure} {config.label:>14} {point:>5} "
                      f"{backend:>14}: "
                      f"{len(pcs) / elapsed:>12,.0f} events/s  "
                      f"({elapsed:.3f}s)")
            vec = rows["vectorized"]["events_per_second"]
            speedup = vec / rows["scalar"]["events_per_second"]
            chunked = vec / rows["scalar-chunked"]["events_per_second"]
            key = f"{config.label}:{point}"
            speedups[key] = speedup
            chunked_speedups[key] = chunked
            print(f"{figure} {config.label:>14} {point:>5}    speedup: "
                  f"{speedup:.1f}x vs scalar, {chunked:.2f}x vs chunked")
            workloads.append({
                "figure": figure,
                "architecture": config.label,
                "point": point,
                "interval_length": length,
                "threshold": threshold,
                "events": len(pcs),
                "rows": rows,
                "speedup_vs_scalar": speedup,
                "speedup_vs_chunked": chunked,
            })

    # -- multi-session fold: batched vs per-session dispatch ----------
    session_counts = (_BENCH_QUICK_SESSION_COUNTS if args.quick
                      else _BENCH_SESSION_COUNTS)
    session_spec = IntervalSpec(*(_BENCH_QUICK_SESSION_SPEC if args.quick
                                  else _BENCH_SESSION_SPEC))
    session_intervals = (_BENCH_QUICK_SESSION_INTERVALS if args.quick
                         else _BENCH_SESSION_INTERVALS)
    per_session = session_spec.length * session_intervals
    sessions_out = []
    fold_speedups = {}
    for figure, factory in (("fig07", best_single_hash),
                            ("fig12", best_multi_hash)):
        config = factory(session_spec)
        for count in session_counts:
            streams = [
                benchmark_generator(args.benchmark,
                                    seed=args.seed + position
                                    ).chunk(per_session)
                for position in range(count)]
            total_events = count * per_session
            rows = {}
            for backend in ("scalar-chunked", "vectorized", "batched"):
                repeats = (1 if backend == "scalar-chunked"
                           else max(1, args.repeats))
                best = min(
                    (_bench_feed_sessions(config, backend, streams,
                                          session_spec, time)
                     for _ in range(repeats)),
                    key=lambda result: result[0])
                elapsed, ticks, dispatches = best
                rows[backend] = {
                    "seconds": elapsed,
                    "events_per_second": total_events / elapsed,
                    "ticks": ticks,
                    "kernel_dispatches": dispatches,
                    "dispatches_per_tick": dispatches / ticks,
                }
                print(f"{figure} {config.label:>14} sessions={count:<3} "
                      f"{backend:>14}: "
                      f"{total_events / elapsed:>12,.0f} events/s  "
                      f"({elapsed:.3f}s, {dispatches / ticks:.0f} "
                      f"dispatch(es)/tick)")
            fold = rows["batched"]["events_per_second"]
            vs_vectorized = fold / rows["vectorized"]["events_per_second"]
            vs_scalar = fold / rows["scalar-chunked"]["events_per_second"]
            key = f"{config.label}@{count}"
            fold_speedups[key] = vs_vectorized
            print(f"{figure} {config.label:>14} sessions={count:<3} "
                  f"   fold speedup: {vs_vectorized:.2f}x vs vectorized, "
                  f"{vs_scalar:.2f}x vs scalar-chunked")
            sessions_out.append({
                "figure": figure,
                "architecture": config.label,
                "sessions": count,
                "interval_length": session_spec.length,
                "threshold": session_spec.threshold,
                "events_per_session": per_session,
                "tick_events": _BENCH_SESSION_TICK,
                "events": total_events,
                "rows": rows,
                "fold_speedup_vs_vectorized": vs_vectorized,
                "fold_speedup_vs_scalar_chunked": vs_scalar,
            })

    report = {
        "benchmark": args.benchmark,
        "seed": args.seed,
        "quick": bool(args.quick),
        "workloads": workloads,
        "speedups": speedups,
        "chunked_speedups": chunked_speedups,
        "sessions": sessions_out,
        "session_fold_speedups": fold_speedups,
    }
    atomic_write_json(args.output, report)
    print(f"wrote {args.output}")
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    from .workloads import scenarios

    if args.scenario_command == "list":
        presets = scenarios.list_presets()
        if not presets:
            print("no shipped presets found", file=sys.stderr)
            return 1
        for name in presets:
            config = scenarios.load_scenario(name)
            description = " ".join(config.description.split())
            print(f"{name}: {description or '(no description)'}")
        return 0
    config = scenarios.load_scenario(args.config, seed=args.seed)
    if args.scenario_command == "validate":
        profile = config.profile
        print(f"{config.name}: ok")
        print(f"  kind {config.kind.value}, seed {config.seed}")
        print(f"  profile: interval {profile.interval_length:,} @ "
              f"{100 * profile.threshold:g}%, "
              f"{profile.intervals} intervals")
        print(f"  fingerprint {config.fingerprint()}")
        return 0
    if args.store:
        import os

        from .workloads.trace_store import TraceStore, default_cache_dir

        store = TraceStore(os.path.join(default_cache_dir(), "traces"))
        trace = store.get_scenario(config, num_intervals=args.intervals)
        print(f"materialized {len(trace)} events for "
              f"scenario:{config.name} (fingerprint "
              f"{config.fingerprint()[:20]}) under {store.directory}")
        return 0
    if args.output:
        events = scenarios.write_jsonl(config, args.output,
                                       num_intervals=args.intervals)
        print(f"wrote {events} events to {args.output}")
        return 0
    for line in scenarios.jsonl_lines(config, num_intervals=args.intervals):
        print(line)
    return 0


def _bench_profiler(config):
    """Build a profiler with its hash pipeline pre-warmed.

    The vectorized hash functions build their folded lookup tables
    lazily on first use; that one-time setup cost belongs to profiler
    construction, not to the timed throughput loop.
    """
    import numpy as np

    from .core.multi_hash import build_profiler
    from .profiling.session import ProfilingSession

    profiler = build_profiler(config)
    probe = np.zeros(8, dtype=np.uint64)
    for function in ProfilingSession._hash_functions(profiler) or []:
        function.index_array(probe, probe)
    return profiler


def _timed(profiler, feed, pcs, values, spec, time) -> float:
    started = time.perf_counter()
    feed(profiler, pcs, values, spec)
    return time.perf_counter() - started


#: Smoke-run caps applied by ``loadgen --quick``.
_LOADGEN_QUICK_STREAMS = 32
_LOADGEN_QUICK_EVENTS = 1024


def _run_loadgen(args: argparse.Namespace) -> int:
    """Run named load profiles; write ``BENCH_service.json``."""
    from .loadgen import (PROFILES, compare_profiles, get_profile,
                          list_profiles, run_profile)

    if args.list:
        for name in list_profiles():
            profile = PROFILES[name]
            print(f"{name}: {profile.streams} streams x "
                  f"{profile.events_per_stream:,} events, "
                  f"{profile.connections} connections -- "
                  f"{profile.description}")
        return 0
    names = args.profiles or list_profiles()
    profiles = [get_profile(name) for name in names]
    streams_cap = args.streams
    events_cap = args.events
    if args.quick:
        streams_cap = min(streams_cap or _LOADGEN_QUICK_STREAMS,
                          _LOADGEN_QUICK_STREAMS)
        events_cap = min(events_cap or _LOADGEN_QUICK_EVENTS,
                         _LOADGEN_QUICK_EVENTS)
    if streams_cap or events_cap:
        profiles = [
            profile.scaled(streams_cap or profile.streams,
                           events_cap or profile.events_per_stream)
            for profile in profiles]

    def show(row):
        print(f"{row['profile']:>24} [{row['data_plane']:>6}] "
              f"{row['events_per_second']:>12,.0f} events/s  "
              f"{row['requests_per_second']:>8,.0f} req/s  "
              f"snapshot p50/p99 "
              f"{row['snapshot_latency']['p50_ms']:.1f}/"
              f"{row['snapshot_latency']['p99_ms']:.1f} ms  "
              f"failures {row['failures']}")

    report = {
        "quick": bool(args.quick),
        "workers": args.workers,
        "max_pending": args.max_pending,
        "profiles": {profile.name: {
            "streams": profile.streams,
            "events_per_stream": profile.events_per_stream,
            "batch_events": profile.batch_events,
            "coalesce": profile.coalesce,
            "connections": profile.connections,
            "source": profile.source,
            "scenario": profile.scenario or None,
            "description": profile.description,
        } for profile in profiles},
    }
    if args.compare:
        outcome = compare_profiles(profiles, num_workers=args.workers,
                                   max_pending=args.max_pending)
        for row in outcome["rows"]:
            show(row)
        for comparison in outcome["comparisons"]:
            match = "ok" if comparison["digest_match"] else "MISMATCH"
            print(f"{comparison['profile']:>24} speedup "
                  f"{comparison['speedup']:.2f}x  digests {match}")
        report.update(outcome)
        mismatched = [comparison["profile"]
                      for comparison in outcome["comparisons"]
                      if not comparison["digest_match"]]
        if mismatched:
            print(f"error: legacy/fast digests diverge for: "
                  f"{', '.join(mismatched)}", file=sys.stderr)
            return 1
    else:
        rows = []
        for profile in profiles:
            row = run_profile(profile, data_plane=args.data_plane,
                              num_workers=args.workers,
                              max_pending=args.max_pending)
            show(row)
            rows.append(row)
        report["rows"] = rows
    if args.output != "-":
        atomic_write_json(args.output, report)
        print(f"wrote {args.output}")
    return 0


def _run_snapshot(args: argparse.Namespace) -> int:
    import json

    from .service import ProfileClient, ServiceError

    if not args.stats and not args.stream:
        print("error: name a --stream or ask for --stats",
              file=sys.stderr)
        return 2
    try:
        with ProfileClient(host=args.host, port=args.port) as client:
            if args.stats:
                print(json.dumps(client.server_stats(), indent=2))
            else:
                _print_snapshot(client.snapshot(args.stream), args.top)
    except ServiceError as error:
        print(f"error: server refused ({error.code}): {error}",
              file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"stream": _run_stream, "trace": _run_trace,
                "record": _run_record, "serve": _run_serve,
                "push": _run_push, "snapshot": _run_snapshot,
                "bench": _run_bench, "scenario": _run_scenario,
                "loadgen": _run_loadgen}
    try:
        return handlers[args.command](args)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ConnectionError as error:
        print(f"error: cannot reach the profile server: {error}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
