"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists
so ``pip install -e . --no-build-isolation --no-use-pep517`` works on
environments without the ``wheel`` package (offline machines).
"""

from setuptools import setup

setup()
