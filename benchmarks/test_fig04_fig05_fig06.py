"""Benches for the workload-characterization figures (4, 5, 6).

Shape criteria asserted (per DESIGN.md):

* Figure 4 -- distinct tuples grow strongly with interval length;
  gcc/go see the most, li/m88ksim the fewest.
* Figure 5 -- candidate counts are small versus distinct tuples and
  roughly independent of interval length at the 1 % threshold.
* Figure 6 -- deltablue is unstable at long intervals but stable at
  10 K; m88ksim and vortex are the opposite.
"""

import statistics

import pytest

from repro.experiments import fig04_distinct_tuples, fig05_candidates, fig06_variation


@pytest.mark.benchmark(group="fig04")
def test_fig04_distinct_tuples(run_experiment, scale):
    report = run_experiment(fig04_distinct_tuples.run, scale)
    lengths = report.data["lengths"]
    distinct = report.data["distinct"]
    shortest, longest = lengths[0], lengths[-1]
    for name in scale.benchmarks:
        growth = distinct[name][longest] / distinct[name][shortest]
        # Strong growth with interval length; warm-heavy models (li)
        # grow sub-linearly, so the bound saturates.
        assert growth > min(3.5, 0.3 * (longest / shortest))
    if {"gcc", "go", "li", "m88ksim"} <= set(scale.benchmarks):
        at_10k = {name: distinct[name][shortest]
                  for name in scale.benchmarks}
        ranked = sorted(at_10k, key=at_10k.get, reverse=True)
        assert set(ranked[:2]) == {"gcc", "go"}
        assert set(ranked[-2:]) == {"li", "m88ksim"}


@pytest.mark.benchmark(group="fig05")
def test_fig05_candidates(run_experiment, scale):
    report = run_experiment(fig05_candidates.run, scale)
    lengths = report.data["lengths"]
    one_percent = report.data["candidates"][0.01]
    for name in scale.benchmarks:
        counts = [one_percent[name][length] for length in lengths]
        # Tiny (tens) and stable across interval lengths.
        assert max(counts) <= 40
        assert max(counts) - min(counts) <= 8


@pytest.mark.benchmark(group="fig06")
def test_fig06_variation(run_experiment, scale):
    report = run_experiment(fig06_variation.run, scale)
    variations = report.data["variations"]
    short_label = "10K @ 1%"
    long_label = next(label for label in variations
                      if label != short_label)

    def median(label, name):
        series = variations[label][name]
        return statistics.median(series) if series else 0.0

    if "deltablue" in scale.benchmarks \
            and scale.long_interval_length >= 500_000:
        assert median(long_label, "deltablue") > \
            median(short_label, "deltablue")
    for name in ("m88ksim", "vortex"):
        if name in scale.benchmarks:
            assert median(short_label, name) > median(long_label, name)
