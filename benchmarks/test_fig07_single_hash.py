"""Bench for Figure 7: single-hash retaining/resetting matrix.

Shape criteria: both optimizations reduce total error on average;
P1-R1 is the best configuration; the long operating point is much
harder than the short one.
"""

import pytest

from repro.experiments import fig07_single_hash
from repro.experiments.sweeps import average_error


@pytest.mark.benchmark(group="fig07")
def test_fig07_single_hash(run_experiment, scale):
    report = run_experiment(fig07_single_hash.run, scale)
    panels = list(report.data)
    for panel in panels:
        results = report.data[panel]
        averages = {label: average_error(results, label)
                    for label in ("P0-R0", "P0-R1", "P1-R0", "P1-R1")}
        assert averages["P1-R1"] == min(averages.values())
        assert averages["P0-R1"] < averages["P0-R0"]
        assert averages["P1-R0"] < averages["P0-R0"]
    short_panel, long_panel = panels
    assert (average_error(report.data[long_panel], "P0-R0")
            > average_error(report.data[short_panel], "P0-R0"))
