"""Benches for the extension experiments.

* Section 7 area accounting (7 / 16 KB budgets).
* Stratified-sampler contrast: the baseline needs software (messages,
  interrupts, overhead) where the multi-hash profiler needs none.
* Hash-table size ablation (Section 6.3's unshown study): 2 K entries
  close to larger tables, clearly better than 512.
* Adaptive interval selection (Section 5.6.1's proposal).
"""

from dataclasses import replace

import pytest

from repro.experiments import (adaptive_interval, area_budget,
                               stratified_baseline, table_size_ablation)


@pytest.mark.benchmark(group="area")
def test_area_budget(run_experiment, scale):
    report = run_experiment(area_budget.run, scale)
    assert 6_500 < report.data[("1%", 4)].total_bytes < 7_500
    assert 15_500 < report.data[("0.1%", 4)].total_bytes < 16_500


@pytest.mark.benchmark(group="stratified")
def test_stratified_baseline(run_experiment, scale):
    report = run_experiment(stratified_baseline.run, scale)
    for name, row in report.data.items():
        assert row["interrupts"] > 0
        assert row["software_overhead"] > 0.0
    overheads = [row["software_overhead"]
                 for row in report.data.values()]
    # Nontrivial software cost, in the ballpark the papers discuss.
    assert max(overheads) > 0.005


@pytest.mark.benchmark(group="tablesize")
def test_table_size_ablation(run_experiment, scale):
    focused = replace(scale, benchmarks=tuple(
        name for name in scale.benchmarks
        if name in ("gcc", "go", "sis", "deltablue")) or scale.benchmarks)
    report = run_experiment(table_size_ablation.run, focused)
    results = report.data["results"]

    def average(label):
        values = [by_label[label].percent()
                  for by_label in results.values()]
        return sum(values) / len(values)

    # "2K performs almost as well as larger hash-tables, while still
    # outperforming hash-tables of size 1K or smaller."
    assert average("2048e") <= average("512e")
    assert average("2048e") <= average("8192e") + 1.0


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_interval(run_experiment, scale):
    report = run_experiment(adaptive_interval.run, scale)
    for name, choice in report.data.items():
        assert choice.selected in choice.mean_variation
