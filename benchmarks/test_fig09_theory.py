"""Bench for Figure 9: theoretical false-positive bound.

Shape criteria: every curve falls to an optimum then rises; the
optimum moves right with the counter budget; 1,000 entries degrade
beyond 4 tables (the paper's explicit callout).
"""

import pytest

from repro.experiments import fig09_theory


@pytest.mark.benchmark(group="fig09")
def test_fig09_theory(run_experiment, scale):
    report = run_experiment(fig09_theory.run, scale)
    curves = report.data["curves"]
    optima = report.data["optima"]
    assert optima[1000] == 4
    budgets = sorted(optima)
    assert [optima[b] for b in budgets] == sorted(
        optima[b] for b in budgets)
    for budget, curve in curves.items():
        best = min(range(len(curve)), key=curve.__getitem__)
        assert all(curve[i] >= curve[i + 1] - 1e-12 for i in range(best))
        assert all(curve[i] <= curve[i + 1] + 1e-12
                   for i in range(best, len(curve) - 1))
