"""Bench for Figure 13: per-interval error across profile cycles.

Shape criteria: the best multi-hash removes most of the best single
hash's per-interval error spikes -- total spike count (cycles over
10 % error) drops, and the mean per-cycle error falls for the stressed
benchmarks.
"""

import pytest

from repro.experiments import fig13_per_interval


@pytest.mark.benchmark(group="fig13")
def test_fig13_per_interval(run_experiment, scale):
    report = run_experiment(fig13_per_interval.run, scale)
    spikes = report.data["spikes"]
    total_bsh = sum(bsh for bsh, _ in spikes.values())
    total_mh4 = sum(mh4 for _, mh4 in spikes.values())
    assert total_mh4 <= total_bsh

    series = report.data["series"]
    for name in scale.benchmarks:
        bsh_mean = sum(series["BSH"][name]) / len(series["BSH"][name])
        mh4_mean = sum(series["MH4"][name]) / len(series["MH4"][name])
        # MH4 is at least as accurate per cycle on every benchmark
        # (small absolute tolerance for near-zero cases).
        assert mh4_mean <= bsh_mean + 0.005
