"""Throughput benchmarks for the profiler backends.

Times the three feeding paths the CLI ``bench`` subcommand reports --
the per-event scalar reference, the chunked scalar production path,
and the vectorized array kernels -- on the paper's two headline
architectures (fig07 best single-hash, fig12 best multi-hash) over a
calibrated gcc stream.  pytest-benchmark handles the statistics::

    PYTHONPATH=src pytest benchmarks/test_kernel_bench.py --benchmark-only

The authoritative machine-readable numbers live in
``benchmarks/results/BENCH_kernels.json``; regenerate them with
``repro-profile bench``.
"""

from __future__ import annotations

import pytest

from repro.cli import (_bench_feed_chunked, _bench_feed_scalar,
                       _bench_feed_vectorized, _bench_profiler)
from repro.core.config import (IntervalSpec, best_multi_hash,
                               best_single_hash)
from repro.workloads.benchmarks import benchmark_generator

#: Four 10K-event intervals at 1 %: big enough to amortize chunk setup,
#: small enough that the per-event reference rounds stay quick.
SPEC = IntervalSpec(length=10_000, threshold=0.01)
EVENTS = 40_000

ARCHITECTURES = {
    "fig07-single-hash": best_single_hash,
    "fig12-multi-hash": best_multi_hash,
}

FEEDS = {
    "scalar": ("scalar", _bench_feed_scalar),
    "scalar-chunked": ("scalar", _bench_feed_chunked),
    "vectorized": ("vectorized", _bench_feed_vectorized),
}


@pytest.fixture(scope="module")
def stream():
    return benchmark_generator("gcc", seed=7).chunk(EVENTS)


@pytest.mark.parametrize("architecture", sorted(ARCHITECTURES))
@pytest.mark.parametrize("feed_name", sorted(FEEDS))
def test_backend_throughput(benchmark, stream, architecture, feed_name):
    backend, feed = FEEDS[feed_name]
    config = ARCHITECTURES[architecture](SPEC).with_backend(backend)
    pcs, values = stream

    def round():
        feed(_bench_profiler(config), pcs, values, SPEC)

    benchmark.pedantic(round, rounds=3, iterations=1)
    benchmark.extra_info["events"] = EVENTS
    benchmark.extra_info["events_per_second"] = \
        EVENTS / benchmark.stats.stats.min
