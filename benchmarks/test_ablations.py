"""Bench for the mechanism ablations (extension).

Shape criteria: removing shielding or retaining never helps; 8-bit
counters cannot represent the full-scale threshold (1,000) and go
blind with false negatives when run at ``REPRO_FULL`` scale.
"""

import pytest

from repro.experiments import ablations


def _average(results, label):
    values = [by_label[label].percent() for by_label in results.values()]
    return sum(values) / len(values)


@pytest.mark.benchmark(group="ablations")
def test_ablations(run_experiment, scale):
    report = run_experiment(ablations.run, scale)
    results = report.data["results"]
    best = _average(results, "best")
    assert _average(results, "no-shield") >= best - 0.01
    assert _average(results, "no-retain") >= best - 0.01
    if report.data["threshold_count"] > 255:
        # An 8-bit counter saturates below the threshold: the profiler
        # can never observe a crossing and misses everything.
        assert _average(results, "8b-counters") > 50.0
