"""Bench for Figure 12: best multi-hash vs best single hash (value).

Shape criteria: the 4-table C1-R0 multi-hash beats the best single
hash on average at both operating points; its average error is under
1 % at 10 K @ 1 %; and the error grows again toward 16 tables.
"""

import pytest

from repro.experiments import fig12_best_multihash


@pytest.mark.benchmark(group="fig12")
def test_fig12_best_multihash(run_experiment, scale):
    report = run_experiment(fig12_best_multihash.run, scale)
    short_label = "10K @ 1%"
    long_label = next(label for label in report.data
                      if label.endswith("0.1%"))

    short_averages = report.data[f"{short_label}/averages"]
    long_averages = report.data[f"{long_label}/averages"]

    # Headline: multi-hash average error under 1 % at the short point.
    assert short_averages["MH4"] < 1.0
    # MH4 beats BSH at both operating points.
    assert short_averages["MH4"] <= short_averages["BSH"]
    assert long_averages["MH4"] < long_averages["BSH"]
    # The sweet spot: 4 tables at or near the family minimum, with 16
    # tables clearly worse.
    family = {label: long_averages[label]
              for label in ("MH1", "MH2", "MH4", "MH8", "MH16")}
    best = min(family.values())
    assert family["MH4"] <= max(2.0 * best, best + 0.5)
    assert family["MH16"] > 3.0 * family["MH4"] + 1.0
    # One table is no better than the single-hash baseline family.
    assert family["MH1"] > family["MH4"]
