"""Benches for Figures 10/11: multi-hash C x R design space on gcc/go.

Shape criteria: C1-R0 is the best (or within noise of best)
configuration on average; conservative update gives a large error
reduction at high table counts; immediate reset manufactures false
negatives.
"""

import pytest

from repro.experiments import fig10_multihash_design
from repro.metrics import Category


def _config_average(results, label):
    values = [by_label[label].percent() for by_label in results.values()]
    return sum(values) / len(values)


def _assert_design_space_shapes(results):
    labels = {f"{n}T-C{c}-R{r}" for n in (1, 2, 4, 8)
              for c in (0, 1) for r in (0, 1)}
    assert labels == {label for by_label in results.values()
                      for label in by_label}
    # Conservative update is a large win at 8 tables (when the C0
    # configuration suffers at all -- at very short intervals both can
    # round to zero).
    c0_average = _config_average(results, "8T-C0-R0")
    if c0_average > 1.0:
        assert _config_average(results, "8T-C1-R0") < c0_average / 2
    # The paper's chosen configuration is at or near the global best.
    averages = {label: _config_average(results, label)
                for label in labels}
    best = min(averages.values())
    assert averages["4T-C1-R0"] <= max(2.0 * best, best + 1.0)
    # Immediate reset adds false negatives at 8 tables with C1.
    fn_r1 = sum(by_label["8T-C1-R1"].breakdown()[Category.FALSE_NEGATIVE]
                for by_label in results.values())
    fn_r0 = sum(by_label["8T-C1-R0"].breakdown()[Category.FALSE_NEGATIVE]
                for by_label in results.values())
    assert fn_r1 >= fn_r0


@pytest.mark.benchmark(group="fig10")
def test_fig10_short_intervals(run_experiment, scale):
    report = run_experiment(fig10_multihash_design.run, scale)
    _assert_design_space_shapes(report.data["results"])


@pytest.mark.benchmark(group="fig11")
def test_fig11_long_intervals(run_experiment, scale):
    report = run_experiment(fig10_multihash_design.run_long, scale)
    _assert_design_space_shapes(report.data["results"])
