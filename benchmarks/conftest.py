"""Benchmark harness configuration.

Each bench target regenerates one figure of the paper via its
experiment module, printing the same rows/series the figure plots and
saving them under ``benchmarks/results/``.  Timing is reported by
pytest-benchmark (one round -- these are experiments, not microbenches).

Scale: the ``REPRO_*`` environment variables (see
:mod:`repro.experiments.base`) control interval lengths and counts;
``REPRO_FULL=1`` runs the paper's exact operating points.
"""

import os

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment once under pytest-benchmark, print and save
    its report."""

    def runner(function, *args, **kwargs):
        report = benchmark.pedantic(function, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        rendered = report.render()
        directory = os.path.join(os.path.dirname(__file__), "results")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{report.experiment}.txt")
        with open(path, "w") as sink:
            sink.write(rendered + "\n")
        with capsys.disabled():
            print()
            print(rendered)
        return report

    return runner
