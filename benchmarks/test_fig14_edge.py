"""Bench for Figure 14: best multi-hash for edge profiling.

Shape criteria: the value-profiling conclusions carry over to edge
streams -- the 4-table multi-hash outperforms the single-table
configurations and the best single hash on average at the long
operating point.
"""

import pytest

from repro.experiments import fig14_edge


@pytest.mark.benchmark(group="fig14")
def test_fig14_edge(run_experiment, scale):
    report = run_experiment(fig14_edge.run, scale)
    long_label = next(label for label in report.data
                      if label.endswith("0.1%")
                      and not label.endswith("averages"))
    averages = report.data[f"{long_label}/averages"]
    assert averages["MH4"] <= averages["BSH"]
    assert averages["MH4"] <= averages["MH1"]
    short_averages = report.data["10K @ 1%/averages"]
    assert short_averages["MH4"] < 1.0
