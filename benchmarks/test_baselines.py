"""Bench for the Section 4 baseline comparison (extension).

Shape criteria: the multi-hash profiler matches or beats every other
family at both operating points with zero software involvement; the
stratified sampler's software-reconstructed profile is far less
accurate at the same sampling budget; the hot-spot detector spends a
meaningful fraction of loop-heavy benchmarks inside detected hot spots
(it answers a different question, not a worse one).
"""

import pytest

from repro.experiments import baselines


@pytest.mark.benchmark(group="baselines")
def test_baselines(run_experiment, scale):
    report = run_experiment(baselines.run, scale)
    for name in scale.benchmarks:
        short = report.data[name]
        assert short["MH4"] <= short["BSH"] + 0.01
        assert short["MH4"] <= short["Stratified"] + 0.01
        long = report.data[f"{name}/long"]
        assert long["MH4"] <= long["BSH"] + 0.01
    hot_fractions = [report.data[name]["hot_fraction"]
                     for name in scale.benchmarks]
    assert max(hot_fractions) > 5.0
