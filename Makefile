# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full bench-kernels bench-service bench-experiments experiments examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The paper's exact operating points (1M-event long intervals).
bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Kernel + multi-session fold throughput; the result file is written
# atomically (temp file + rename), so an interrupted run never leaves
# a truncated BENCH_kernels.json behind.
bench-kernels:
	$(PYTHON) -m repro.cli bench -o benchmarks/results/BENCH_kernels.json

# Service load harness: every shipped profile down both data planes
# (legacy vs zero-copy fast path), with per-profile speedups and
# digest-equality checks; writes benchmarks/results/BENCH_service.json.
bench-service:
	$(PYTHON) -m repro.cli loadgen --compare \
		-o benchmarks/results/BENCH_service.json

experiments:
	$(PYTHON) -m repro.experiments.runner all

# Serial vs parallel vs warm-cache suite wall-clock; writes
# benchmarks/results/BENCH_experiments.json.
bench-experiments:
	$(PYTHON) -m repro.experiments.runner bench

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

# Scratch and caches only: benchmarks/results and src/*.egg-info are
# checked in and must survive a clean.
clean:
	rm -rf .pytest_cache .hypothesis build dist
	find . -name __pycache__ -type d -exec rm -rf {} +
	find benchmarks/results -name '.bench-*.json' -delete 2>/dev/null || true
