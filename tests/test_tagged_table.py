"""Tests for the tagged profile-buffer baseline (repro.core.tagged_table)."""

import pytest

from repro.core.config import IntervalSpec
from repro.core.tagged_table import (TaggedTableConfig, TaggedTableProfiler,
                                     area_equivalent_config)

SPEC = IntervalSpec(length=1_000, threshold=0.01)  # threshold_count 10


def config(**overrides) -> TaggedTableConfig:
    base = dict(interval=SPEC, sets=4, ways=2, miss_limit=3)
    base.update(overrides)
    return TaggedTableConfig(**base)


def feed(profiler, event, times):
    for _ in range(times):
        profiler.observe(event)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(sets=3), dict(sets=0), dict(ways=0), dict(miss_limit=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            config(**kwargs)

    def test_geometry(self):
        c = config(sets=8, ways=4)
        assert c.total_entries == 32
        assert c.index_bits == 3


class TestCounting:
    def test_exact_counts_without_pressure(self):
        profiler = TaggedTableProfiler(config())
        feed(profiler, (1, 1), 25)
        feed(profiler, (2, 2), 5)  # below threshold
        profile = profiler.end_interval()
        assert profile.candidates == {(1, 1): 25}

    def test_counter_saturates(self):
        profiler = TaggedTableProfiler(config(counter_bits=4))
        feed(profiler, (1, 1), 100)
        profile = profiler.end_interval()
        assert profile.candidates == {(1, 1): 15}

    def test_retaining_keeps_candidates(self):
        profiler = TaggedTableProfiler(config(retaining=True))
        feed(profiler, (1, 1), 20)
        profiler.end_interval()
        feed(profiler, (1, 1), 12)
        assert profiler.end_interval().candidates == {(1, 1): 12}

    def test_no_retaining_flushes(self):
        profiler = TaggedTableProfiler(config(retaining=False))
        feed(profiler, (1, 1), 20)
        profiler.end_interval()
        assert profiler.occupancy() == 0


class TestReplacement:
    def _fill_one_set(self, profiler, count):
        """Distinct tuples that all land in the same set."""
        target = None
        members = []
        probe = 0
        while len(members) < count:
            probe += 1
            event = (0xC000_0000 + probe, probe)
            index = profiler.hash_function(event)
            if target is None:
                target = index
            if index == target:
                members.append(event)
        return members

    def test_miss_limit_protects_established_entries(self):
        profiler = TaggedTableProfiler(config(sets=4, ways=1,
                                              miss_limit=5))
        resident, challenger = self._fill_one_set(profiler, 2)
        feed(profiler, resident, 10)
        feed(profiler, challenger, 4)  # below miss limit
        assert profiler.capacity_drops == 4
        assert profiler.evictions == 0
        profile = profiler.end_interval()
        assert resident in profile.candidates

    def test_eviction_after_miss_limit(self):
        profiler = TaggedTableProfiler(config(sets=4, ways=1,
                                              miss_limit=2))
        resident, challenger = self._fill_one_set(profiler, 2)
        feed(profiler, resident, 3)
        feed(profiler, challenger, 2)  # second miss evicts
        assert profiler.evictions == 1
        feed(profiler, challenger, 9)
        profile = profiler.end_interval()
        assert challenger in profile.candidates
        assert resident not in profile.candidates

    def test_lowest_count_is_victim(self):
        profiler = TaggedTableProfiler(config(sets=4, ways=2,
                                              miss_limit=1))
        heavy, light, challenger = self._fill_one_set(profiler, 3)
        feed(profiler, heavy, 15)
        feed(profiler, light, 2)
        feed(profiler, challenger, 1)
        profile = profiler.end_interval()
        assert heavy in profile.candidates


class TestAreaEquivalence:
    def test_budget_respected(self):
        c = area_equivalent_config(SPEC, budget_bytes=7_168)
        entry_bits = 54 + 24
        assert c.total_entries * entry_bits <= 7_168 * 8
        # And uses most of it (within the power-of-two rounding).
        assert c.total_entries * entry_bits > 7_168 * 8 / 2.5

    def test_fewer_entries_than_tagless_at_same_area(self):
        c = area_equivalent_config(SPEC, budget_bytes=6_144)
        assert c.total_entries < 2048  # 6 KB buys 2K tagless counters
