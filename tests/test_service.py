"""Tests for the streaming profile service (repro.service).

The load-bearing property is *equivalence*: candidates and error
summaries obtained through the server -- streams pushed in arbitrary
batches, sharded over multiple worker processes -- must be identical to
a direct in-process :class:`ProfilingSession` run over the same events.
Streams are compared via recorded traces because the synthetic
generators' content depends on draw batching; traces pin the exact
event sequence on both sides.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.profiling.session import ProfilingSession
from repro.service import (HashRing, ProfileClient, ProfileServer,
                           ProtocolError, ServiceError)
from repro.service import protocol
from repro.service.worker import _Worker
from repro.workloads.benchmarks import benchmark_generator
from repro.workloads.traces import Trace

INTERVAL = IntervalSpec(length=2_000, threshold=0.01)
CONFIG = ProfilerConfig(interval=INTERVAL, total_entries=256,
                        num_tables=4, conservative_update=True)


def make_trace(benchmark: str, seed: int, events: int) -> Trace:
    pcs, values = benchmark_generator(benchmark,
                                      seed=seed).chunk(events)
    return Trace(pcs=pcs, values=values,
                 source=f"benchmark:{benchmark}")


def direct_run(trace: Trace, config: ProfilerConfig = CONFIG):
    return ProfilingSession(config,
                            keep_profiles=True).run(trace).single()


def streams_on_distinct_shards(num_workers: int, count: int):
    """Stream ids guaranteed to land on *count* distinct shards."""
    ring = HashRing(range(num_workers))
    chosen, shards = [], set()
    index = 0
    while len(chosen) < count:
        stream = f"stream-{index}"
        shard = ring.shard_for(stream)
        if shard not in shards or len(shards) >= num_workers:
            chosen.append(stream)
            shards.add(shard)
        index += 1
    return chosen, shards


def assert_matches_direct(snapshot: dict, direct) -> None:
    """Server snapshot == direct in-process run, interval by interval."""
    summary = direct.summary
    assert snapshot["summary"]["num_intervals"] == summary.num_intervals
    assert snapshot["summary"]["net_error_percent"] == pytest.approx(
        summary.percent(), abs=1e-12)
    assert snapshot["summary"]["per_interval_error_percent"] == \
        pytest.approx([100.0 * e for e in summary.series()], abs=1e-12)
    for wire, profile in zip(snapshot["intervals"], direct.profiles):
        assert wire["index"] == profile.index
        assert wire["events_observed"] == profile.events_observed
        candidates = {(pc, value): count
                      for pc, value, count in wire["candidates"]}
        assert candidates == profile.candidates


# ---------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------

class TestProtocol:
    def test_json_frame_round_trip(self):
        frame = protocol.encode_json(protocol.T_OPEN,
                                     {"stream": "s", "config": {}})
        msg_type, length = protocol.decode_header(
            frame[:protocol.HEADER.size])
        assert msg_type == protocol.T_OPEN
        body = protocol.decode_json(frame[protocol.HEADER.size:])
        assert body == {"stream": "s", "config": {}}
        assert length == len(frame) - protocol.HEADER.size

    def test_batch_round_trip(self):
        pcs = np.arange(100, dtype=np.uint64) * 8
        values = np.arange(100, dtype=np.uint64) + (1 << 60)
        frame = protocol.encode_batch("bench-1", pcs, values)
        _, length = protocol.decode_header(frame[:protocol.HEADER.size])
        stream, out_pcs, out_values = protocol.decode_batch(
            frame[protocol.HEADER.size:])
        assert stream == "bench-1"
        np.testing.assert_array_equal(out_pcs, pcs)
        np.testing.assert_array_equal(out_values, values)

    def test_bad_magic_rejected(self):
        frame = bytearray(protocol.encode_json(protocol.T_STATS, {}))
        frame[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="bad magic"):
            protocol.decode_header(bytes(frame[:protocol.HEADER.size]))

    def test_bad_version_rejected(self):
        frame = bytearray(protocol.encode_json(protocol.T_STATS, {}))
        frame[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            protocol.decode_header(bytes(frame[:protocol.HEADER.size]))

    def test_unknown_type_rejected(self):
        header = protocol.HEADER.pack(protocol.MAGIC,
                                      protocol.PROTOCOL_VERSION,
                                      0x7F, 0)
        with pytest.raises(ProtocolError, match="unknown frame type"):
            protocol.decode_header(header)

    def test_oversized_payload_rejected(self):
        header = protocol.HEADER.pack(protocol.MAGIC,
                                      protocol.PROTOCOL_VERSION,
                                      protocol.T_STATS,
                                      protocol.MAX_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_header(header)

    def test_batch_size_mismatch_rejected(self):
        frame = protocol.encode_batch(
            "s", np.arange(4, dtype=np.uint64),
            np.arange(4, dtype=np.uint64))
        with pytest.raises(ProtocolError, match="declares"):
            protocol.decode_batch(frame[protocol.HEADER.size:-8])

    def test_non_object_json_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_json(b"[1, 2]")

    def test_oversized_header_raises_frame_too_large(self):
        header = protocol.HEADER.pack(protocol.MAGIC,
                                      protocol.PROTOCOL_VERSION,
                                      protocol.T_BATCH,
                                      protocol.MAX_PAYLOAD + 7)
        with pytest.raises(protocol.FrameTooLarge) as excinfo:
            protocol.decode_header(header)
        assert excinfo.value.length == protocol.MAX_PAYLOAD + 7
        # The refinement must stay a ProtocolError: generic handlers
        # that predate it keep working.
        assert isinstance(excinfo.value, ProtocolError)

    def test_decode_batch_is_zero_copy(self):
        pcs = np.arange(64, dtype=np.uint64)
        values = pcs + np.uint64(1 << 40)
        payload = protocol.encode_batch(
            "s", pcs, values)[protocol.HEADER.size:]
        _, out_pcs, out_values = protocol.decode_batch(payload)
        assert np.shares_memory(out_pcs, np.frombuffer(payload,
                                                       dtype=np.uint8))
        assert np.shares_memory(out_values, np.frombuffer(payload,
                                                          dtype=np.uint8))

    def test_decode_batch_accepts_memoryview_and_bytearray(self):
        pcs = np.arange(16, dtype=np.uint64)
        payload = protocol.encode_batch(
            "s", pcs, pcs)[protocol.HEADER.size:]
        for buffer in (memoryview(payload), bytearray(payload)):
            stream, out_pcs, out_values = protocol.decode_batch(buffer)
            assert stream == "s"
            np.testing.assert_array_equal(out_pcs, pcs)
            np.testing.assert_array_equal(out_values, pcs)

    def test_coalesced_chunks_frame_equals_concatenated_batch(self):
        rng = np.random.default_rng(5)
        chunks = [
            (rng.integers(1 << 48, size=n, dtype=np.uint64),
             rng.integers(1 << 48, size=n, dtype=np.uint64))
            for n in (100, 1, 57)]
        coalesced = protocol.encode_batch_chunks("s", chunks)
        merged = protocol.encode_batch(
            "s", np.concatenate([pcs for pcs, _ in chunks]),
            np.concatenate([values for _, values in chunks]))
        assert coalesced == merged

    def test_parse_batch_header_matches_decode(self):
        pcs = np.arange(32, dtype=np.uint64)
        payload = protocol.encode_batch(
            "tenant-9", pcs, pcs)[protocol.HEADER.size:]
        stream, count, body_start = protocol.parse_batch_header(payload)
        assert (stream, count) == ("tenant-9", 32)
        via_offset = np.frombuffer(payload, dtype=protocol.WIRE_DTYPE,
                                   count=count, offset=body_start)
        np.testing.assert_array_equal(via_offset, pcs)

    def test_empty_chunk_list_rejected_by_stream_check(self):
        # Zero chunks encode as a zero-event batch -- legal on the
        # wire, matching an empty encode_batch.
        frame = protocol.encode_batch_chunks("s", [])
        stream, out_pcs, _ = protocol.decode_batch(
            frame[protocol.HEADER.size:])
        assert stream == "s" and len(out_pcs) == 0


# ---------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------

class TestHashRing:
    def test_deterministic_across_instances(self):
        streams = [f"s{i}" for i in range(200)]
        first = [HashRing(range(4)).shard_for(s) for s in streams]
        second = [HashRing(range(4)).shard_for(s) for s in streams]
        assert first == second

    def test_uses_every_shard(self):
        ring = HashRing(range(4))
        spread = ring.spread([f"s{i}" for i in range(400)])
        assert all(count > 0 for count in spread.values())

    def test_resharding_moves_few_streams(self):
        streams = [f"s{i}" for i in range(1000)]
        before = HashRing(range(4))
        after = HashRing(range(5))
        moved = sum(before.shard_for(s) != after.shard_for(s)
                    for s in streams)
        # A modulo split would move ~4/5 of the streams; consistent
        # hashing should move roughly 1/5.
        assert moved < len(streams) // 2


# ---------------------------------------------------------------------
# Worker (in-process unit tests, no multiprocessing)
# ---------------------------------------------------------------------

class TestWorker:
    def _open(self, worker, stream="s1"):
        reply = worker.open({"stream": stream,
                             "config": CONFIG.to_dict()})
        assert reply["ok"], reply
        return reply

    def test_open_twice_fails(self):
        worker = _Worker(0, snapshot_intervals=8)
        self._open(worker)
        reply = worker.open({"stream": "s1",
                             "config": CONFIG.to_dict()})
        assert not reply["ok"] and reply["code"] == "stream-exists"

    def test_batch_unknown_stream_fails(self):
        worker = _Worker(0, snapshot_intervals=8)
        reply = worker.batch({"stream": "nope", "pcs": b"",
                              "values": b""})
        assert not reply["ok"] and reply["code"] == "unknown-stream"

    def test_bad_config_reported(self):
        reply = _Worker(0, 8).open({"stream": "s",
                                    "config": {"num_tables": 3}})
        assert not reply["ok"] and reply["code"] == "bad-config"

    def test_drain_flushes_open_interval(self):
        worker = _Worker(0, snapshot_intervals=8)
        self._open(worker)
        trace = make_trace("li", seed=3,
                           events=INTERVAL.length + 500)
        worker.batch({"stream": "s1",
                      "pcs": trace.pcs.tobytes(),
                      "values": trace.values.tobytes()})
        reply = worker.drain()
        assert reply["ok"] and reply["drained"] == ["s1"]
        final = worker.finished["s1"]
        assert final["flushed_partial"]
        assert final["summary"]["num_intervals"] == 2
        assert final["intervals"][-1]["events_observed"] == 500

    def test_stats_tracks_streams(self):
        worker = _Worker(3, snapshot_intervals=8)
        self._open(worker)
        trace = make_trace("li", seed=4, events=3000)
        worker.batch({"stream": "s1",
                      "pcs": trace.pcs.tobytes(),
                      "values": trace.values.tobytes()})
        stats = worker.stats()["stats"]
        assert stats["worker"] == 3
        assert stats["events"] == 3000
        assert stats["streams"]["s1"]["intervals_completed"] == 1
        assert stats["streams"]["s1"]["pending_events"] == 1000
        assert stats["events_per_second"] > 0


# ---------------------------------------------------------------------
# End-to-end server tests
# ---------------------------------------------------------------------

class TestServer:
    def test_equivalence_across_shards_and_streams(self):
        """The acceptance bar: two streams on two shards, pushed in
        interleaved odd-sized batches from two concurrent client
        connections, must match direct in-process runs exactly."""
        streams, shards = streams_on_distinct_shards(2, 2)
        traces = {
            streams[0]: make_trace("li", seed=11,
                                   events=3 * INTERVAL.length),
            streams[1]: make_trace("gcc", seed=12,
                                   events=3 * INTERVAL.length),
        }
        direct = {stream: direct_run(trace)
                  for stream, trace in traces.items()}
        with ProfileServer(num_workers=2) as server:
            assert len(shards) == 2
            clients = {stream: ProfileClient(port=server.port)
                       for stream in streams}
            try:
                for stream, client in clients.items():
                    client.open_stream(stream, CONFIG)
                # Interleave batches of coprime sizes across streams.
                cursors = {stream: 0 for stream in streams}
                batch = {streams[0]: 700, streams[1]: 1234}
                while any(cursors[s] < len(traces[s]) for s in streams):
                    for stream in streams:
                        start = cursors[stream]
                        if start >= len(traces[stream]):
                            continue
                        stop = start + batch[stream]
                        trace = traces[stream]
                        clients[stream].push(
                            stream, trace.pcs[start:stop],
                            trace.values[start:stop])
                        cursors[stream] = stop
                for stream, client in clients.items():
                    live = client.snapshot(stream)
                    assert live["intervals_completed"] == 3
                    final = client.close_stream(stream)
                    assert final["final"]
                    assert not final["flushed_partial"]
                    assert_matches_direct(final, direct[stream])
            finally:
                for client in clients.values():
                    client.close()

    def test_graceful_close_flushes_final_open_interval(self):
        trace = make_trace("li", seed=21,
                           events=2 * INTERVAL.length + 750)
        whole = direct_run(trace)  # 2 full intervals, tail discarded
        with ProfileServer(num_workers=2) as server:
            with ProfileClient(port=server.port) as client:
                client.open_stream("flush-me", CONFIG)
                client.push_trace("flush-me", trace, batch_events=997)
                final = client.close_stream("flush-me")
        assert final["flushed_partial"]
        assert final["summary"]["num_intervals"] == 3
        assert final["intervals"][-1]["events_observed"] == 750
        # The full intervals are unaffected by the flush.
        assert final["summary"]["per_interval_error_percent"][:2] == \
            pytest.approx([100.0 * e for e in whole.summary.series()],
                          abs=1e-12)

    def test_snapshot_after_close_is_retained(self):
        trace = make_trace("li", seed=22, events=INTERVAL.length)
        with ProfileServer(num_workers=1) as server:
            with ProfileClient(port=server.port) as client:
                client.open_stream("s", CONFIG)
                client.push_trace("s", trace)
                client.close_stream("s")
                late = client.snapshot("s")
                assert late["final"]
                assert late["summary"]["num_intervals"] == 1

    def test_server_drain_on_stop_shuts_workers_down(self):
        server = ProfileServer(num_workers=2)
        server.start()
        client = ProfileClient(port=server.port)
        client.open_stream("open-at-shutdown", CONFIG)
        client.push("open-at-shutdown",
                    *benchmark_generator("li", seed=5).chunk(500))
        client.close()
        server.stop()
        assert all(not handle.process.is_alive()
                   for handle in server._workers)

    def test_unknown_stream_errors(self):
        with ProfileServer(num_workers=1) as server:
            with ProfileClient(port=server.port) as client:
                with pytest.raises(ServiceError) as exc:
                    client.snapshot("never-opened")
                assert exc.value.code == "unknown-stream"

    def test_open_twice_errors(self):
        with ProfileServer(num_workers=1) as server:
            with ProfileClient(port=server.port) as client:
                client.open_stream("dup", CONFIG)
                with pytest.raises(ServiceError) as exc:
                    client.open_stream("dup", CONFIG)
                assert exc.value.code == "stream-exists"

    def test_malformed_frame_answered_and_connection_dropped(self):
        with ProfileServer(num_workers=1) as server:
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10) as raw:
                raw.sendall(b"\x00" * protocol.HEADER.size)
                reply = raw.recv(65536)
                msg_type, _ = protocol.decode_header(
                    reply[:protocol.HEADER.size])
                assert msg_type == protocol.T_ERROR
                body = protocol.decode_json(
                    reply[protocol.HEADER.size:])
                assert body["code"] == "protocol"
                assert raw.recv(1) == b""  # server hung up

    def test_stats_cover_server_and_workers(self):
        with ProfileServer(num_workers=2) as server:
            with ProfileClient(port=server.port) as client:
                client.open_stream("stat-stream", CONFIG)
                client.push("stat-stream",
                            *benchmark_generator("li",
                                                 seed=6).chunk(4096))
                stats = client.server_stats()
        assert stats["server"]["num_workers"] == 2
        assert stats["server"]["streams_open"] == 1
        assert stats["server"]["frames"] >= 3
        assert len(stats["workers"]) == 2
        assert sum(w.get("events", 0) for w in stats["workers"]) == 4096

    def test_smoke_push_benchmark_stream(self):
        """CI smoke: start a server, push one benchmark stream,
        assert a non-empty snapshot comes back."""
        with ProfileServer(num_workers=2) as server:
            with ProfileClient(port=server.port) as client:
                client.open_stream("smoke", CONFIG)
                client.push_generator(
                    "smoke", benchmark_generator("gcc", seed=1),
                    events=3 * INTERVAL.length, batch_events=4096)
                snapshot = client.snapshot("smoke")
        assert snapshot["intervals_completed"] == 3
        assert snapshot["intervals"]
        assert snapshot["intervals"][-1]["candidates"]
        assert snapshot["summary"]["num_intervals"] == 3


# ---------------------------------------------------------------------
# Data-plane edges: oversized frames, partial reads, plane parity
# ---------------------------------------------------------------------

def _recv_frame(raw: socket.socket):
    """Read one frame off a raw socket; returns (msg_type, body)."""
    data = b""
    while len(data) < protocol.HEADER.size:
        piece = raw.recv(protocol.HEADER.size - len(data))
        assert piece, "server closed mid-header"
        data += piece
    msg_type, length = protocol.decode_header(data)
    payload = b""
    while len(payload) < length:
        piece = raw.recv(length - len(payload))
        assert piece, "server closed mid-payload"
        payload += piece
    return msg_type, protocol.decode_json(payload)


class TestDataPlaneEdges:
    def test_oversized_frame_gets_clean_error_and_connection_survives(
            self, monkeypatch):
        stats_frame = protocol.encode_json(protocol.T_STATS, {})
        monkeypatch.setattr(protocol, "MAX_PAYLOAD", 8192)
        length = 16384  # over the patched limit; actually sent
        oversized = protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION,
            protocol.T_BATCH, length) + b"\x00" * length
        with ProfileServer(num_workers=1) as server:
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10) as raw:
                raw.sendall(oversized)
                msg_type, body = _recv_frame(raw)
                assert msg_type == protocol.T_ERROR
                assert body["code"] == "oversized"
                # The stream stayed in sync: the same connection still
                # serves well-formed requests.
                raw.sendall(stats_frame)
                msg_type, body = _recv_frame(raw)
                assert msg_type == protocol.T_OK
                assert body["server"]["protocol_errors"] == 1

    @pytest.mark.parametrize("piece", [1, 3, 7])
    def test_split_byte_feeds_parse_at_every_boundary(self, piece):
        """Frames delivered *piece* bytes at a time -- partial reads at
        every header and payload boundary -- must parse identically."""
        pcs = np.arange(100, dtype=np.uint64)
        wire = (protocol.encode_json(
                    protocol.T_OPEN,
                    {"stream": "drip", "config": CONFIG.to_dict()})
                + protocol.encode_batch("drip", pcs, pcs)
                + protocol.encode_json(protocol.T_SNAPSHOT,
                                       {"stream": "drip"}))
        with ProfileServer(num_workers=1) as server:
            with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10) as raw:
                replies = []
                sent = 0
                # Interleave sends and reads: the server replies per
                # frame, so drain replies as frames complete.
                raw.settimeout(10)
                for start in range(0, len(wire), piece):
                    raw.sendall(wire[start:start + piece])
                for _ in range(3):
                    replies.append(_recv_frame(raw))
        assert [msg_type for msg_type, _ in replies] == \
            [protocol.T_OK] * 3
        snapshot = replies[2][1]["snapshot"]
        assert snapshot["events"] == 100

    def test_client_reads_dribbled_replies(self):
        """The client's recv_into loop must survive 1-byte reads."""
        reply = protocol.encode_json(protocol.T_OK, {"ok": True,
                                                     "n": 7})

        class DripSocket:
            def __init__(self, data: bytes) -> None:
                self.data = data
                self.offset = 0

            def recv_into(self, view) -> int:
                if self.offset >= len(self.data):
                    return 0
                view[0:1] = self.data[self.offset:self.offset + 1]
                self.offset += 1
                return 1

            def sendall(self, data: bytes) -> None:
                pass

        client = ProfileClient.__new__(ProfileClient)
        client._recv_buffer = bytearray(4)  # forces regrowth too
        client._socket = DripSocket(reply)
        body = client._request(b"")
        assert body == {"ok": True, "n": 7}

    @pytest.mark.parametrize("data_plane", ["legacy", "fast"])
    def test_both_planes_match_direct_run(self, data_plane):
        trace = make_trace("gcc", seed=21, events=3 * INTERVAL.length)
        direct = direct_run(trace)
        with ProfileServer(num_workers=2,
                           data_plane=data_plane) as server:
            with ProfileClient(port=server.port) as client:
                client.open_stream("plane", CONFIG)
                client.push_trace("plane", trace, batch_events=777)
                snapshot = client.close_stream("plane")
        assert_matches_direct(snapshot, direct)

    def test_coalesced_push_matches_single_frames(self):
        trace = make_trace("li", seed=22, events=3 * INTERVAL.length)
        snapshots = {}
        for label, coalesce in (("single", 1), ("coalesced", 6)):
            with ProfileServer(num_workers=1) as server:
                with ProfileClient(port=server.port) as client:
                    client.open_stream("c", CONFIG)
                    client.push_trace("c", trace, batch_events=512,
                                      coalesce=coalesce)
                    snapshots[label] = client.close_stream("c")
        for snapshot in snapshots.values():
            snapshot.pop("batches", None)  # framing-dependent by design
        assert snapshots["single"] == snapshots["coalesced"]

    def test_grouped_ops_preserve_per_stream_order(self):
        """Many tenants multiplexed on one connection down the fast
        plane (grouped queue handoff) still apply each stream's
        batches in order: every stream matches its direct run."""
        streams = [f"order-{i}" for i in range(6)]
        traces = {stream: make_trace("gcc", seed=30 + i,
                                     events=2 * INTERVAL.length)
                  for i, stream in enumerate(streams)}
        direct = {stream: direct_run(trace)
                  for stream, trace in traces.items()}
        with ProfileServer(num_workers=2, data_plane="fast") as server:
            with ProfileClient(port=server.port) as client:
                for stream in streams:
                    client.open_stream(stream, CONFIG)
                for offset in range(0, 2 * INTERVAL.length, 500):
                    for stream in streams:
                        trace = traces[stream]
                        client.push(stream,
                                    trace.pcs[offset:offset + 500],
                                    trace.values[offset:offset + 500])
                for stream in streams:
                    assert_matches_direct(client.close_stream(stream),
                                          direct[stream])


# ---------------------------------------------------------------------
# Feeder equivalence (the property the service is built on)
# ---------------------------------------------------------------------

class TestFeederEquivalence:
    @pytest.mark.parametrize("batch_events", [1, 357, 2_000, 4_999,
                                              10_000])
    def test_any_batching_matches_run(self, batch_events):
        trace = make_trace("m88ksim", seed=31,
                           events=4 * INTERVAL.length)
        expected = direct_run(trace)
        session = ProfilingSession(CONFIG, keep_profiles=True)
        feeder = session.feeder()
        for start in range(0, len(trace), batch_events):
            stop = start + batch_events
            feeder.feed(trace.pcs[start:stop],
                        trace.values[start:stop])
        result = feeder.finish().single()
        assert result.summary.percent() == expected.summary.percent()
        assert [p.candidates for p in result.profiles] == \
            [p.candidates for p in expected.profiles]

    def test_trim_bounds_profiles_keeps_summary(self):
        trace = make_trace("li", seed=32, events=5 * INTERVAL.length)
        session = ProfilingSession(CONFIG, keep_profiles=True)
        feeder = session.feeder()
        feeder.feed(trace.pcs, trace.values)
        feeder.trim(2)
        result = feeder.snapshot().single()
        assert len(result.profiles) == 2
        assert result.profiles[-1].index == 4
        assert result.summary.num_intervals == 5


# ---------------------------------------------------------------------
# Backend parity through the service
# ---------------------------------------------------------------------

class TestBackendParity:
    """The same trace pushed to a scalar and a vectorized stream must
    produce byte-identical snapshots: the kernel parity guarantee has
    to survive the whole wire / worker / feeder pipeline."""

    @staticmethod
    def push_both(trace, config, batch_events):
        with ProfileServer(num_workers=2) as server:
            with ProfileClient(port=server.port) as client:
                for backend in ("scalar", "vectorized"):
                    client.open_stream(backend,
                                       config.with_backend(backend))
                    client.push_trace(backend, trace,
                                      batch_events=batch_events)
                return {backend: client.close_stream(backend)
                        for backend in ("scalar", "vectorized")}

    @staticmethod
    def assert_snapshots_identical(snapshots):
        scalar, vectorized = (snapshots["scalar"],
                              snapshots["vectorized"])
        assert scalar["backend"] == "scalar"
        assert vectorized["backend"] == "vectorized"
        neutral = {"stream", "backend"}
        assert {k: v for k, v in scalar.items() if k not in neutral} \
            == {k: v for k, v in vectorized.items() if k not in neutral}

    def test_snapshots_identical_across_backends(self):
        trace = make_trace("gcc", seed=41,
                           events=2 * INTERVAL.length + 311)
        snapshots = self.push_both(trace, CONFIG, batch_events=997)
        self.assert_snapshots_identical(snapshots)
        assert snapshots["scalar"]["flushed_partial"]

    @pytest.mark.slow
    @pytest.mark.parametrize("num_tables,conservative", [(1, False),
                                                         (4, True)])
    def test_stress_long_stream_parity(self, num_tables, conservative):
        config = ProfilerConfig(interval=INTERVAL, total_entries=256,
                                num_tables=num_tables,
                                retaining=True,
                                conservative_update=conservative)
        trace = make_trace("gcc", seed=42,
                           events=10 * INTERVAL.length)
        snapshots = self.push_both(trace, config, batch_events=1234)
        self.assert_snapshots_identical(snapshots)
        assert snapshots["scalar"]["intervals_completed"] == 10
