"""Tests for sparse memory (repro.simulator.memory)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulator.isa import WORD_MASK
from repro.simulator.memory import Memory


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory().load(12345) == 0

    def test_store_load_roundtrip(self):
        memory = Memory()
        memory.store(10, 99)
        assert memory.load(10) == 99

    def test_values_masked_to_word(self):
        memory = Memory()
        memory.store(0, 1 << 70)
        assert memory.load(0) == (1 << 70) & WORD_MASK

    def test_block_operations(self):
        memory = Memory()
        memory.store_block(100, [1, 2, 3])
        assert memory.load_block(100, 4) == [1, 2, 3, 0]

    def test_negative_address_rejected(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.load(-1)
        with pytest.raises(ValueError):
            memory.store(-1, 0)

    def test_footprint_and_clear(self):
        memory = Memory()
        memory.store(1, 1)
        memory.store(1, 2)  # overwrite, same word
        memory.store(2, 3)
        assert memory.footprint() == 2
        memory.clear()
        assert memory.footprint() == 0
        assert memory.load(1) == 0

    def test_written_words_sorted(self):
        memory = Memory()
        memory.store(5, 50)
        memory.store(2, 20)
        assert memory.written_words() == ((2, 20), (5, 50))

    @given(st.dictionaries(st.integers(min_value=0, max_value=10 ** 9),
                           st.integers(min_value=0, max_value=WORD_MASK),
                           max_size=50))
    def test_acts_like_a_dict_with_zero_default(self, writes):
        memory = Memory()
        for address, value in writes.items():
            memory.store(address, value)
        for address, value in writes.items():
            assert memory.load(address) == value
        assert memory.footprint() == len(writes)
