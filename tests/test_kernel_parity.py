"""Differential parity: the NumPy kernels equal the scalar reference.

The vectorized backend (:mod:`repro.core.kernels`) exists purely for
speed; its contract is **bit-identical** behaviour.  These properties
drive randomized streams through the scalar per-event reference and
the array kernels under hypothesis-generated configurations -- table
sizes, thresholds, P1/R1/C1 on/off, shielding, 1-4 hash tables, tiny
accumulators (forcing evictions and rejections) -- and assert equal
per-interval candidate sets, counts, cumulative stats, and
:class:`~repro.metrics.error.ErrorSummary` values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels
from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.kernels import (VectorizedMultiHashProfiler,
                                VectorizedSingleHashProfiler)
from repro.core.multi_hash import MultiHashProfiler, build_profiler
from repro.core.single_hash import SingleHashProfiler
from repro.profiling.session import ProfilingSession
from repro.workloads.benchmarks import benchmark_generator

SPEC = IntervalSpec(length=200, threshold=0.05)  # threshold_count 10

# Small tuple universe so aliasing, promotion and accumulator pressure
# are all frequent against 16..64-entry tables.
EVENTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=600)

FLAGS = st.tuples(st.booleans(), st.booleans(), st.booleans())

ACCUMULATORS = st.sampled_from([None, 1, 2, 4])


def scalar_class(config):
    single = config.num_tables == 1 and not config.conservative_update
    return SingleHashProfiler if single else MultiHashProfiler


def vectorized_class(config):
    single = config.num_tables == 1 and not config.conservative_update
    return (VectorizedSingleHashProfiler if single
            else VectorizedMultiHashProfiler)


def run_scalar(config, events):
    """Per-event reference run, closing intervals at SPEC boundaries."""
    profiler = scalar_class(config)(config)
    profiles = []
    for position, event in enumerate(events, start=1):
        profiler.observe(event)
        if position % SPEC.length == 0:
            profiles.append(profiler.end_interval())
    return profiler, profiles


def run_vectorized(config, events, chunk_size):
    """Array-kernel run over the same events, arbitrary chunk sizes.

    Chunks are split at interval boundaries exactly as SessionFeeder
    does (the kernels' documented precondition).
    """
    profiler = vectorized_class(config)(config)
    pcs = np.array([event[0] for event in events], dtype=np.uint64)
    values = np.array([event[1] for event in events], dtype=np.uint64)
    profiles = []
    position = 0
    while position < len(events):
        take = min(chunk_size, SPEC.length - (position % SPEC.length),
                   len(events) - position)
        profiler.observe_array_chunk(pcs[position:position + take],
                                     values[position:position + take])
        position += take
        if position % SPEC.length == 0:
            profiles.append(profiler.end_interval())
    return profiler, profiles


def assert_identical(config, events, chunk_size):
    scalar, scalar_profiles = run_scalar(config, events)
    vector, vector_profiles = run_vectorized(config, events, chunk_size)
    assert [p.candidates for p in scalar_profiles] == \
           [p.candidates for p in vector_profiles]
    assert scalar.stats.as_dict() == vector.stats.as_dict()
    assert scalar.accumulator.rejected_inserts == \
           vector.accumulator.rejected_inserts
    assert scalar.accumulator.evictions == vector.accumulator.evictions
    # Residual state matters too: the next interval starts from it.
    assert {event: (entry.count, entry.replaceable)
            for event, entry in scalar.accumulator.raw_entries().items()} \
        == {event: (entry.count, entry.replaceable)
            for event, entry in vector.accumulator.raw_entries().items()}


@given(EVENTS, FLAGS, ACCUMULATORS, st.integers(min_value=1, max_value=77))
@settings(max_examples=60, deadline=None)
def test_single_hash_kernel_parity(events, flags, accumulator, chunk_size):
    retaining, resetting, shielding = flags
    config = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=1,
                            retaining=retaining, resetting=resetting,
                            shielding=shielding,
                            accumulator_entries=accumulator)
    assert_identical(config, events, chunk_size)


@given(EVENTS, FLAGS, st.booleans(), st.sampled_from([2, 4]),
       ACCUMULATORS, st.integers(min_value=1, max_value=77))
@settings(max_examples=60, deadline=None)
def test_multi_hash_kernel_parity(events, flags, conservative, num_tables,
                                  accumulator, chunk_size):
    retaining, resetting, shielding = flags
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            num_tables=num_tables, retaining=retaining,
                            resetting=resetting, shielding=shielding,
                            conservative_update=conservative,
                            accumulator_entries=accumulator)
    assert_identical(config, events, chunk_size)


@given(EVENTS, st.booleans(), st.integers(min_value=1, max_value=77))
@settings(max_examples=25, deadline=None)
def test_parity_under_tiny_windows(events, conservative, chunk_size):
    """Force many windows, boundary restarts, and the degenerate-window
    scalar fallback by shrinking the kernel constants."""
    config = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=2,
                            conservative_update=conservative,
                            accumulator_entries=2)
    saved = (kernels.WINDOW_EVENTS, kernels.C1_WINDOW_EVENTS,
             kernels.MAX_WINDOW_BOUNDARIES, kernels.MIN_SOLVER_SPAN)
    kernels.WINDOW_EVENTS = kernels.C1_WINDOW_EVENTS = 16
    kernels.MAX_WINDOW_BOUNDARIES = 2
    kernels.MIN_SOLVER_SPAN = 1
    try:
        assert_identical(config, events, chunk_size)
    finally:
        (kernels.WINDOW_EVENTS, kernels.C1_WINDOW_EVENTS,
         kernels.MAX_WINDOW_BOUNDARIES, kernels.MIN_SOLVER_SPAN) = saved


@given(EVENTS, FLAGS, st.sampled_from([1, 2, 4]), ACCUMULATORS,
       st.integers(min_value=1, max_value=77))
@settings(max_examples=40, deadline=None)
def test_parity_forced_straggler_walk(events, flags, num_tables,
                                      accumulator, chunk_size):
    """Starve the C1 fixpoint solver of passes so every span falls
    through sandwich certification into the sequential straggler walk
    -- the hardest code path must stay bit-identical too."""
    retaining, resetting, shielding = flags
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            num_tables=num_tables, retaining=retaining,
                            resetting=resetting, shielding=shielding,
                            conservative_update=True,
                            accumulator_entries=accumulator)
    saved = (kernels.MIN_SOLVER_SPAN, kernels.MAX_SOLVER_PASSES,
             kernels.CERTIFY_PASSES)
    kernels.MIN_SOLVER_SPAN = 1
    kernels.MAX_SOLVER_PASSES = 1
    kernels.CERTIFY_PASSES = 1
    try:
        assert_identical(config, events, chunk_size)
    finally:
        (kernels.MIN_SOLVER_SPAN, kernels.MAX_SOLVER_PASSES,
         kernels.CERTIFY_PASSES) = saved


@given(EVENTS, st.integers(min_value=1, max_value=77),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_parity_with_interleaved_observe(events, chunk_size, prefix):
    """Per-event observe() calls interleaved with array chunks stay
    exact: the kernel rebuilds its chunk-local view every call."""
    config = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=4,
                            conservative_update=True,
                            accumulator_entries=4)
    scalar = MultiHashProfiler(config)
    vector = VectorizedMultiHashProfiler(config)
    for event in events[:prefix]:
        scalar.observe(event)
        vector.observe(event)
    rest = events[prefix:]
    for event in rest:
        scalar.observe(event)
    position = 0
    pcs = np.array([event[0] for event in rest], dtype=np.uint64)
    values = np.array([event[1] for event in rest], dtype=np.uint64)
    while position < len(rest):
        take = min(chunk_size, len(rest) - position)
        vector.observe_array_chunk(pcs[position:position + take],
                                   values[position:position + take])
        position += take
    assert scalar.stats.as_dict() == vector.stats.as_dict()
    assert scalar.end_interval().candidates == \
           vector.end_interval().candidates


@pytest.mark.parametrize("num_tables,conservative", [(1, False),
                                                     (4, True)])
def test_session_error_summaries_match(num_tables, conservative):
    """End-to-end: one session, both backends, a realistic benchmark
    stream -- identical candidates and bit-identical error summaries."""
    spec = IntervalSpec(length=2_000, threshold=0.01)
    base = ProfilerConfig(interval=spec, total_entries=256,
                          num_tables=num_tables,
                          conservative_update=conservative)
    session = ProfilingSession([base.with_backend("scalar"),
                                base.with_backend("vectorized")],
                               keep_profiles=True)
    result = session.run(benchmark_generator("gcc", seed=11),
                         max_intervals=4)
    scalar_result, vector_result = result.results.values()
    assert [p.candidates for p in scalar_result.profiles] == \
           [p.candidates for p in vector_result.profiles]
    assert scalar_result.summary.series() == vector_result.summary.series()
    assert scalar_result.summary.breakdown_percent() == \
           vector_result.summary.breakdown_percent()
    assert scalar_result.profiler.stats.as_dict() == \
           vector_result.profiler.stats.as_dict()


def test_build_profiler_backend_dispatch(monkeypatch):
    config = ProfilerConfig(interval=SPEC, total_entries=16)
    assert isinstance(build_profiler(config.with_backend("scalar")),
                      SingleHashProfiler)
    vectorized = build_profiler(config.with_backend("vectorized"))
    assert isinstance(vectorized, VectorizedSingleHashProfiler)
    assert not vectorized.batched_dispatch
    multi = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=4,
                           conservative_update=True)
    assert isinstance(build_profiler(multi.with_backend("vectorized")),
                      VectorizedMultiHashProfiler)
    assert type(build_profiler(multi.with_backend("scalar"))) \
        is MultiHashProfiler

    # "batched" builds the same kernels flagged for fold-by-a-runner:
    # chunks are deferred to a BatchedKernelRunner dispatch instead of
    # being consumed in observe_array_chunk by the feeder itself.
    batched = build_profiler(config.with_backend("batched"))
    assert isinstance(batched, VectorizedSingleHashProfiler)
    assert batched.batched_dispatch
    batched_multi = build_profiler(multi.with_backend("batched"))
    assert isinstance(batched_multi, VectorizedMultiHashProfiler)
    assert batched_multi.batched_dispatch

    # "auto" follows REPRO_BACKEND and defaults to vectorized.
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert isinstance(build_profiler(config), VectorizedSingleHashProfiler)
    monkeypatch.setenv("REPRO_BACKEND", "scalar")
    assert type(build_profiler(config)) is SingleHashProfiler
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError):
        build_profiler(config)


def test_wide_counters_fall_back_to_scalar():
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            counter_bits=63, backend="vectorized")
    assert type(build_profiler(config)) is SingleHashProfiler
    with pytest.raises(ValueError):
        VectorizedSingleHashProfiler(config)


def test_backend_round_trips_through_dict():
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            backend="vectorized")
    assert ProfilerConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ValueError):
        ProfilerConfig(interval=SPEC, total_entries=16, backend="fast")
