"""Tests for branch predictors (repro.simulator.branch_predictor)."""

import random

import pytest

from repro.simulator.branch_predictor import (GSharePredictor,
                                              TwoBitPredictor)


class TestTwoBit:
    def test_learns_a_steady_branch(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.update(0x1000, taken=True)
        assert predictor.predict(0x1000) is True

    def test_hysteresis_survives_one_flip(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.update(0x1000, taken=True)
        predictor.update(0x1000, taken=False)  # one anomaly
        assert predictor.predict(0x1000) is True  # still taken

    def test_alternating_branch_mispredicts_heavily(self):
        predictor = TwoBitPredictor()
        mispredictions = sum(
            predictor.update(0x1000, taken=bool(i % 2))
            for i in range(100))
        assert mispredictions > 40

    def test_accuracy_statistic(self):
        predictor = TwoBitPredictor()
        for _ in range(10):
            predictor.update(0x1000, taken=True)
        assert predictor.stats.predictions == 10
        assert predictor.stats.accuracy > 0.7

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = TwoBitPredictor(entries=1024)
        for _ in range(4):
            predictor.update(0x1000, taken=True)
            predictor.update(0x1004, taken=False)
        assert predictor.predict(0x1000) is True
        assert predictor.predict(0x1004) is False

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(entries=100)


class TestGShare:
    def test_learns_history_correlated_pattern(self):
        # Period-2 pattern: gshare's history disambiguates, bimodal
        # cannot.
        gshare = GSharePredictor(history_bits=4)
        bimodal = TwoBitPredictor()
        gshare_misses = 0
        bimodal_misses = 0
        for i in range(400):
            taken = bool(i % 2)
            gshare_misses += gshare.update(0x1000, taken)
            bimodal_misses += bimodal.update(0x1000, taken)
        assert gshare_misses < bimodal_misses / 2

    def test_random_branch_stays_hard_for_both(self):
        rng = random.Random(5)
        gshare = GSharePredictor()
        misses = sum(gshare.update(0x1000, rng.random() < 0.5)
                     for _ in range(500))
        assert misses > 150  # ~50% expected; well above "learned"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GSharePredictor(entries=3)
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=0)
