"""Tests for online interval adaptation (repro.profiling.online_adaptive)."""

import pytest

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.tuples import EventKind
from repro.profiling.online_adaptive import (AdaptivePolicy,
                                             OnlineAdaptiveProfiler)
from repro.workloads.generators import (HotBand, StreamModel,
                                        TupleStreamGenerator)


def config(length=2_000) -> ProfilerConfig:
    return ProfilerConfig(interval=IntervalSpec(length, 0.01),
                          total_entries=256, num_tables=4,
                          conservative_update=True)


def policy(**overrides) -> AdaptivePolicy:
    base = dict(min_length=1_000, max_length=32_000,
                grow_threshold=40.0, shrink_threshold=10.0,
                stable_intervals_to_shrink=2, scale_factor=4)
    base.update(overrides)
    return AdaptivePolicy(**base)


def stream(num_phases=1, phase_length=10 ** 9, burstiness=0.0, seed=31):
    model = StreamModel(
        name="adaptive-test", kind=EventKind.VALUE,
        bands=(HotBand(count=12, top_share=0.07, bottom_share=0.02),),
        recurring_mass=0.2, recurring_pool=100,
        num_phases=num_phases, phase_length=phase_length,
        phase_overlap=0.0, burstiness=burstiness, seed=seed)
    return TupleStreamGenerator(model)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(min_length=0),
        dict(min_length=5_000, max_length=1_000),
        dict(grow_threshold=5.0, shrink_threshold=10.0),
        dict(scale_factor=1),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            policy(**kwargs)


class TestAdaptation:
    def test_stable_stream_shrinks_to_floor(self):
        adaptive = OnlineAdaptiveProfiler(config(length=16_000),
                                          policy())
        adaptive.run(stream().events(140_000))
        assert adaptive.current_length == 1_000
        assert all(event.new_length < event.old_length
                   for event in adaptive.adaptations)

    def test_churning_stream_grows(self):
        # Phase change every 2K events with zero overlap: at a 1K
        # interval the candidate set flips constantly.
        adaptive = OnlineAdaptiveProfiler(
            config(length=1_000),
            policy(stable_intervals_to_shrink=100))
        adaptive.run(stream(num_phases=8,
                            phase_length=2_000).events(60_000))
        assert adaptive.current_length > 1_000
        assert adaptive.adaptations
        assert adaptive.adaptations[0].new_length > \
            adaptive.adaptations[0].old_length

    def test_length_respects_bounds(self):
        adaptive = OnlineAdaptiveProfiler(
            config(length=1_000),
            policy(max_length=4_000, stable_intervals_to_shrink=100))
        adaptive.run(stream(num_phases=8,
                            phase_length=2_000).events(80_000))
        assert adaptive.current_length <= 4_000

    def test_profiles_collected_across_resizes(self):
        adaptive = OnlineAdaptiveProfiler(config(length=2_000), policy())
        profiles = adaptive.run(stream().events(40_000))
        assert profiles
        assert sum(p.events_observed for p in profiles) <= 40_000

    def test_max_intervals_stops(self):
        adaptive = OnlineAdaptiveProfiler(config(length=1_000), policy())
        profiles = adaptive.run(stream().events(100_000),
                                max_intervals=3)
        assert len(profiles) == 3

    def test_threshold_fraction_preserved(self):
        adaptive = OnlineAdaptiveProfiler(config(length=16_000), policy())
        adaptive.run(stream().events(140_000))
        assert adaptive.profiler.interval.threshold == 0.01
