"""Behavioural tests for the multi-hash profiler (Section 6)."""

import pytest

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.multi_hash import MultiHashProfiler, build_profiler
from repro.core.single_hash import SingleHashProfiler

SPEC = IntervalSpec(length=1_000, threshold=0.01)  # threshold_count 10


def config(**overrides) -> ProfilerConfig:
    base = dict(interval=SPEC, total_entries=256, num_tables=4,
                retaining=False, resetting=False,
                conservative_update=False)
    base.update(overrides)
    return ProfilerConfig(**base)


def feed(profiler, event, times):
    for _ in range(times):
        profiler.observe(event)


class TestPromotionRequiresAllTables:
    def test_candidate_promoted_when_all_counters_cross(self):
        profiler = MultiHashProfiler(config())
        feed(profiler, (1, 1), 10)
        assert (1, 1) in profiler.accumulator

    def test_one_lagging_counter_blocks_promotion(self):
        profiler = MultiHashProfiler(config())
        # Pre-load 3 of the 4 counters of (1,1) via direct table writes
        # to simulate heavy aliasing in 3 tables.
        indices = [f((1, 1)) for f in profiler.hash_functions]
        for t in range(3):
            for _ in range(9):
                profiler.tables[t].increment(indices[t])
        feed(profiler, (1, 1), 5)
        # Tables 0-2 are way over threshold, table 3 holds only 5.
        assert (1, 1) not in profiler.accumulator
        feed(profiler, (1, 1), 5)
        assert (1, 1) in profiler.accumulator


class TestConservativeUpdate:
    def test_only_minimum_counters_incremented(self):
        profiler = MultiHashProfiler(config(conservative_update=True))
        indices = [f((1, 1)) for f in profiler.hash_functions]
        # Inflate table 0's counter artificially (aliasing).
        profiler.tables[0].increment(indices[0], amount=5)
        profiler.observe((1, 1))
        assert profiler.tables[0].read(indices[0]) == 5  # untouched
        assert profiler.tables[1].read(indices[1]) == 1

    def test_ties_all_increment(self):
        profiler = MultiHashProfiler(config(conservative_update=True))
        indices = [f((1, 1)) for f in profiler.hash_functions]
        profiler.observe((1, 1))
        for t, index in enumerate(indices):
            assert profiler.tables[t].read(index) == 1

    def test_estimate_is_count_min(self):
        profiler = MultiHashProfiler(config(conservative_update=True))
        feed(profiler, (1, 1), 7)
        assert profiler.estimate((1, 1)) == 7

    def test_exact_when_no_aliasing(self):
        profiler = MultiHashProfiler(config(conservative_update=True))
        feed(profiler, (1, 1), 9)
        feed(profiler, (2, 2), 4)
        assert profiler.estimate((1, 1)) in (9, 10, 13)  # >= true count
        assert profiler.estimate((1, 1)) >= 9
        assert profiler.estimate((2, 2)) >= 4


class TestResetting:
    def test_reset_clears_all_tables(self):
        profiler = MultiHashProfiler(config(resetting=True))
        feed(profiler, (1, 1), 10)
        indices = [f((1, 1)) for f in profiler.hash_functions]
        for t, index in enumerate(indices):
            assert profiler.tables[t].read(index) == 0

    def test_no_reset_leaves_counters(self):
        profiler = MultiHashProfiler(config(resetting=False))
        feed(profiler, (1, 1), 10)
        indices = [f((1, 1)) for f in profiler.hash_functions]
        assert all(profiler.tables[t].read(i) >= 10
                   for t, i in enumerate(indices))


class TestIntervalMechanics:
    def test_all_tables_flushed_at_interval_end(self):
        profiler = MultiHashProfiler(config())
        feed(profiler, (1, 1), 9)
        profiler.end_interval()
        assert all(table.occupancy() == 0 for table in profiler.tables)

    def test_reported_counts_exact_without_aliasing(self):
        profiler = MultiHashProfiler(config(conservative_update=True))
        feed(profiler, (1, 1), 42)
        profile = profiler.end_interval()
        assert profile.candidates == {(1, 1): 42}


class TestConstruction:
    def test_hash_function_count_must_match(self):
        from repro.core.hashing import HashFunctionFamily

        family = HashFunctionFamily(6, seed=1)  # 64-entry tables
        with pytest.raises(ValueError):
            MultiHashProfiler(config(), hash_functions=family.take(2))

    def test_table_width_must_match(self):
        from repro.core.hashing import HashFunctionFamily

        family = HashFunctionFamily(4, seed=1)  # wrong width
        with pytest.raises(ValueError):
            MultiHashProfiler(config(), hash_functions=family.take(4))

    def test_build_profiler_dispatches(self):
        assert isinstance(build_profiler(config(num_tables=1)),
                          SingleHashProfiler)
        assert isinstance(build_profiler(config()), MultiHashProfiler)
        # One table *with* conservative update stays a MultiHashProfiler
        # (C1 is a no-op there but the request is honoured).
        assert isinstance(
            build_profiler(config(num_tables=1,
                                  conservative_update=True)),
            MultiHashProfiler)


class TestSingleTableDegeneracy:
    def test_one_table_matches_single_hash_without_aliasing(self):
        """MH with one table behaves like the single-hash architecture
        while no aliasing occurs.

        The architectures differ deliberately under aliasing: the
        single hash promotes any event finding its counter at or above
        threshold (hence the resetting optimization, Section 5.4.2),
        while the multi-hash promotes only on the threshold *crossing*
        (Section 6.1).  On an alias-free stream both reduce to exact
        counting and must agree.
        """
        import random

        rng = random.Random(9)
        hot = [(i, i * 3) for i in range(12)]
        stream = [hot[rng.randrange(len(hot))] for _ in range(3_000)]
        for resetting in (False, True):
            single = SingleHashProfiler(
                config(num_tables=1, resetting=resetting))
            multi = MultiHashProfiler(
                config(num_tables=1, resetting=resetting))
            single_profiles = single.run(iter(stream))
            multi_profiles = multi.run(iter(stream))
            assert [p.candidates for p in single_profiles] == \
                   [p.candidates for p in multi_profiles]
