"""Tests for trace record/replay (repro.workloads.traces)."""

import numpy as np
import pytest

from repro.core.tuples import EventKind
from repro.workloads.traces import Trace, load_trace, record, save_trace


class TestTrace:
    def test_record_and_replay(self):
        events = [(1, 10), (2, 20), (1, 10)]
        trace = record(events, kind=EventKind.EDGE, source="unit")
        assert len(trace) == 3
        assert list(trace.events()) == events
        assert trace.kind is EventKind.EDGE

    def test_iteration_protocol(self):
        trace = record([(5, 6)])
        assert list(trace) == [(5, 6)]

    def test_slice(self):
        trace = record([(i, i) for i in range(10)])
        window = trace.slice(2, 5)
        assert list(window.events()) == [(2, 2), (3, 3), (4, 4)]
        assert window.kind is trace.kind

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Trace(pcs=np.zeros(3, dtype=np.uint64),
                  values=np.zeros(4, dtype=np.uint64))

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            Trace(pcs=np.zeros((2, 2), dtype=np.uint64),
                  values=np.zeros((2, 2), dtype=np.uint64))

    def test_dtype_coerced_to_uint64(self):
        trace = Trace(pcs=np.array([1, 2], dtype=np.int32),
                      values=np.array([3, 4], dtype=np.int64))
        assert trace.pcs.dtype == np.uint64

    def test_empty_record(self):
        assert len(record([])) == 0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        events = [(0x1000 + i, i * 7) for i in range(100)]
        trace = record(events, kind=EventKind.VALUE, source="sim:test")
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert list(loaded.events()) == events
        assert loaded.kind is EventKind.VALUE
        assert loaded.source == "sim:test"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(str(tmp_path / "absent.npz"))

    def test_64_bit_values_preserved(self, tmp_path):
        big = 2 ** 64 - 1
        trace = record([(big, big)])
        path = str(tmp_path / "big.npz")
        save_trace(trace, path)
        assert list(load_trace(path).events()) == [(big, big)]
