"""Scenario config schema: round-trip fidelity and validation.

Property-based: any valid config must survive
``dataclass -> dict -> dataclass`` and
``dataclass -> YAML -> dataclass`` exactly (the fingerprint is the
cache identity, so a lossy round trip would silently split or merge
cache entries); unknown keys must be rejected at every nesting level;
omitted keys must fill documented defaults.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import EventKind
from repro.workloads.scenarios import (AliasingSpec, BurstSpec,
                                       HeavyTailSpec, ProfilePoint,
                                       ScenarioConfig, StreamSpec,
                                       dump_scenario, load_scenario,
                                       load_scenario_text)

#: Keep generated rates clear of the combined-rate ceiling.
rates = st.floats(min_value=0.0, max_value=0.3,
                  allow_nan=False, allow_infinity=False)

aliasing_specs = st.builds(
    AliasingSpec,
    rate=rates,
    cluster=st.integers(min_value=1, max_value=64),
    index_bits=st.integers(min_value=4, max_value=14),
    hash_seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
    ordinal=st.integers(min_value=0, max_value=7))

heavy_tail_specs = st.builds(
    HeavyTailSpec,
    rate=rates,
    pool=st.integers(min_value=1, max_value=4096),
    alpha=st.floats(min_value=0.2, max_value=3.0,
                    allow_nan=False, allow_infinity=False))

burst_specs = st.builds(
    BurstSpec,
    every=st.integers(min_value=0, max_value=100_000),
    length=st.integers(min_value=1, max_value=4096))

band_dicts = st.fixed_dictionaries({
    "count": st.integers(min_value=1, max_value=32),
    "top_share": st.just(0.01),
    "bottom_share": st.just(0.005),
})

explicit_streams = st.builds(
    StreamSpec,
    bands=st.one_of(st.none(),
                    st.tuples(band_dicts)),
    recurring_mass=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=0.5,
                             allow_nan=False)),
    recurring_pool=st.one_of(st.none(),
                             st.integers(min_value=1, max_value=8192)),
    num_phases=st.one_of(st.none(),
                         st.integers(min_value=1, max_value=8)),
    phase_length=st.one_of(st.none(),
                           st.integers(min_value=1_000,
                                       max_value=1_000_000)),
    phase_overlap=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False)),
    phase_drift=st.one_of(
        st.none(), st.floats(min_value=0.25, max_value=4.0,
                             allow_nan=False)),
    burstiness=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=0.9,
                             allow_nan=False)),
    fresh_pc_count=st.one_of(st.none(),
                             st.integers(min_value=1, max_value=256)))

benchmark_streams = st.builds(
    StreamSpec,
    benchmark=st.sampled_from(["gcc", "li", "vortex", "m88ksim"]),
    phase_drift=st.one_of(
        st.none(), st.floats(min_value=0.25, max_value=4.0,
                             allow_nan=False)))

scenario_configs = st.builds(
    ScenarioConfig,
    name=st.text(alphabet="abcdefgh-_", min_size=1, max_size=16),
    description=st.text(max_size=40),
    kind=st.sampled_from([EventKind.VALUE, EventKind.EDGE]),
    seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    stream=st.one_of(explicit_streams, benchmark_streams),
    aliasing=aliasing_specs,
    heavy_tail=heavy_tail_specs,
    bursts=burst_specs,
    profile=st.builds(
        ProfilePoint,
        interval_length=st.integers(min_value=1_000, max_value=50_000),
        threshold=st.sampled_from([0.001, 0.01, 0.02]),
        intervals=st.integers(min_value=1, max_value=16)))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(config=scenario_configs)
    def test_dict_round_trip_is_exact(self, config):
        assert ScenarioConfig.from_dict(config.to_dict()) == config

    @settings(max_examples=60, deadline=None)
    @given(config=scenario_configs)
    def test_yaml_round_trip_is_exact(self, config):
        assert load_scenario_text(dump_scenario(config)) == config

    @settings(max_examples=60, deadline=None)
    @given(config=scenario_configs)
    def test_fingerprint_is_stable_and_seed_sensitive(self, config):
        assert config.fingerprint() \
            == ScenarioConfig.from_dict(config.to_dict()).fingerprint()
        assert config.with_seed(config.seed + 1).fingerprint() \
            != config.fingerprint()

    @pytest.mark.parametrize("preset", ["stress_test", "adversarial"])
    def test_presets_round_trip(self, preset):
        config = load_scenario(preset)
        assert load_scenario_text(dump_scenario(config)) == config


class TestUnknownKeyRejection:
    def test_top_level(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioConfig.from_dict({"name": "x", "bogus": 1})

    def test_stream_level(self):
        with pytest.raises(ValueError, match="unknown stream keys"):
            ScenarioConfig.from_dict(
                {"name": "x", "stream": {"bogus": 1}})

    def test_inject_level(self):
        with pytest.raises(ValueError, match="unknown inject keys"):
            ScenarioConfig.from_dict(
                {"name": "x", "inject": {"bogus": {}}})

    @pytest.mark.parametrize("section", ["aliasing", "heavy_tail",
                                         "bursts"])
    def test_inject_subsections(self, section):
        with pytest.raises(ValueError,
                           match=f"unknown inject.{section} keys"):
            ScenarioConfig.from_dict(
                {"name": "x", "inject": {section: {"bogus": 1}}})

    def test_profile_level(self):
        with pytest.raises(ValueError, match="unknown profile keys"):
            ScenarioConfig.from_dict(
                {"name": "x", "profile": {"bogus": 1}})

    def test_band_level(self):
        with pytest.raises(ValueError, match="stream.bands entry"):
            ScenarioConfig.from_dict(
                {"name": "x",
                 "stream": {"bands": [{"count": 2, "top_share": 0.02,
                                       "bottom_share": 0.01,
                                       "bogus": 1}]}})


class TestDefaults:
    def test_minimal_config_fills_defaults(self):
        config = ScenarioConfig.from_dict({"name": "minimal"})
        assert config.seed == 0
        assert config.kind is EventKind.VALUE
        assert config.aliasing.rate == 0.0
        assert config.heavy_tail.rate == 0.0
        assert config.bursts.every == 0
        assert config.profile.interval_length == 10_000
        assert config.profile.threshold == 0.01
        assert config.stream.benchmark is None

    def test_yaml_minimal(self):
        config = load_scenario_text("name: minimal\n")
        assert config == ScenarioConfig.from_dict({"name": "minimal"})

    def test_name_is_required(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioConfig.from_dict({"seed": 3})


class TestValidation:
    def test_benchmark_excludes_explicit_model_fields(self):
        with pytest.raises(ValueError, match="only phase_drift"):
            ScenarioConfig.from_dict(
                {"name": "x",
                 "stream": {"benchmark": "gcc", "recurring_mass": 0.2}})

    def test_benchmark_allows_phase_drift(self):
        config = ScenarioConfig.from_dict(
            {"name": "x",
             "stream": {"benchmark": "gcc", "phase_drift": 1.5}})
        assert config.stream.phase_drift == 1.5

    def test_combined_injection_rate_capped(self):
        with pytest.raises(ValueError, match="combined injection rate"):
            ScenarioConfig.from_dict(
                {"name": "x",
                 "inject": {"aliasing": {"rate": 0.5},
                            "heavy_tail": {"rate": 0.5}}})

    @pytest.mark.parametrize("section,payload", [
        ("aliasing", {"rate": -0.1}),
        ("aliasing", {"rate": 0.1, "cluster": 0}),
        ("heavy_tail", {"rate": 0.1, "alpha": 0.0}),
        ("bursts", {"every": -1}),
    ])
    def test_bad_injection_values_rejected(self, section, payload):
        with pytest.raises(ValueError):
            ScenarioConfig.from_dict(
                {"name": "x", "inject": {section: payload}})

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            ScenarioConfig.from_dict(
                {"name": "x", "stream": {"benchmark": "nonesuch"}})

    def test_unknown_preset_lists_alternatives(self):
        with pytest.raises(ValueError, match="shipped presets"):
            load_scenario("nonesuch")
