"""Tests for ASCII charts (repro.metrics.charts)."""

import pytest

from repro.metrics.charts import bar_chart, grouped_bar_chart, series_chart


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_values_visible(self):
        chart = bar_chart({"a": 10.0, "b": 0.0})
        assert "." in chart.splitlines()[1]

    def test_all_zero(self):
        chart = bar_chart({"a": 0.0})
        assert "0.00%" in chart

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_labels_aligned(self):
        chart = bar_chart({"x": 1.0, "longer": 2.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=5)


class TestGroupedBarChart:
    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart({"g1": {"a": 10.0},
                                   "g2": {"a": 5.0}}, width=20)
        lines = [line for line in chart.splitlines() if "|" in line]
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_group_headers_present(self):
        chart = grouped_bar_chart({"gcc": {"a": 1.0}})
        assert "gcc:" in chart

    def test_empty(self):
        assert grouped_bar_chart({}) == "(no data)"


class TestSeriesChart:
    def test_peak_annotated(self):
        chart = series_chart([1.0, 8.0, 2.0], height=4)
        assert "8.00%" in chart
        assert "3 intervals" in chart

    def test_flat_series_summarized(self):
        assert "flat" in series_chart([0.0, 0.001, 0.0])

    def test_pooling_long_series(self):
        series = [0.0] * 200 + [9.0] + [0.0] * 200
        chart = series_chart(series, width=20)
        # The spike survives max-pooling.
        assert "9.00%" in chart
        assert "401 intervals" in chart

    def test_height_rows(self):
        chart = series_chart([1.0, 2.0], height=5)
        assert len(chart.splitlines()) == 6  # height rows + axis

    def test_rejects_bad_height(self):
        with pytest.raises(ValueError):
            series_chart([1.0], height=1)

    def test_empty(self):
        assert series_chart([]) == "(no data)"
