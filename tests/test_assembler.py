"""Tests for the two-pass assembler (repro.simulator.assembler)."""

import pytest

from repro.simulator.assembler import (DEFAULT_DATA_BASE, AssemblyError,
                                       assemble)
from repro.simulator.isa import Opcode


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("halt")
        assert len(program) == 1
        assert program.instructions[0].opcode is Opcode.HALT

    def test_operands_parsed(self):
        program = assemble("add r1, r2, r3")
        instruction = program.instructions[0]
        assert instruction.registers == (1, 2, 3)

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("""
        ; full-line comment
        nop  ; trailing comment

        halt
        """)
        assert len(program) == 2

    def test_negative_immediates(self):
        program = assemble("addi r1, r1, -1\nhalt")
        assert program.instructions[0].immediate == -1

    def test_hex_immediates(self):
        program = assemble("ldi r1, 0xFF\nhalt")
        assert program.instructions[0].immediate == 255


class TestLabels:
    def test_code_label_resolves_to_pc(self):
        program = assemble("""
        main: nop
        loop: br loop
        """)
        assert program.address_of("loop") == program.pc_of(1)
        assert program.instructions[1].immediate == program.pc_of(1)

    def test_forward_reference(self):
        program = assemble("""
        br end
        nop
        end: halt
        """)
        assert program.instructions[0].immediate == program.pc_of(2)

    def test_label_on_own_line(self):
        program = assemble("""
        alone:
        halt
        """)
        assert program.address_of("alone") == program.pc_of(0)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x: nop\nx: halt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("br nowhere")

    def test_unknown_label_lookup_lists_known(self):
        program = assemble("main: halt")
        with pytest.raises(KeyError, match="main"):
            program.address_of("absent")


class TestDataDirectives:
    def test_data_words_placed_sequentially(self):
        program = assemble("""
        .data table 5, 6, 7
        halt
        """)
        base = program.address_of("table")
        assert base == DEFAULT_DATA_BASE
        assert program.data == {base: 5, base + 1: 6, base + 2: 7}

    def test_data_labels_usable_as_immediates(self):
        program = assemble("""
        .data arr 1, 2
        ldi r1, arr
        halt
        """)
        assert program.instructions[0].immediate == \
            program.address_of("arr")

    def test_code_labels_usable_in_data(self):
        # Jump tables: data words holding handler addresses.
        program = assemble("""
        .data table h0, h1
        h0: nop
        h1: halt
        """)
        base = program.address_of("table")
        assert program.data[base] == program.address_of("h0")
        assert program.data[base + 1] == program.address_of("h1")

    def test_dbase_moves_data_segment(self):
        program = assemble("""
        .dbase 0x5000
        .data arr 9
        halt
        """)
        assert program.address_of("arr") == 0x5000

    def test_base_moves_code_segment(self):
        program = assemble(".base 0x2000\nhalt")
        assert program.entry_point == 0x2000


class TestErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("frobnicate r1", "unknown mnemonic"),
        ("add r1, r2", "takes 3 operand"),
        ("ld r1, 5, 0", "expected a register"),
        ("ldi r99, 1", "out of range"),
        (".data", ".data needs"),
        (".sections foo", "unknown directive"),
        ("ldi r1, 12zz", "bad immediate"),
        ("", "no instructions"),
    ])
    def test_reports_offending_construct(self, source, fragment):
        with pytest.raises(AssemblyError, match=fragment):
            assemble(source)

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus r1")
        except AssemblyError as error:
            assert error.line_number == 2
        else:
            pytest.fail("expected AssemblyError")


class TestListing:
    def test_listing_roundtrips_mnemonics(self):
        program = assemble("""
        main: ldi r1, 5
        loop: addi r1, r1, -1
              bnez r1, loop
              halt
        """)
        listing = program.listing()
        assert "main:" in listing
        assert "bnez r1" in listing
