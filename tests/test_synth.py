"""Tests for synthetic programs (repro.simulator.synth)."""

from collections import Counter

import pytest

from repro.simulator.machine import Machine
from repro.simulator.synth import (dispatch_program, mixed_program,
                                   skewed_values, value_locality_program)


class TestSkewedValues:
    def test_length_and_range(self):
        values = skewed_values(100, hot_values=[1, 2, 3], hot_mass=1.0,
                               seed=1, cold_range=10)
        assert len(values) == 100
        assert set(values) <= {1, 2, 3}

    def test_hot_mass_zero_is_all_cold(self):
        values = skewed_values(100, hot_values=[1], hot_mass=0.0, seed=1,
                               cold_range=1000)
        assert 1 not in values or values.count(1) < 5

    def test_zipf_ordering(self):
        values = skewed_values(5_000, hot_values=[10, 20, 30],
                               hot_mass=1.0, seed=2)
        counts = Counter(values)
        assert counts[10] > counts[20] > counts[30]

    def test_deterministic(self):
        assert skewed_values(50, [1, 2], 0.5, seed=3) == \
            skewed_values(50, [1, 2], 0.5, seed=3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            skewed_values(10, [], 0.5, seed=1)
        with pytest.raises(ValueError):
            skewed_values(10, [1], 1.5, seed=1)


class TestValueLocalityProgram:
    def test_runs_to_halt(self):
        machine = Machine(value_locality_program(array_size=32,
                                                 iterations=3))
        state = machine.run()
        assert state.halted
        assert state.loads == 32 * 3

    def test_loads_are_dominated_by_hot_values(self):
        machine = Machine(value_locality_program(
            array_size=128, iterations=2, hot_values=(5, 6), hot_mass=0.9,
            seed=4))
        seen = []
        machine.load_hooks.append(
            lambda pc, address, value: seen.append(value))
        machine.run()
        counts = Counter(seen)
        hot_fraction = (counts[5] + counts[6]) / len(seen)
        assert hot_fraction > 0.75


class TestDispatchProgram:
    def test_runs_to_halt(self):
        machine = Machine(dispatch_program(num_handlers=4, code_length=32,
                                           iterations=2))
        assert machine.run().halted

    def test_dispatch_edges_skewed(self):
        program = dispatch_program(num_handlers=6, code_length=64,
                                   iterations=3, hot_mass=0.9, seed=5)
        machine = Machine(program)
        dispatch_pc = program.address_of("dispatch")
        targets = []
        machine.branch_hooks.append(
            lambda pc, target, taken: targets.append(target)
            if pc == dispatch_pc else None)
        machine.run()
        counts = Counter(targets)
        assert len(counts) == 6  # every handler reached
        top = counts.most_common(1)[0][1]
        assert top / len(targets) > 0.25  # skew visible

    def test_rejects_bad_handler_count(self):
        with pytest.raises(ValueError):
            dispatch_program(num_handlers=1)


class TestMixedProgram:
    def test_runs_both_routines(self):
        machine = Machine(mixed_program(array_size=24, iterations=2))
        state = machine.run()
        assert state.halted
        assert state.loads > 0
        assert state.taken_branches > 0

    def test_call_depth_balanced(self):
        # RET must always return to the call site: the machine halts
        # rather than faulting, over several iterations.
        machine = Machine(mixed_program(array_size=16, iterations=5))
        assert machine.run().halted


class TestRegionalProgram:
    def test_runs_to_halt(self):
        from repro.simulator.synth import regional_program
        from repro.simulator.machine import Machine

        machine = Machine(regional_program(num_regions=3, iterations=3,
                                           seed=7))
        state = machine.run()
        assert state.halted
        assert state.loads > 0

    def test_regions_have_distinct_branch_biases(self):
        from collections import defaultdict

        from repro.simulator.synth import regional_program
        from repro.simulator.machine import Machine

        program = regional_program(num_regions=4, iterations=5, seed=7)
        machine = Machine(program)
        taken = defaultdict(lambda: [0, 0])
        branch_pcs = {program.address_of(f"r{region}_branch"): region
                      for region in range(4)}

        def observe(pc, target, is_taken):
            region = branch_pcs.get(pc)
            if region is not None:
                taken[region][int(is_taken)] += 1

        machine.branch_hooks.append(observe)
        machine.run()
        rates = sorted(counts[1] / sum(counts)
                       for counts in taken.values())
        assert len(rates) == 4
        assert rates[-1] - rates[0] > 0.2  # genuinely different biases

    def test_deterministic_per_seed(self):
        from repro.simulator.synth import regional_source

        assert regional_source(seed=3) == regional_source(seed=3)
        assert regional_source(seed=3) != regional_source(seed=4)

    def test_rejects_bad_parameters(self):
        import pytest

        from repro.simulator.synth import regional_source

        with pytest.raises(ValueError):
            regional_source(num_regions=0)
        with pytest.raises(ValueError):
            regional_source(iterations=0)
