"""Tests for the Section 7 area model (repro.core.area)."""

import pytest

from repro.core.area import (accumulator_bytes, hash_table_bytes,
                             profiler_area, stratified_area)
from repro.core.config import LONG_INTERVAL, SHORT_INTERVAL, ProfilerConfig
from repro.core.stratified import StratifiedConfig


class TestPaperNumbers:
    def test_hash_table_is_six_kilobytes(self):
        # "2K entries of 3 byte counters" -> 6144 bytes.
        assert hash_table_bytes(ProfilerConfig()) == 6144

    def test_accumulator_one_kb_at_one_percent(self):
        # 100 entries x 10 bytes.
        assert accumulator_bytes(ProfilerConfig()) == 1000

    def test_accumulator_ten_kb_at_point_one_percent(self):
        config = ProfilerConfig(interval=LONG_INTERVAL)
        assert accumulator_bytes(config) == 10_000

    def test_total_seven_to_sixteen_kilobytes(self):
        short = profiler_area(ProfilerConfig(interval=SHORT_INTERVAL))
        long = profiler_area(ProfilerConfig(interval=LONG_INTERVAL))
        assert 6.5 < short.total_kilobytes < 7.5
        assert 15.0 < long.total_kilobytes < 16.5


class TestInvariance:
    def test_splitting_tables_does_not_change_area(self):
        areas = {profiler_area(ProfilerConfig(
            num_tables=tables,
            conservative_update=tables > 1)).total_bytes
            for tables in (1, 2, 4, 8, 16)}
        assert len(areas) == 1

    def test_area_scales_with_counter_width(self):
        narrow = hash_table_bytes(ProfilerConfig(counter_bits=16))
        wide = hash_table_bytes(ProfilerConfig(counter_bits=32))
        assert wide == 2 * narrow

    def test_report_dict_consistent(self):
        report = profiler_area(ProfilerConfig())
        data = report.as_dict()
        assert data["total_bytes"] == (data["hash_table_bytes"]
                                       + data["accumulator_bytes"])


class TestStratifiedArea:
    def test_baseline_carries_tag_overhead(self):
        stratified = stratified_area(
            StratifiedConfig(interval=SHORT_INTERVAL))
        multi_hash = profiler_area(
            ProfilerConfig(interval=SHORT_INTERVAL))
        # Same 2K counters, but tags + miss counters cost more.
        assert stratified.hash_table_bytes > multi_hash.hash_table_bytes

    def test_buffer_counted(self):
        small = stratified_area(StratifiedConfig(
            interval=SHORT_INTERVAL, buffer_entries=10))
        large = stratified_area(StratifiedConfig(
            interval=SHORT_INTERVAL, buffer_entries=100))
        assert large.accumulator_bytes > small.accumulator_bytes
