"""Trace store: materialize-once semantics and replay parity."""

from __future__ import annotations

import os

import numpy as np

from repro.core.config import best_single_hash
from repro.core.tuples import EventKind
from repro.experiments.base import ExperimentScale
from repro.profiling.session import ProfilingSession
from repro.workloads.benchmarks import benchmark_generator
from repro.workloads.trace_store import TraceKey, TraceStore

TINY = ExperimentScale().tiny()
LENGTH = TINY.short_spec.length


def _store(tmp_path) -> TraceStore:
    return TraceStore(str(tmp_path / "traces"))


def test_replay_is_bit_identical_to_live_generation(tmp_path):
    """The fabric's parity guarantee: a stored trace replayed through a
    profiling session produces exactly the live generator's summary."""
    store = _store(tmp_path)
    spec = TINY.short_spec
    live = ProfilingSession([best_single_hash(spec)]).run(
        benchmark_generator("gcc", EventKind.VALUE), max_intervals=4)
    replay = ProfilingSession([best_single_hash(spec)]).run(
        store.get("gcc", EventKind.VALUE, spec.length, 4),
        max_intervals=4)
    assert replay.summary.to_dict() == live.summary.to_dict()


def test_materialize_once_then_reuse(tmp_path):
    store = _store(tmp_path)
    key = TraceKey("gcc", EventKind.VALUE, LENGTH,
                   store.resolve_seed("gcc", EventKind.VALUE, None))
    store.get("gcc", EventKind.VALUE, LENGTH, 3)
    assert store.stored_intervals(key) == 3
    pcs_path = store._paths(key)[0]
    stamp = os.stat(pcs_path).st_mtime_ns
    store.get("gcc", EventKind.VALUE, LENGTH, 3)
    assert os.stat(pcs_path).st_mtime_ns == stamp  # no rewrite


def test_grow_preserves_prefix_and_slices_back(tmp_path):
    """A longer materialization is prefix-exact, and shorter requests
    slice from it instead of regenerating."""
    store = _store(tmp_path)
    short = store.get("go", EventKind.VALUE, LENGTH, 2)
    short_pcs = np.asarray(short.pcs).copy()
    short_values = np.asarray(short.values).copy()

    long = store.get("go", EventKind.VALUE, LENGTH, 4)
    assert len(long) == 4 * LENGTH
    np.testing.assert_array_equal(
        np.asarray(long.pcs)[:2 * LENGTH], short_pcs)

    key = TraceKey("go", EventKind.VALUE, LENGTH,
                   store.resolve_seed("go", EventKind.VALUE, None))
    stamp = os.stat(store._paths(key)[0]).st_mtime_ns
    again = store.get("go", EventKind.VALUE, LENGTH, 2)
    assert os.stat(store._paths(key)[0]).st_mtime_ns == stamp
    assert len(again) == 2 * LENGTH
    np.testing.assert_array_equal(np.asarray(again.pcs), short_pcs)
    np.testing.assert_array_equal(np.asarray(again.values), short_values)


def test_distinct_keys_get_distinct_files(tmp_path):
    store = _store(tmp_path)
    store.get("gcc", EventKind.VALUE, LENGTH, 2)
    store.get("gcc", EventKind.VALUE, 2 * LENGTH, 2)
    store.get("gcc", EventKind.EDGE, LENGTH, 2)
    names = sorted(os.listdir(store.directory))
    assert len(names) == 6  # three keys x (pcs, values)
