"""Tests for the profiling session driver (repro.profiling.session)."""

import pytest

from repro.core.config import IntervalSpec, ProfilerConfig, best_multi_hash
from repro.core.perfect import PerfectProfiler
from repro.core.stratified import StratifiedConfig, StratifiedSampler
from repro.profiling.session import ProfilingSession, profile_stream
from repro.workloads.benchmarks import benchmark_generator
from repro.workloads.traces import record

SPEC = IntervalSpec(length=500, threshold=0.01)  # threshold_count 5


def small_config(**overrides):
    base = dict(interval=SPEC, total_entries=128, num_tables=2,
                conservative_update=True)
    base.update(overrides)
    return ProfilerConfig(**base)


class TestConstruction:
    def test_accepts_single_config(self):
        session = ProfilingSession(small_config())
        assert len(session.profilers) == 1

    def test_accepts_profiler_instances(self):
        sampler = StratifiedSampler(StratifiedConfig(interval=SPEC))
        session = ProfilingSession([small_config(), sampler])
        assert session.profilers[1] is sampler

    def test_rejects_mixed_intervals(self):
        other = IntervalSpec(length=600, threshold=0.01)
        with pytest.raises(ValueError):
            ProfilingSession([small_config(),
                              small_config(interval=other)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ProfilingSession([])

    def test_duplicate_names_disambiguated(self):
        session = ProfilingSession([small_config(), small_config()])
        names = list(session._names)
        assert len(set(names)) == 2


class TestPerEventPath:
    def test_scores_each_interval(self):
        stream = [(1, 1)] * 500 + [(2, 2)] * 500
        result = ProfilingSession(small_config()).run(iter(stream))
        assert result.summary.num_intervals == 2
        assert result.summary.total_error == pytest.approx(0.0)

    def test_partial_trailing_interval_discarded(self):
        stream = [(1, 1)] * 750
        result = ProfilingSession(small_config()).run(iter(stream))
        assert result.summary.num_intervals == 1

    def test_max_intervals_stops_early(self):
        stream = [(1, 1)] * 2_000
        result = ProfilingSession(small_config()).run(iter(stream),
                                                      max_intervals=2)
        assert result.summary.num_intervals == 2

    def test_perfect_profiles_kept(self):
        stream = [(1, 1)] * 500
        result = ProfilingSession(small_config()).run(iter(stream))
        assert result.perfect_profiles[0].candidates == {(1, 1): 500}
        assert result.distinct_per_interval == [1]


class TestChunkedPath:
    def test_generator_requires_max_intervals(self):
        generator = benchmark_generator("li")
        with pytest.raises(ValueError):
            ProfilingSession(small_config()).run(generator)

    def test_trace_runs_whole_intervals(self):
        generator = benchmark_generator("li")
        trace = record(generator.events(1_250))
        result = ProfilingSession(small_config()).run(trace)
        assert result.summary.num_intervals == 2  # 1250 // 500

    def test_matches_per_event_path(self):
        """The vectorized path must agree with the reference
        per-event path on identical events (modulo float summation
        order)."""
        generator = benchmark_generator("gcc")
        trace = record(generator.events(2_500))
        configs = [small_config(),
                   small_config(num_tables=1, conservative_update=False,
                                resetting=True),
                   small_config(num_tables=4)]
        fast = ProfilingSession(configs, keep_profiles=True).run(trace)
        slow = ProfilingSession(configs, keep_profiles=True).run(
            iter(trace.events()))
        for name in fast.results:
            fast_result = fast.results[name]
            slow_result = slow.results[name]
            assert [p.candidates for p in fast_result.profiles] == \
                   [p.candidates for p in slow_result.profiles]
            for a, b in zip(fast_result.summary.series(),
                            slow_result.summary.series()):
                assert a == pytest.approx(b)

    def test_distinct_counts_match_perfect_profiler(self):
        generator = benchmark_generator("li")
        trace = record(generator.events(1_000))
        result = ProfilingSession(small_config()).run(trace)
        perfect = PerfectProfiler(SPEC)
        perfect.run(iter(trace.events()))
        assert result.distinct_per_interval == perfect.distinct_history

    def test_stratified_supported_via_fallback(self):
        sampler = StratifiedSampler(StratifiedConfig(
            interval=SPEC, sampling_threshold=2))
        generator = benchmark_generator("li")
        trace = record(generator.events(1_000))
        result = ProfilingSession([sampler]).run(trace)
        assert result.summary.num_intervals == 2


class TestSessionResult:
    def test_single_raises_on_many(self):
        stream = [(1, 1)] * 500
        result = ProfilingSession(
            [small_config(), small_config()]).run(iter(stream))
        with pytest.raises(ValueError):
            result.single()

    def test_candidate_sets_for_variation(self):
        stream = [(1, 1)] * 500 + [(2, 2)] * 500
        result = ProfilingSession(small_config()).run(iter(stream))
        assert result.candidate_sets == [{(1, 1)}, {(2, 2)}]
        assert result.candidates_per_interval == [1, 1]


def test_profile_stream_convenience():
    stream = [(1, 1)] * 500
    result = profile_stream(best_multi_hash(SPEC), iter(stream))
    assert result.summary.total_error == pytest.approx(0.0)
