"""Behavioural tests for the single-hash profiler (Section 5)."""

import pytest

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.single_hash import SingleHashProfiler

SPEC = IntervalSpec(length=1_000, threshold=0.01)  # threshold_count 10


def config(**overrides) -> ProfilerConfig:
    base = dict(interval=SPEC, total_entries=256, num_tables=1,
                retaining=False, resetting=False)
    base.update(overrides)
    return ProfilerConfig(**base)


def feed(profiler, event, times):
    for _ in range(times):
        profiler.observe(event)


class TestPromotion:
    def test_candidate_promoted_at_threshold(self):
        profiler = SingleHashProfiler(config())
        feed(profiler, (1, 1), 10)
        assert (1, 1) in profiler.accumulator
        assert profiler.stats.promotions == 1

    def test_below_threshold_not_promoted(self):
        profiler = SingleHashProfiler(config())
        feed(profiler, (1, 1), 9)
        assert (1, 1) not in profiler.accumulator

    def test_reported_frequency_counts_all_occurrences(self):
        profiler = SingleHashProfiler(config())
        feed(profiler, (1, 1), 60)
        profile = profiler.end_interval()
        # No aliasing: the reported count equals the true count.
        assert profile.candidates == {(1, 1): 60}

    def test_rejects_multi_table_config(self):
        with pytest.raises(ValueError):
            SingleHashProfiler(config(num_tables=2))


class TestShielding:
    def test_resident_tuple_stops_touching_hash_table(self):
        profiler = SingleHashProfiler(config())
        feed(profiler, (1, 1), 10)
        updates_at_promotion = profiler.stats.hash_updates
        feed(profiler, (1, 1), 50)
        assert profiler.stats.hash_updates == updates_at_promotion
        assert profiler.stats.accumulator_hits == 50

    def test_shielding_off_keeps_feeding_table(self):
        profiler = SingleHashProfiler(config(shielding=False))
        feed(profiler, (1, 1), 20)
        assert profiler.stats.hash_updates == 20


class TestResetting:
    def test_reset_clears_promoted_counter(self):
        profiler = SingleHashProfiler(config(resetting=True))
        feed(profiler, (1, 1), 10)
        index = profiler.hash_function((1, 1))
        assert profiler.table.read(index) == 0

    def test_no_reset_leaves_counter_at_threshold(self):
        profiler = SingleHashProfiler(config(resetting=False))
        feed(profiler, (1, 1), 10)
        index = profiler.hash_function((1, 1))
        assert profiler.table.read(index) == 10

    def test_no_reset_lets_aliases_piggyback(self):
        profiler = SingleHashProfiler(config(resetting=False))
        index = profiler.hash_function((1, 1))
        alias = _find_alias(profiler, (1, 1))
        feed(profiler, (1, 1), 10)
        profiler.observe(alias)  # counter already at threshold
        assert alias in profiler.accumulator

    def test_reset_blocks_piggybacking(self):
        profiler = SingleHashProfiler(config(resetting=True))
        alias = _find_alias(profiler, (1, 1))
        feed(profiler, (1, 1), 10)
        profiler.observe(alias)
        assert alias not in profiler.accumulator


class TestRetaining:
    def test_candidates_survive_interval_boundary(self):
        profiler = SingleHashProfiler(config(retaining=True))
        feed(profiler, (1, 1), 15)
        profiler.end_interval()
        assert (1, 1) in profiler.accumulator
        # And it is shielded from the first event of the new interval:
        profiler.observe((1, 1))
        assert profiler.stats.accumulator_hits >= 1

    def test_without_retaining_table_is_flushed(self):
        profiler = SingleHashProfiler(config(retaining=False))
        feed(profiler, (1, 1), 15)
        profiler.end_interval()
        assert (1, 1) not in profiler.accumulator

    def test_retained_count_restarts_at_zero(self):
        profiler = SingleHashProfiler(config(retaining=True))
        feed(profiler, (1, 1), 15)
        profiler.end_interval()
        feed(profiler, (1, 1), 12)
        profile = profiler.end_interval()
        assert profile.candidates == {(1, 1): 12}

    def test_retained_below_threshold_not_rereported(self):
        profiler = SingleHashProfiler(config(retaining=True))
        feed(profiler, (1, 1), 15)
        profiler.end_interval()
        feed(profiler, (1, 1), 5)  # below threshold this interval
        profile = profiler.end_interval()
        assert (1, 1) not in profile.candidates


class TestIntervalMechanics:
    def test_hash_table_flushed_between_intervals(self):
        profiler = SingleHashProfiler(config())
        feed(profiler, (1, 1), 9)  # just under threshold
        profiler.end_interval()
        feed(profiler, (1, 1), 9)  # again under; no carry-over
        assert (1, 1) not in profiler.accumulator

    def test_run_splits_stream_into_intervals(self):
        profiler = SingleHashProfiler(config())
        stream = [(1, 1)] * 1_000 + [(2, 2)] * 500
        profiles = profiler.run(iter(stream))
        assert len(profiles) == 2
        assert profiles[0].events_observed == 1_000
        assert profiles[1].events_observed == 500
        assert profiles[1].candidates == {(2, 2): 500}

    def test_accumulator_capacity_bounds_candidates(self):
        # 100-entry accumulator at 1%; flood with 150 heavy tuples.
        profiler = SingleHashProfiler(config())
        for i in range(150):
            feed(profiler, (i, i), 10)
        assert len(profiler.accumulator) <= 100
        assert profiler.stats.rejected_promotions > 0


def _find_alias(profiler, event):
    """A tuple hashing to the same counter as *event*."""
    target = profiler.hash_function(event)
    for i in range(1, 100_000):
        candidate = (0xA000_0000 + i, i)
        if candidate != event and profiler.hash_function(candidate) == target:
            return candidate
    raise AssertionError("no alias found")
