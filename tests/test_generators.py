"""Tests for the stream generators (repro.workloads.generators)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import EventKind
from repro.workloads.generators import (HotBand, StreamModel,
                                        TupleStreamGenerator)


def simple_model(**overrides) -> StreamModel:
    base = dict(
        name="test",
        kind=EventKind.VALUE,
        bands=(HotBand(count=10, top_share=0.05, bottom_share=0.012),),
        recurring_mass=0.2,
        recurring_pool=100,
        num_phases=1,
        seed=7,
    )
    base.update(overrides)
    return StreamModel(**base)


class TestHotBand:
    def test_shares_descend_from_top_to_bottom(self):
        band = HotBand(count=5, top_share=0.04, bottom_share=0.01)
        shares = band.shares()
        assert shares[0] == pytest.approx(0.04)
        assert shares[-1] == pytest.approx(0.01)
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_single_tuple_band(self):
        band = HotBand(count=1, top_share=0.03, bottom_share=0.01)
        assert band.shares().tolist() == [0.03]

    def test_mass_is_share_sum(self):
        band = HotBand(count=4, top_share=0.04, bottom_share=0.01)
        assert band.mass == pytest.approx(band.shares().sum())

    @pytest.mark.parametrize("kwargs", [
        dict(count=0, top_share=0.04, bottom_share=0.01),
        dict(count=3, top_share=0.01, bottom_share=0.04),
        dict(count=3, top_share=1.5, bottom_share=0.01),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            HotBand(**kwargs)


class TestStreamModel:
    def test_mass_accounting(self):
        model = simple_model()
        assert model.hot_mass + model.recurring_mass + model.fresh_mass \
            == pytest.approx(1.0)

    def test_rejects_overcommitted_masses(self):
        heavy = HotBand(count=30, top_share=0.05, bottom_share=0.03)
        with pytest.raises(ValueError):
            simple_model(bands=(heavy,), recurring_mass=0.5)

    def test_candidates_at_threshold(self):
        model = simple_model()
        assert model.candidates_at(0.012) == 10
        assert model.candidates_at(0.051) == 0

    def test_band_rotation_overlap(self):
        model = simple_model(num_phases=4, phase_overlap=0.5)
        band = model.bands[0]
        shift, universe = model.band_rotation(band)
        assert shift == 5  # half the band rotates out
        assert universe >= band.count

    def test_single_phase_no_rotation(self):
        model = simple_model()
        assert model.band_rotation(model.bands[0]) == (0, 10)


class TestGeneratorDeterminism:
    def test_same_seed_same_stream(self):
        a = TupleStreamGenerator(simple_model())
        b = TupleStreamGenerator(simple_model())
        assert list(a.events(2_000)) == list(b.events(2_000))

    def test_reset_rewinds(self):
        generator = TupleStreamGenerator(simple_model())
        first = list(generator.events(1_000))
        generator.reset()
        assert list(generator.events(1_000)) == first

    def test_chunking_pattern_is_part_of_determinism(self):
        # Same chunk sizes -> same stream; the generator documents that
        # different chunking may consume randomness differently.
        a = TupleStreamGenerator(simple_model())
        b = TupleStreamGenerator(simple_model())
        pcs_a, values_a = a.chunk(500)
        pcs_b, values_b = b.chunk(500)
        assert (pcs_a == pcs_b).all() and (values_a == values_b).all()

    def test_rejects_empty_chunk(self):
        with pytest.raises(ValueError):
            TupleStreamGenerator(simple_model()).chunk(0)


class TestStreamStatistics:
    def test_hot_mass_realized(self):
        model = simple_model()
        generator = TupleStreamGenerator(model)
        events = list(generator.events(20_000))
        hot_values = set(generator._hot_values.tolist())
        hot_seen = sum(1 for _, value in events if value in hot_values)
        assert hot_seen / len(events) == pytest.approx(model.hot_mass,
                                                       abs=0.02)

    def test_fresh_tuples_never_repeat(self):
        from repro.workloads.generators import FRESH_PC_BASE

        generator = TupleStreamGenerator(simple_model())
        fresh = [event for event in generator.events(30_000)
                 if event[0] >= FRESH_PC_BASE]
        assert len(fresh) == len(set(fresh))

    def test_top_tuple_frequency_matches_share(self):
        model = simple_model()
        generator = TupleStreamGenerator(model)
        counts = {}
        for event in generator.events(50_000):
            counts[event] = counts.get(event, 0) + 1
        top_count = max(counts.values())
        assert top_count / 50_000 == pytest.approx(0.05, rel=0.15)

    def test_phase_change_rotates_hot_set(self):
        model = simple_model(num_phases=2, phase_length=5_000,
                             phase_overlap=0.0)
        generator = TupleStreamGenerator(model)
        first = {e for e in generator.events(5_000)}
        second = {e for e in generator.events(5_000)}
        hot_values = set(generator._hot_values.tolist())
        hot_first = {e for e in first if e[1] in hot_values}
        hot_second = {e for e in second if e[1] in hot_values}
        assert hot_first and hot_second
        assert not (hot_first & hot_second)  # zero overlap requested


class TestBurstiness:
    def test_bursts_cluster_occurrences(self):
        smooth_model = simple_model(burstiness=0.0)
        bursty_model = simple_model(burstiness=0.9)
        smooth = TupleStreamGenerator(smooth_model)
        bursty = TupleStreamGenerator(bursty_model)
        assert _mean_run_length(smooth.events(20_000)) < \
            _mean_run_length(bursty.events(20_000))

    def test_bursty_slots_limit_exempts_upper_slots(self):
        bands = (HotBand(count=2, top_share=0.2, bottom_share=0.15),
                 HotBand(count=50, top_share=0.01, bottom_share=0.005))
        model = simple_model(bands=bands, recurring_mass=0.0,
                             burstiness=0.95, bursty_slots=2)
        generator = TupleStreamGenerator(model)
        counts = {}
        for event in generator.events(30_000):
            counts[event] = counts.get(event, 0) + 1
        # The exempt band's per-tuple counts stay near their expected
        # Poisson mean rather than burst-amplified extremes.
        band2_values = set(generator._hot_values[2:52].tolist())
        band2_counts = [c for (pc, v), c in counts.items()
                        if v in band2_values]
        expected_max = 0.01 * 30_000
        assert max(band2_counts) < expected_max * 2.5


def _mean_run_length(events) -> float:
    runs = 1
    total = 0
    previous = None
    for event in events:
        total += 1
        if previous is not None and event != previous:
            runs += 1
        previous = event
    return total / runs
