"""Smoke + shape tests for the experiment harness at tiny scale.

Each experiment runs end-to-end on a seconds-scale configuration; the
cheap closed-form experiments additionally assert their paper shapes
exactly.  The full shape criteria are exercised by the benchmarks/
suite at the default scale.
"""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentScale
from repro.experiments.base import ExperimentReport

TINY = ExperimentScale().tiny()


@pytest.fixture(scope="module")
def tiny_scale():
    return TINY


class TestRegistry:
    def test_every_figure_registered(self):
        expected = {"fig04", "fig05", "fig06", "fig07", "fig09", "fig10",
                    "fig11", "fig12", "fig13", "fig14", "area",
                    "stratified", "tablesize", "adaptive", "baselines",
                    "ablations"}
        assert expected <= set(EXPERIMENTS)

    def test_duplicate_registration_rejected(self):
        from repro.experiments.base import experiment

        with pytest.raises(ValueError):
            experiment("fig09")(lambda: None)


@pytest.mark.parametrize("name", ["fig04", "fig05", "fig06", "fig07",
                                  "fig09", "fig10", "fig11", "fig12",
                                  "fig13", "fig14", "area", "stratified",
                                  "tablesize", "adaptive", "baselines",
                                  "ablations"])
def test_experiment_runs_and_renders(name, tiny_scale):
    report = EXPERIMENTS[name](tiny_scale)
    assert isinstance(report, ExperimentReport)
    rendered = report.render()
    assert name in rendered or report.title in rendered
    assert report.tables  # at least one table


class TestScale:
    def test_tiny_scale_is_small(self):
        assert TINY.long_interval_length <= 50_000
        assert len(TINY.benchmarks) <= 4

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        scale = ExperimentScale.from_env()
        assert scale.long_interval_length == 1_000_000
        monkeypatch.setenv("REPRO_LONG_LENGTH", "50000")
        monkeypatch.setenv("REPRO_BENCHMARKS", "li,gcc")
        scale = ExperimentScale.from_env()
        assert scale.long_interval_length == 50_000
        assert scale.benchmarks == ("li", "gcc")

    def test_rejects_unknown_benchmarks(self):
        with pytest.raises(ValueError):
            ExperimentScale(benchmarks=("quake",))

    def test_rejects_too_short_long_interval(self):
        with pytest.raises(ValueError):
            ExperimentScale(long_interval_length=500)


class TestClosedFormShapes:
    def test_fig09_optimum_shapes(self, tiny_scale):
        report = EXPERIMENTS["fig09"](tiny_scale)
        optima = report.data["optima"]
        assert optima[1000] == 4       # the paper's callout
        assert optima[500] < optima[8000]

    def test_area_matches_paper_budget(self, tiny_scale):
        report = EXPERIMENTS["area"](tiny_scale)
        short = report.data[("1%", 4)]
        long = report.data[("0.1%", 4)]
        assert 6_500 < short.total_bytes < 7_500
        assert 15_500 < long.total_bytes < 16_500


class TestRunnerCLI:
    def test_main_runs_named_experiment(self, capsys):
        from repro.experiments.runner import main

        code = main(["fig09"])
        assert code == 0
        assert "fig09" in capsys.readouterr().out

    def test_main_rejects_unknown(self, capsys):
        from repro.experiments.runner import main

        assert main(["figZZ"]) == 2

    def test_scale_flags(self):
        from repro.experiments.runner import build_parser, scale_from_args

        args = build_parser().parse_args(
            ["fig09", "--long-length", "50000", "--benchmarks", "li"])
        scale = scale_from_args(args)
        assert scale.long_interval_length == 50_000
        assert scale.benchmarks == ("li",)
