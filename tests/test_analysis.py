"""Tests for stream statistics (repro.workloads.analysis)."""

import pytest

from repro.core.tuples import EventKind
from repro.workloads.analysis import (candidate_variation,
                                      interval_statistics,
                                      variation_profile)
from repro.workloads.generators import (HotBand, StreamModel,
                                        TupleStreamGenerator)


def generator(**overrides) -> TupleStreamGenerator:
    base = dict(
        name="analysis-test", kind=EventKind.VALUE,
        bands=(HotBand(count=8, top_share=0.06, bottom_share=0.02),),
        recurring_mass=0.3, recurring_pool=50, seed=11,
    )
    base.update(overrides)
    return TupleStreamGenerator(StreamModel(**base))


class TestIntervalStatistics:
    def test_counts_expected_intervals(self):
        statistics = interval_statistics(generator(), 1_000, 5,
                                         thresholds=(0.01,))
        assert statistics.num_intervals == 5
        assert len(statistics.distinct) == 5

    def test_distinct_counts_positive_and_bounded(self):
        statistics = interval_statistics(generator(), 1_000, 3,
                                         thresholds=())
        for distinct in statistics.distinct:
            assert 8 <= distinct <= 1_000

    def test_candidates_counted_per_threshold(self):
        statistics = interval_statistics(generator(), 1_000, 4,
                                         thresholds=(0.02, 0.001))
        # All 8 hot tuples sit at >= 2% of the stream.
        assert statistics.mean_candidates(0.02) >= 6
        assert (statistics.mean_candidates(0.001)
                >= statistics.mean_candidates(0.02))

    def test_candidate_sets_align_with_counts(self):
        statistics = interval_statistics(generator(), 1_000, 3,
                                         thresholds=(0.02,))
        for count, members in zip(statistics.candidate_counts[0.02],
                                  statistics.candidate_sets[0.02]):
            assert count == len(members)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            interval_statistics(generator(), 0, 3)
        with pytest.raises(ValueError):
            interval_statistics(generator(), 100, 0)


class TestCandidateVariation:
    def test_identical_sets_zero_variation(self):
        sets = [{(1, 1), (2, 2)}, {(1, 1), (2, 2)}]
        assert candidate_variation(sets) == [0.0]

    def test_disjoint_sets_full_variation(self):
        sets = [{(1, 1)}, {(2, 2)}]
        assert candidate_variation(sets) == [100.0]

    def test_half_turnover(self):
        sets = [{(1, 1), (2, 2)}, {(2, 2), (3, 3)}]
        (variation,) = candidate_variation(sets)
        assert variation == pytest.approx(100 * 2 / 3)

    def test_empty_pair_counts_as_stable(self):
        assert candidate_variation([set(), set()]) == [0.0]

    def test_needs_two_intervals(self):
        assert candidate_variation([{(1, 1)}]) == []


class TestVariationProfile:
    def test_quantiles_monotone(self):
        variations = [5.0, 10.0, 50.0, 90.0, 100.0]
        profile = variation_profile(variations, (0.1, 0.5, 0.9))
        assert profile[0.1] <= profile[0.5] <= profile[0.9]

    def test_empty_series(self):
        profile = variation_profile([], (0.5,))
        assert profile == {0.5: 0.0}

    def test_matches_sorted_positions(self):
        variations = [30.0, 10.0, 20.0]
        profile = variation_profile(variations, (0.5,))
        assert profile[0.5] == 20.0
