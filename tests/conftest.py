"""Shared fixtures: small deterministic configs and streams.

Tests use scaled-down interval specs (hundreds to thousands of events)
so the suite stays fast; the mechanisms under test are identical at
every scale.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import IntervalSpec, ProfilerConfig


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden regression fixtures under tests/golden/ "
             "from the current implementation instead of comparing")


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should regenerate golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def tiny_spec() -> IntervalSpec:
    """1,000-event intervals at 1 % (threshold: 10 occurrences)."""
    return IntervalSpec(length=1_000, threshold=0.01)


@pytest.fixture
def tiny_config(tiny_spec) -> ProfilerConfig:
    """Single-hash config with a 256-counter table."""
    return ProfilerConfig(interval=tiny_spec, total_entries=256,
                          num_tables=1)


@pytest.fixture
def tiny_multi_config(tiny_spec) -> ProfilerConfig:
    """4-table conservative-update config, 256 counters total."""
    return ProfilerConfig(interval=tiny_spec, total_entries=256,
                          num_tables=4, conservative_update=True)


def hot_noise_stream(num_events: int, hot, hot_mass: float = 0.6,
                     seed: int = 0):
    """A simple hot-set + unique-noise stream for profiler tests.

    *hot* is a list of tuples drawn uniformly with total probability
    *hot_mass*; the rest of the stream is never-repeating noise tuples.
    """
    rng = random.Random(seed)
    fresh = 0
    for _ in range(num_events):
        if rng.random() < hot_mass:
            yield hot[rng.randrange(len(hot))]
        else:
            fresh += 1
            yield (0x9000_0000 + fresh, fresh)


@pytest.fixture
def hot_tuples():
    """Ten distinct hot tuples."""
    return [(0x1000 + 8 * i, 1000 + i) for i in range(10)]
