"""Differential parity for the batched multi-session runner.

``backend="batched"`` folds every tenant's pending chunk into one
ragged ``(events, segment_id)`` dispatch per tick
(:mod:`repro.core.batched`); its contract -- like the vectorized
kernels it builds on -- is **bit-identical** behaviour per tenant.
These tests drive hypothesis-generated ragged batches (random tenant
counts, chunk lengths 0..N, empty tenants, interval boundaries landing
mid-tick) through the runner against per-event scalar references, pin
the backend against the golden fixtures, and check every registered
experiment produces byte-identical reports under ``scalar`` and
``batched``.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedKernelRunner
from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.multi_hash import build_profiler
from repro.experiments import EXPERIMENTS, ExperimentScale
from repro.profiling.session import ProfilingSession, feed_many
from repro.service.worker import _Worker
from repro.workloads.benchmarks import benchmark_generator

from test_golden import (GOLDEN_DIR, INTERVALS as GOLDEN_INTERVALS,
                         SEED as GOLDEN_SEED, WORKLOADS)

SPEC = IntervalSpec(length=200, threshold=0.05)  # threshold_count 10

# Same small tuple universe as test_kernel_parity: heavy aliasing,
# promotion and accumulator pressure against 16-entry tables.
TENANT_EVENTS = st.lists(
    st.lists(st.tuples(st.integers(min_value=0, max_value=40),
                       st.integers(min_value=0, max_value=3)),
             min_size=0, max_size=450),
    min_size=1, max_size=4)

#: Per-round chunk sizes, cycled with a per-tenant phase shift so the
#: batch is ragged: zero-length chunks, single events, and pieces that
#: land exactly on interval boundaries all occur.
SCHEDULE = st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=7)

FLAGS = st.tuples(st.booleans(), st.booleans(), st.booleans())

#: (num_tables, conservative_update) pairs covering the single-hash
#: group, plain multi-hash, and the C1 fixpoint path.
ARCHITECTURES = st.sampled_from([(1, False), (2, False), (2, True),
                                 (4, True)])

ACCUMULATORS = st.sampled_from([None, 1, 2, 4])

#: Palette for heterogeneous batches: tenants drawn from these configs
#: exercise both the grouped fold (same architecture) and the solo
#: path (odd one out) inside one dispatch.
PALETTE = [
    ProfilerConfig(interval=SPEC, total_entries=16, num_tables=1,
                   accumulator_entries=2),
    ProfilerConfig(interval=SPEC, total_entries=16, num_tables=2,
                   resetting=True, accumulator_entries=4),
    ProfilerConfig(interval=SPEC, total_entries=16, num_tables=4,
                   conservative_update=True, shielding=False,
                   accumulator_entries=1),
]


def run_ragged(configs, event_lists, schedule):
    """Drive tenants through one shared runner, scalar refs in lockstep.

    Each round takes one interval-bounded piece per tenant (sizes from
    *schedule*, cycled with a per-tenant phase shift) and folds them
    into a single :meth:`BatchedKernelRunner.dispatch`.  The scalar
    reference profilers consume the same pieces per event, and the
    moment any tenant closes an interval mid-batch its profile and
    stats are compared -- the "interleaved snapshot" case where one
    tenant is at a boundary while others are mid-interval.
    """
    length = SPEC.length
    runner = BatchedKernelRunner()
    batched = [build_profiler(config.with_backend("batched"))
               for config in configs]
    scalar = [build_profiler(config.with_backend("scalar"))
              for config in configs]
    streams = []
    for events in event_lists:
        pcs = np.array([event[0] for event in events], dtype=np.uint64)
        values = np.array([event[1] for event in events],
                          dtype=np.uint64)
        streams.append((pcs, values))
    positions = [0] * len(streams)
    round_number = 0
    while True:
        takes = []
        for tenant, (pcs, _) in enumerate(streams):
            want = schedule[(round_number + tenant) % len(schedule)]
            takes.append(min(want, len(pcs) - positions[tenant],
                             length - positions[tenant] % length))
        if not any(takes):
            unfinished = [tenant for tenant, (pcs, _) in
                          enumerate(streams)
                          if positions[tenant] < len(pcs)]
            if not unfinished:
                break
            takes[unfinished[0]] = 1  # guarantee progress
        requests = []
        pieces = []
        for tenant, take in enumerate(takes):
            pcs, values = streams[tenant]
            start = positions[tenant]
            piece = (pcs[start:start + take],
                     values[start:start + take])
            positions[tenant] = start + take
            # Zero-length pieces stay in the dispatch on purpose: the
            # runner must tolerate idle tenants inside a tick.
            requests.append((batched[tenant], *piece))
            pieces.append(piece)
        runner.dispatch(requests)
        for tenant, (piece_pcs, piece_values) in enumerate(pieces):
            reference = scalar[tenant]
            for pc, value in zip(piece_pcs.tolist(),
                                 piece_values.tolist()):
                reference.observe((pc, value))
            if len(piece_pcs) and positions[tenant] % length == 0:
                assert reference.stats.as_dict() == \
                    batched[tenant].stats.as_dict()
                assert reference.end_interval().candidates == \
                    batched[tenant].end_interval().candidates
        round_number += 1
    # One dispatch() call per round; kernel chains per call are bounded
    # by the number of distinct architecture groups in the batch.
    assert runner.ticks == round_number
    assert runner.dispatches <= round_number * len(set(
        id(_cfg) for _cfg in configs))
    return scalar, batched


def assert_tenants_identical(scalar, batched):
    """Full residual-state equality per tenant, scalar vs batched."""
    for reference, profiler in zip(scalar, batched):
        assert reference.stats.as_dict() == profiler.stats.as_dict()
        assert reference.accumulator.rejected_inserts == \
            profiler.accumulator.rejected_inserts
        assert reference.accumulator.evictions == \
            profiler.accumulator.evictions
        assert {event: (entry.count, entry.replaceable)
                for event, entry
                in reference.accumulator.raw_entries().items()} == \
            {event: (entry.count, entry.replaceable)
             for event, entry
             in profiler.accumulator.raw_entries().items()}


@given(TENANT_EVENTS, FLAGS, ARCHITECTURES, ACCUMULATORS, SCHEDULE)
@settings(max_examples=40, deadline=None)
def test_ragged_same_config_parity(event_lists, flags, architecture,
                                   accumulator, schedule):
    """Homogeneous batch: every tenant shares one architecture, so the
    whole tick folds into a single segment-aware group."""
    retaining, resetting, shielding = flags
    num_tables, conservative = architecture
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            num_tables=num_tables, retaining=retaining,
                            resetting=resetting, shielding=shielding,
                            conservative_update=conservative,
                            accumulator_entries=accumulator)
    scalar, batched = run_ragged([config] * len(event_lists),
                                 event_lists, schedule)
    assert_tenants_identical(scalar, batched)


@given(TENANT_EVENTS,
       st.lists(st.integers(min_value=0, max_value=len(PALETTE) - 1),
                min_size=4, max_size=4),
       SCHEDULE)
@settings(max_examples=40, deadline=None)
def test_ragged_mixed_config_parity(event_lists, picks, schedule):
    """Heterogeneous batch: tenants span several architectures, so one
    dispatch covers grouped folds and solo fallbacks side by side."""
    configs = [PALETTE[picks[tenant]]
               for tenant in range(len(event_lists))]
    scalar, batched = run_ragged(configs, event_lists, schedule)
    assert_tenants_identical(scalar, batched)


def test_ragged_adversarial_shapes():
    """Deterministic edge batch: an empty tenant, a single-event
    tenant, an exact-boundary tenant, and a straggler -- under a
    schedule of mostly zero-length chunks."""
    events = [
        [],
        [(7, 1)],
        [(pc % 40, pc % 3) for pc in range(SPEC.length)],
        [(pc % 17, pc % 4) for pc in range(2 * SPEC.length + 5)],
    ]
    configs = [PALETTE[position % len(PALETTE)]
               for position in range(len(events))]
    scalar, batched = run_ragged(configs, events,
                                 [0, 0, 1, 0, SPEC.length])
    assert_tenants_identical(scalar, batched)


# ---------------------------------------------------------------------
# feed_many: the service's per-shard fold
# ---------------------------------------------------------------------

def test_feed_many_matches_individual_feeds():
    """Folding many feeders into shared dispatches changes the number
    of kernel calls, never the per-stream results."""
    spec = IntervalSpec(length=500, threshold=0.01)
    config = ProfilerConfig(interval=spec, total_entries=64,
                            num_tables=4, conservative_update=True,
                            backend="batched")
    streams = [benchmark_generator("gcc", seed=seed).chunk(1_700)
               for seed in (1, 2, 3)]

    solo = []
    for pcs, values in streams:
        feeder = ProfilingSession(config, keep_profiles=True).feeder()
        assert feeder.feed(pcs, values) == 3
        solo.append(feeder)

    runner = BatchedKernelRunner()
    folded = [ProfilingSession(config, keep_profiles=True).feeder()
              for _ in streams]
    closed = feed_many(
        [(feeder, pcs, values)
         for feeder, (pcs, values) in zip(folded, streams)], runner)
    assert closed == [3, 3, 3]

    # One dispatch per interval-bounded round for the whole shard
    # (4 pieces per stream), versus one per piece per stream solo.
    assert runner.dispatches == 4
    assert sum(feeder.runner.dispatches for feeder in solo) == 12

    for alone, shared in zip(solo, folded):
        mine, theirs = alone.snapshot().single(), \
            shared.snapshot().single()
        assert [p.candidates for p in mine.profiles] == \
            [p.candidates for p in theirs.profiles]
        assert mine.summary.series() == theirs.summary.series()
        assert mine.profiler.stats.as_dict() == \
            theirs.profiler.stats.as_dict()


def test_feed_many_rejects_duplicate_feeders():
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            backend="batched")
    feeder = ProfilingSession(config).feeder()
    chunk = np.zeros(3, dtype=np.uint64)
    with pytest.raises(ValueError, match="one batch per"):
        feed_many([(feeder, chunk, chunk), (feeder, chunk, chunk)])


# ---------------------------------------------------------------------
# Worker fold: one tick, one dispatch chain, per-tick stats
# ---------------------------------------------------------------------

def test_worker_fold_is_one_tick_and_matches_scalar():
    spec = IntervalSpec(length=2_000, threshold=0.01)
    batched_config = ProfilerConfig(interval=spec, total_entries=256,
                                    num_tables=4,
                                    conservative_update=True,
                                    backend="batched")
    worker = _Worker(0, snapshot_intervals=8)
    streams = ["alpha", "beta", "gamma"]
    chunks = {}
    for position, stream in enumerate(streams):
        reply = worker.open({"stream": stream,
                             "config": batched_config.to_dict()})
        assert reply["ok"] and reply["backend"] == "batched"
        chunks[stream] = benchmark_generator(
            "gcc", seed=17 + position).chunk(4_500)

    # Two ops per stream in one tick; split-invariance means the fold
    # concatenates them, and intervals_closed lands on the last op.
    messages = []
    for stream in streams:
        pcs, values = chunks[stream]
        half = len(pcs) // 2
        for piece in ((pcs[:half], values[:half]),
                      (pcs[half:], values[half:])):
            messages.append({"stream": stream,
                             "pcs": piece[0].tobytes(),
                             "values": piece[1].tobytes()})
    replies = worker.batch_many(messages)
    assert all(reply["ok"] for reply in replies)
    for ordinal, reply in enumerate(replies):
        # Each stream's two ops sit adjacent; the tick's total closed
        # intervals are reported on the second (last) of the pair.
        assert reply["intervals_closed"] == (2 if ordinal % 2 else 0)

    stats = worker.stats()["stats"]
    assert stats["ticks"] == 1
    # 4500 events over 2000-event intervals: three interval-bounded
    # rounds, each one dispatch chain for the whole shard.
    assert stats["kernel_dispatches"] == 3
    assert stats["dispatches_per_tick"] == 3.0

    for stream in streams:
        snapshot = worker.snapshot({"stream": stream})["snapshot"]
        pcs, values = chunks[stream]
        reference = ProfilingSession(
            batched_config.with_backend("scalar"),
            keep_profiles=True).feeder()
        reference.feed(pcs, values)
        direct = reference.snapshot().single()
        assert snapshot["intervals_completed"] == 2
        for wire, profile in zip(snapshot["intervals"],
                                 direct.profiles):
            candidates = {(pc, value): count
                          for pc, value, count in wire["candidates"]}
            assert candidates == profile.candidates
        assert snapshot["summary"]["per_interval_error_percent"] == \
            [100.0 * value for value in direct.summary.series()]


def test_worker_fold_reports_bad_streams_in_place():
    worker = _Worker(0, snapshot_intervals=8)
    config = ProfilerConfig(interval=SPEC, total_entries=16,
                            backend="batched")
    worker.open({"stream": "good", "config": config.to_dict()})
    chunk = np.arange(5, dtype=np.uint64)
    replies = worker.batch_many([
        {"stream": "good", "pcs": chunk.tobytes(),
         "values": chunk.tobytes()},
        {"stream": "ghost", "pcs": b"", "values": b""},
        {"stream": "good", "pcs": chunk.tobytes(),
         "values": chunk.tobytes()},
    ])
    assert replies[0]["ok"] and replies[2]["ok"]
    assert not replies[1]["ok"]
    assert replies[1]["code"] == "unknown-stream"
    assert replies[2]["events"] == 10
    assert worker.stats()["stats"]["ticks"] == 1


# ---------------------------------------------------------------------
# Golden fixtures: batched output pinned to the checked-in snapshots
# ---------------------------------------------------------------------

@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_golden_fixtures_batched(workload):
    """A two-tenant batched session (both tenants share the fixture's
    architecture, folding into one group) reproduces the golden
    snapshot byte for byte -- for each tenant."""
    config = WORKLOADS[workload]()
    session = ProfilingSession([config.with_backend("batched"),
                                config.with_backend("batched")],
                               keep_profiles=True)
    outcome = session.run(benchmark_generator("gcc", seed=GOLDEN_SEED),
                          max_intervals=GOLDEN_INTERVALS)
    path = GOLDEN_DIR / f"{workload}.json"
    assert path.exists(), f"missing fixture {path}"
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert len(outcome.results) == 2
    for result in outcome.results.values():
        observed = {
            "intervals": [
                {"index": profile.index,
                 "candidates": sorted(
                     [int(pc), int(value), int(count)]
                     for (pc, value), count
                     in profile.candidates.items())}
                for profile in result.profiles
            ],
            "stats": result.profiler.stats.as_dict(),
            "error_series": [round(point, 12)
                             for point in result.summary.series()],
        }
        assert observed == expected


# ---------------------------------------------------------------------
# Experiments: every figure, scalar vs batched, byte-identical reports
# ---------------------------------------------------------------------

MICRO = replace(ExperimentScale().tiny(), benchmarks=("li",),
                short_intervals=2, long_intervals=1,
                long_interval_length=10_000)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_batched_matches_scalar(name):
    scalar = EXPERIMENTS[name](replace(MICRO, backend="scalar"))
    batched = EXPERIMENTS[name](replace(MICRO, backend="batched"))
    assert batched.tables == scalar.tables
    assert batched.data == scalar.data
