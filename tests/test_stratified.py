"""Tests for the Stratified Sampler baseline (repro.core.stratified)."""

import pytest

from repro.core.config import IntervalSpec
from repro.core.stratified import StratifiedConfig, StratifiedSampler

SPEC = IntervalSpec(length=1_000, threshold=0.01)


def config(**overrides) -> StratifiedConfig:
    base = dict(interval=SPEC, table_entries=256, sampling_threshold=4,
                buffer_entries=10, aggregation_entries=0)
    base.update(overrides)
    return StratifiedConfig(**base)


def feed(sampler, event, times):
    for _ in range(times):
        sampler.observe(event)


class TestSampling:
    def test_sample_emitted_at_sampling_threshold(self):
        sampler = StratifiedSampler(config())
        feed(sampler, (1, 1), 4)
        assert sampler.messages == 1

    def test_counter_resets_after_sample(self):
        sampler = StratifiedSampler(config())
        feed(sampler, (1, 1), 8)
        assert sampler.messages == 2

    def test_software_reconstruction_weights_samples(self):
        sampler = StratifiedSampler(config())
        feed(sampler, (1, 1), 40)  # 10 samples x threshold 4
        profile = sampler.end_interval()
        assert profile.candidates == {(1, 1): 40}

    def test_sub_sampling_threshold_events_invisible(self):
        sampler = StratifiedSampler(config())
        feed(sampler, (1, 1), 3)
        profile = sampler.end_interval()
        assert profile.candidates == {}
        assert sampler.messages == 0


class TestInterruptModel:
    def test_interrupt_when_buffer_fills(self):
        sampler = StratifiedSampler(config(buffer_entries=2))
        feed(sampler, (1, 1), 8)  # 2 messages -> one drain
        assert sampler.interrupts == 1

    def test_end_interval_drains_partial_buffer(self):
        sampler = StratifiedSampler(config(buffer_entries=100))
        feed(sampler, (1, 1), 40)
        sampler.end_interval()
        assert sampler.interrupts == 1  # forced drain

    def test_software_overhead_scales_with_interrupts(self):
        sampler = StratifiedSampler(config(buffer_entries=1))
        feed(sampler, (1, 1), 1000)
        overhead = sampler.software_overhead(cycles_per_interrupt=100)
        assert overhead == pytest.approx(
            sampler.interrupts * 100 / sampler.stats.events)

    def test_zero_events_zero_overhead(self):
        assert StratifiedSampler(config()).software_overhead() == 0.0


class TestTagsAndReplacement:
    def test_mismatching_tuple_counts_misses(self):
        sampler = StratifiedSampler(config(miss_limit=3))
        alias = _find_alias(sampler, (1, 1))
        feed(sampler, (1, 1), 2)
        feed(sampler, alias, 2)  # misses, below limit: no takeover
        feed(sampler, (1, 1), 2)
        assert sampler.messages == 1  # (1,1) reached 4 hits

    def test_miss_limit_reclaims_entry(self):
        sampler = StratifiedSampler(config(miss_limit=2))
        alias = _find_alias(sampler, (1, 1))
        feed(sampler, (1, 1), 2)
        feed(sampler, alias, 2)  # hits the miss limit; takes over
        feed(sampler, alias, 3)  # now accumulates hits of its own
        assert sampler.messages == 1


class TestAggregationTable:
    def test_aggregation_coalesces_messages(self):
        with_aggregation = StratifiedSampler(config(
            aggregation_entries=4, aggregation_limit=3))
        feed(with_aggregation, (1, 1), 4 * 3)  # 3 samples -> 1 flush
        assert with_aggregation.messages == 3  # delivered together
        assert with_aggregation.interrupts == 0  # buffer not full yet

    def test_capacity_eviction_flushes_largest(self):
        sampler = StratifiedSampler(config(
            aggregation_entries=1, aggregation_limit=100))
        feed(sampler, (1, 1), 8)   # 2 samples aggregated
        feed(sampler, (2, 2), 4)   # evicts (1,1)'s aggregate
        assert sampler.messages == 2

    def test_end_interval_flushes_aggregation(self):
        sampler = StratifiedSampler(config(
            aggregation_entries=4, aggregation_limit=100))
        feed(sampler, (1, 1), 12)
        profile = sampler.end_interval()
        assert profile.candidates == {(1, 1): 12}


class TestConfigValidation:
    def test_rejects_non_power_of_two_table(self):
        with pytest.raises(ValueError):
            StratifiedConfig(interval=SPEC, table_entries=300)

    def test_rejects_zero_sampling_threshold(self):
        with pytest.raises(ValueError):
            StratifiedConfig(interval=SPEC, sampling_threshold=0)

    def test_rejects_zero_buffer(self):
        with pytest.raises(ValueError):
            StratifiedConfig(interval=SPEC, buffer_entries=0)


def _find_alias(sampler, event):
    """A tuple with the same table index but a different partial tag."""
    target = sampler.hash_function(event)
    target_tag = sampler._partial_tag(event)
    for i in range(1, 200_000):
        candidate = (0xB000_0000 + i, i)
        if (sampler.hash_function(candidate) == target
                and sampler._partial_tag(candidate) != target_tag):
            return candidate
    raise AssertionError("no alias found")
