"""End-to-end integration tests spanning all subsystems.

These exercise whole pipelines -- simulator -> instrumentation ->
profilers -> error metrics -- and pin the paper's headline qualitative
results at a reduced (but non-trivial) scale.
"""

import pytest

from repro.core.config import (SHORT_INTERVAL, IntervalSpec,
                               ProfilerConfig, best_multi_hash,
                               best_single_hash)
from repro.core.tuples import EventKind
from repro.profiling.atom import trace_events
from repro.profiling.session import ProfilingSession
from repro.simulator.synth import mixed_program
from repro.workloads.benchmarks import benchmark_generator


class TestSimulatorToProfilerPipeline:
    def test_value_and_edge_profiles_from_one_program(self):
        program = mixed_program(array_size=64, iterations=12, seed=6)
        spec = IntervalSpec(length=500, threshold=0.02)
        config = ProfilerConfig(interval=spec, total_entries=256,
                                num_tables=4, conservative_update=True)
        for kind in (EventKind.VALUE, EventKind.EDGE):
            trace = trace_events(program, kind)
            assert len(trace) >= spec.length  # enough for >= 1 interval
            result = ProfilingSession(config).run(trace)
            # The mixed program's hot values / dispatch edges are highly
            # skewed: the multi-hash profiler captures them near-exactly.
            assert result.summary.percent() < 5.0
            assert result.perfect_profiles[0].candidates


class TestHeadlineShapes:
    """The paper's main claims at a scaled-down operating point."""

    SPEC = IntervalSpec(length=50_000, threshold=0.001)
    INTERVALS = 3

    def _errors(self, benchmark, configs):
        session = ProfilingSession([config for _, config in configs])
        outcome = session.run(benchmark_generator(benchmark),
                              max_intervals=self.INTERVALS)
        return {label: result.summary.percent()
                for (label, _), result in zip(configs,
                                              outcome.results.values())}

    def test_multi_hash_beats_best_single_hash_under_pressure(self):
        configs = [("BSH", best_single_hash(self.SPEC)),
                   ("MH4", best_multi_hash(self.SPEC))]
        for benchmark in ("gcc", "go"):
            errors = self._errors(benchmark, configs)
            assert errors["MH4"] < errors["BSH"]

    def test_conservative_update_large_win_with_many_tables(self):
        configs = [
            ("C0", ProfilerConfig(interval=self.SPEC, num_tables=8)),
            ("C1", ProfilerConfig(interval=self.SPEC, num_tables=8,
                                  conservative_update=True)),
        ]
        errors = self._errors("gcc", configs)
        assert errors["C1"] < errors["C0"] / 3

    def test_single_hash_optimizations_reduce_error(self):
        configs = [
            ("P0R0", ProfilerConfig(interval=SHORT_INTERVAL,
                                    retaining=False, resetting=False)),
            ("P1R1", ProfilerConfig(interval=SHORT_INTERVAL,
                                    retaining=True, resetting=True)),
        ]
        session = ProfilingSession([config for _, config in configs])
        outcome = session.run(benchmark_generator("gcc"),
                              max_intervals=15)
        results = list(outcome.results.values())
        assert results[1].summary.percent() < results[0].summary.percent()

    def test_best_multi_hash_under_one_percent_at_short_point(self):
        """Abstract headline: 'an average error less than 1%'."""
        total = 0.0
        benchmarks = ("gcc", "li", "vortex", "m88ksim")
        for benchmark in benchmarks:
            session = ProfilingSession([best_multi_hash(SHORT_INTERVAL)])
            outcome = session.run(benchmark_generator(benchmark),
                                  max_intervals=15)
            total += outcome.summary.percent()
        assert total / len(benchmarks) < 1.0

    def test_edge_profiling_reaches_same_conclusion(self):
        configs = [("BSH", best_single_hash(self.SPEC)),
                   ("MH4", best_multi_hash(self.SPEC))]
        session = ProfilingSession([config for _, config in configs])
        outcome = session.run(
            benchmark_generator("gcc", EventKind.EDGE),
            max_intervals=self.INTERVALS)
        results = list(outcome.results.values())
        assert results[1].summary.percent() <= results[0].summary.percent()


class TestStratifiedContrast:
    def test_stratified_needs_software_where_multihash_does_not(self):
        from repro.core.stratified import StratifiedConfig, StratifiedSampler

        spec = IntervalSpec(length=10_000, threshold=0.01)
        sampler = StratifiedSampler(StratifiedConfig(
            interval=spec, sampling_threshold=8))
        session = ProfilingSession([best_multi_hash(spec), sampler])
        session.run(benchmark_generator("li"), max_intervals=5)
        assert sampler.interrupts > 0
        assert sampler.software_overhead() > 0.0
