"""Tests for the target solver (repro.workloads.solver)."""

import pytest

from repro.core.tuples import EventKind
from repro.workloads.solver import (REFERENCE_INTERVAL, WARM_CAP,
                                    BenchmarkTargets, build_model,
                                    expected_candidates, expected_distinct)


def targets(**overrides) -> BenchmarkTargets:
    base = dict(name="synthetic", distinct_10k=1_500,
                candidates_1pct=12, candidates_01pct=60,
                strong_top_share=0.05, recurring_fraction=0.8)
    base.update(overrides)
    return BenchmarkTargets(**base)


class TestValidation:
    def test_rejects_inconsistent_candidate_counts(self):
        with pytest.raises(ValueError):
            targets(candidates_1pct=20, candidates_01pct=10)

    def test_rejects_distinct_below_candidates(self):
        with pytest.raises(ValueError):
            targets(distinct_10k=50, candidates_01pct=60)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            targets(recurring_fraction=1.5)
        with pytest.raises(ValueError):
            targets(mid_fraction=-0.1)

    def test_infeasible_targets_rejected_with_guidance(self):
        # Tiny distinct budget + huge sub-threshold mass cannot fit
        # under the warm cap.
        bad = targets(distinct_10k=80, candidates_1pct=3,
                      candidates_01pct=10, strong_top_share=0.011,
                      recurring_fraction=0.9)
        with pytest.raises(ValueError):
            build_model(bad)


class TestSolvedModel:
    def test_candidate_counts_exact(self):
        model = build_model(targets())
        assert expected_candidates(model, 0.01) == 12
        assert expected_candidates(model, 0.001) == 60

    def test_distinct_target_met(self):
        solved = targets()
        model = build_model(solved)
        predicted = expected_distinct(model, REFERENCE_INTERVAL)
        assert predicted == pytest.approx(solved.distinct_10k, rel=0.05)

    def test_masses_are_a_partition(self):
        model = build_model(targets())
        assert 0.0 <= model.fresh_mass < 1.0
        assert model.hot_mass + model.recurring_mass \
            + model.fresh_mass == pytest.approx(1.0)

    def test_warm_band_stays_below_cap(self):
        model = build_model(targets())
        warm = model.bands[-1]
        assert warm.top_share <= WARM_CAP + 1e-12

    def test_mid_fraction_moves_candidates_into_gap(self):
        low = build_model(targets(mid_fraction=0.0))
        high = build_model(targets(mid_fraction=1.0))
        # Same candidate totals either way...
        assert low.candidates_at(0.001) == high.candidates_at(0.001)
        # ...but the mid-heavy model carries more candidate mass.
        assert high.hot_mass > low.hot_mass

    def test_distinct_grows_with_interval_length(self):
        model = build_model(targets())
        d10 = expected_distinct(model, 10_000)
        d100 = expected_distinct(model, 100_000)
        # Fresh tuples keep the distinct count growing with interval
        # length (sub-linear here because this model is warm-heavy).
        assert d100 > 2 * d10

    def test_kind_passes_through(self):
        model = build_model(targets(), kind=EventKind.EDGE)
        assert model.kind is EventKind.EDGE

    def test_bursty_slots_exclude_warm_band(self):
        model = build_model(targets())
        candidate_slots = sum(band.count for band in model.bands[:-1])
        assert model.bursty_slots == candidate_slots


class TestEmpiricalCalibration:
    """The solved model's realized stream matches its analytic targets."""

    def test_distinct_and_candidates_realized(self):
        from repro.workloads.generators import TupleStreamGenerator

        solved = targets()
        model = build_model(solved)
        generator = TupleStreamGenerator(model)
        counts = {}
        for event in generator.events(REFERENCE_INTERVAL):
            counts[event] = counts.get(event, 0) + 1
        distinct = len(counts)
        candidates_1pct = sum(1 for c in counts.values() if c >= 100)
        assert distinct == pytest.approx(solved.distinct_10k, rel=0.10)
        assert candidates_1pct == pytest.approx(solved.candidates_1pct,
                                                abs=4)


class TestRandomTargetsProperty:
    def test_feasible_targets_always_solve_consistently(self):
        """Property: any feasible target set yields a model whose
        candidate counts match exactly and whose masses partition."""
        import random

        from repro.core.tuples import EventKind

        rng = random.Random(77)
        solved = 0
        for _ in range(40):
            c1 = rng.randrange(5, 25)
            c01 = c1 + rng.randrange(10, 120)
            distinct = c01 + rng.randrange(500, 4000)
            candidate = BenchmarkTargets(
                name="random", distinct_10k=distinct,
                candidates_1pct=c1, candidates_01pct=c01,
                strong_top_share=rng.uniform(0.012, 0.1),
                mid_fraction=rng.uniform(0.0, 1.0),
                recurring_fraction=rng.uniform(0.3, 0.9),
                seed=rng.randrange(10 ** 6))
            try:
                model = build_model(candidate, kind=EventKind.VALUE)
            except ValueError:
                continue  # infeasible combination: correctly rejected
            solved += 1
            assert model.candidates_at(0.01) == c1
            assert model.candidates_at(0.001) == c01
            assert model.fresh_mass >= 0.0
            assert model.hot_mass + model.recurring_mass \
                + model.fresh_mass == pytest.approx(1.0)
            predicted = expected_distinct(model, REFERENCE_INTERVAL)
            assert predicted == pytest.approx(distinct, rel=0.08)
        assert solved >= 10  # the space is not degenerate
