"""Tests for the oracle profiler (repro.core.perfect)."""

from repro.core.config import IntervalSpec
from repro.core.perfect import PerfectProfiler

SPEC = IntervalSpec(length=100, threshold=0.05)  # threshold_count 5


class TestPerfectProfiler:
    def test_reports_exact_candidates(self):
        profiler = PerfectProfiler(SPEC)
        stream = [(1, 1)] * 10 + [(2, 2)] * 4 + [(3, 3)] * 5
        for event in stream:
            profiler.observe(event)
        profile = profiler.end_interval()
        assert profile.candidates == {(1, 1): 10, (3, 3): 5}

    def test_interval_counts_snapshot(self):
        profiler = PerfectProfiler(SPEC)
        for event in [(1, 1), (1, 1), (2, 2)]:
            profiler.observe(event)
        assert profiler.interval_counts() == {(1, 1): 2, (2, 2): 1}
        # Snapshot is a copy: mutating it cannot corrupt the profiler.
        profiler.interval_counts()[(9, 9)] = 99
        assert (9, 9) not in profiler.interval_counts()

    def test_counts_reset_between_intervals(self):
        profiler = PerfectProfiler(SPEC)
        for _ in range(5):
            profiler.observe((1, 1))
        profiler.end_interval()
        for _ in range(4):
            profiler.observe((1, 1))
        profile = profiler.end_interval()
        assert profile.candidates == {}

    def test_distinct_history(self):
        profiler = PerfectProfiler(SPEC)
        for event in [(1, 1), (2, 2), (1, 1)]:
            profiler.observe(event)
        profiler.end_interval()
        for event in [(3, 3)]:
            profiler.observe(event)
        profiler.end_interval()
        assert profiler.distinct_history == [2, 1]

    def test_interval_indices_advance(self):
        profiler = PerfectProfiler(SPEC)
        first = profiler.end_interval()
        second = profiler.end_interval()
        assert (first.index, second.index) == (0, 1)

    def test_events_observed_recorded(self):
        profiler = PerfectProfiler(SPEC)
        for _ in range(7):
            profiler.observe((1, 1))
        assert profiler.end_interval().events_observed == 7
