"""Tests for event naming (repro.core.tuples)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tuples import (FIELD_MASK, EventKind, edge_tuple,
                               is_valid_tuple, make_tuple, value_tuple)


class TestMakeTuple:
    def test_masks_to_field_width(self):
        assert make_tuple(1 << 70, 5) == ((1 << 70) & FIELD_MASK, 5)

    def test_negative_values_fold_to_twos_complement(self):
        assert make_tuple(0, -1) == (0, FIELD_MASK)

    def test_plain_pair(self):
        assert make_tuple(0x1000, 42) == (0x1000, 42)

    @given(st.integers(), st.integers())
    def test_always_valid(self, a, b):
        assert is_valid_tuple(make_tuple(a, b))


class TestNamedConstructors:
    def test_value_tuple_is_pc_value(self):
        assert value_tuple(0x400, 7) == (0x400, 7)

    def test_edge_tuple_is_pc_target(self):
        assert edge_tuple(0x400, 0x500) == (0x400, 0x500)

    def test_directions_are_distinct_edges(self):
        taken = edge_tuple(0x400, 0x900)
        fallthrough = edge_tuple(0x400, 0x404)
        assert taken != fallthrough


class TestIsValidTuple:
    @pytest.mark.parametrize("candidate", [
        (1, 2, 3),        # wrong arity
        [1, 2],           # not a tuple
        (1.5, 2),         # not ints
        ("a", "b"),
        (-1, 0),          # out of range
        (0, 1 << 64),
        42,
        None,
    ])
    def test_rejects_malformed(self, candidate):
        assert not is_valid_tuple(candidate)

    def test_accepts_boundary_values(self):
        assert is_valid_tuple((0, FIELD_MASK))


class TestEventKind:
    def test_kinds_cover_paper_profiles(self):
        assert {EventKind.VALUE.value, EventKind.EDGE.value} <= {
            kind.value for kind in EventKind}

    def test_kind_from_string(self):
        assert EventKind("value") is EventKind.VALUE
