"""Tests for formula (1) and its aggregation (repro.metrics.error)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.base import IntervalProfile
from repro.metrics.classification import Category
from repro.metrics.error import ErrorSummary, interval_error, summarize

T = 10


def profile(candidates, index=0):
    return IntervalProfile(index=index, candidates=candidates,
                           events_observed=100)


class TestIntervalError:
    def test_perfect_profile_has_zero_error(self):
        truth = {(1, 1): 50, (2, 2): 30}
        error = interval_error(truth, profile(dict(truth)), T)
        assert error.total == 0.0

    def test_formula_matches_hand_computation(self):
        # Candidates: (1,1) fp=50 fh=40; (2,2) fp=30 fh=30; FP (3,3)
        # fp=4 fh=12.  E = (10 + 0 + 8) / (50 + 30 + 4).
        truth = {(1, 1): 50, (2, 2): 30, (3, 3): 4}
        hardware = profile({(1, 1): 40, (2, 2): 30, (3, 3): 12})
        error = interval_error(truth, hardware, T)
        assert error.total == pytest.approx(18 / 84)

    def test_categories_sum_to_total(self):
        truth = {(1, 1): 50, (2, 2): 30, (3, 3): 4, (4, 4): 15}
        hardware = profile({(1, 1): 70, (2, 2): 20, (3, 3): 12})
        error = interval_error(truth, hardware, T)
        assert sum(error.category_error.values()) == pytest.approx(
            error.total)

    def test_false_positives_can_exceed_100_percent(self):
        # Heavy aliasing: tiny true mass, large phantom counts -- the
        # regime of Figure 7's right panel (errors up to ~180 %).
        truth = {(1, 1): 12, (2, 2): 1, (3, 3): 1}
        hardware = profile({(1, 1): 12, (2, 2): 40, (3, 3): 40})
        error = interval_error(truth, hardware, T)
        assert error.total > 1.0

    def test_empty_interval_scores_zero(self):
        error = interval_error({}, profile({}), T)
        assert error.total == 0.0
        assert error.perfect_mass == 0

    def test_false_negative_uses_zero_hardware_frequency(self):
        truth = {(1, 1): 40}
        error = interval_error(truth, profile({}), T)
        assert error.total == pytest.approx(1.0)
        assert error.error_of(Category.FALSE_NEGATIVE) == pytest.approx(1.0)

    @given(st.dictionaries(
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        st.integers(min_value=T, max_value=500), max_size=20))
    def test_error_nonnegative_and_zero_iff_exact(self, truth):
        error = interval_error(dict(truth), profile(dict(truth)), T)
        assert error.total == 0.0
        dropped = dict(truth)
        if dropped:
            dropped.pop(next(iter(dropped)))
            error = interval_error(dict(truth), profile(dropped), T)
            assert error.total > 0.0


class TestErrorSummary:
    def _summary(self, totals):
        summary = ErrorSummary()
        for index, (truth, hardware) in enumerate(totals):
            summary.add(interval_error(truth, profile(hardware, index), T))
        return summary

    def test_net_error_is_simple_average(self):
        summary = self._summary([
            ({(1, 1): 20}, {(1, 1): 20}),   # 0.0
            ({(1, 1): 20}, {}),             # 1.0
        ])
        assert summary.total_error == pytest.approx(0.5)
        assert summary.percent() == pytest.approx(50.0)

    def test_series_in_interval_order(self):
        summary = self._summary([
            ({(1, 1): 20}, {(1, 1): 20}),
            ({(1, 1): 20}, {}),
        ])
        assert summary.series() == [0.0, 1.0]

    def test_breakdown_keys(self):
        summary = self._summary([({(1, 1): 20}, {})])
        breakdown = summary.breakdown_percent()
        assert set(breakdown) == {"false_positive", "false_negative",
                                  "neutral_positive", "neutral_negative"}
        assert breakdown["false_negative"] == pytest.approx(100.0)

    def test_category_candidates_counted(self):
        summary = self._summary([({(1, 1): 20}, {}),
                                 ({(2, 2): 20}, {})])
        assert summary.category_candidates(Category.FALSE_NEGATIVE) == 2

    def test_empty_summary(self):
        summary = ErrorSummary()
        assert summary.total_error == 0.0
        assert summary.series() == []

    def test_summarize_collects(self):
        errors = [interval_error({(1, 1): 20}, profile({}), T)]
        assert summarize(errors).num_intervals == 1
