"""Tests for report formatting (repro.metrics.reports)."""

import pytest

from repro.core.base import IntervalProfile
from repro.metrics.error import ErrorSummary, interval_error
from repro.metrics.reports import (breakdown_headers, breakdown_row,
                                   error_breakdown_table, format_table,
                                   percent, series_table)


class TestFormatTable:
    def test_renders_aligned_columns(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "2.50" in lines[3]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_numbers_right_aligned_strings_left(self):
        table = format_table(["s", "n"], [["x", 123456]])
        header, rule, row = table.splitlines()
        assert row.startswith("x")
        assert row.rstrip().endswith("123456")

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert len(table.splitlines()) == 2


class TestBreakdownHelpers:
    def _summary(self):
        truth = {(1, 1): 20}
        hardware = IntervalProfile(index=0, candidates={},
                                   events_observed=100)
        summary = ErrorSummary()
        summary.add(interval_error(truth, hardware, 10))
        return summary

    def test_breakdown_row_has_five_values(self):
        row = breakdown_row(self._summary())
        assert len(row) == 5
        assert row[-1] == pytest.approx(100.0)  # total
        assert row[1] == pytest.approx(100.0)   # FN column

    def test_headers_align_with_row(self):
        headers = breakdown_headers("config")
        assert headers == ["config", "FP%", "FN%", "NP%", "NN%", "Total%"]

    def test_error_breakdown_table(self):
        table = error_breakdown_table({"cfg-a": self._summary()})
        assert "cfg-a" in table
        assert "FN%" in table


class TestSeriesTable:
    def test_pads_short_series(self):
        table = series_table({"a": [0.1, 0.2], "b": [0.3]})
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "30.00" in lines[2]

    def test_values_shown_in_percent(self):
        table = series_table({"a": [0.5]})
        assert "50.00" in table


def test_percent():
    assert percent(0.123) == pytest.approx(12.3)
