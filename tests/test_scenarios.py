"""Property/metamorphic harness over the scenario space.

The paper's accuracy claims are stated as *tendencies* (Section 5.6.1:
error tracks distinct tuples per interval; Section 6.2: independent
hash functions break up collision clusters).  The scenario suite makes
them testable invariants:

* same config + seed => byte-identical streams, JSONL, and profiles;
* all three backends bit-identical on every shipped preset;
* error degrades monotonically with the fresh-tuple rate (candidate
  set held constant, pinned seeds, averaged across seeds);
* error improves monotonically with interval length (near-threshold
  tuples concentrate away from the threshold as intervals grow);
* engineered hash aliasing hurts the single-hash profiler strictly
  more than the multi-hash profiler;
* trace-store replay is bit-identical to live generation, and scenario
  cache keys can never alias benchmark streams.

Golden fixtures for the shipped presets (first 256 events + final
profile summaries) live in ``tests/golden/``; regenerate with
``pytest tests/test_scenarios.py --update-golden``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import best_multi_hash, best_single_hash
from repro.core.hashing import HashFunctionFamily
from repro.profiling.session import ProfilingSession
from repro.workloads.scenarios import (ProfilePoint, ScenarioConfig,
                                       ScenarioStream, StreamSpec,
                                       alias_cluster, jsonl_lines,
                                       list_presets, load_scenario,
                                       session_chunks)
from repro.workloads.trace_store import ScenarioKey, TraceKey, TraceStore

GOLDEN_DIR = Path(__file__).parent / "golden"

PRESETS = list_presets()


def collect_stream(config, num_intervals=2):
    """The exact bytes a profiling session would read."""
    stream = ScenarioStream(config)
    pieces = list(session_chunks(stream,
                                 config.profile.interval_length,
                                 num_intervals))
    return (np.concatenate([pcs for pcs, _ in pieces]),
            np.concatenate([values for _, values in pieces]))


def profile_scenario(config, profiler_config, num_intervals=None):
    if num_intervals is None:
        num_intervals = config.profile.intervals
    session = ProfilingSession(profiler_config, keep_profiles=True)
    return session.run(ScenarioStream(config),
                       max_intervals=num_intervals).single()


def test_presets_ship():
    assert PRESETS == ["adversarial", "heavy_hitters", "stress_test"]


class TestDeterminism:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_stream_bytes_identical(self, preset):
        config = load_scenario(preset, seed=42)
        first_pcs, first_values = collect_stream(config)
        second_pcs, second_values = collect_stream(config)
        assert first_pcs.tobytes() == second_pcs.tobytes()
        assert first_values.tobytes() == second_values.tobytes()

    @pytest.mark.parametrize("preset", PRESETS)
    def test_jsonl_byte_identical(self, preset):
        config = load_scenario(preset, seed=42)
        first = "\n".join(jsonl_lines(config, num_intervals=1))
        second = "\n".join(jsonl_lines(config, num_intervals=1))
        assert first == second

    def test_seed_changes_the_stream(self):
        base = load_scenario("stress_test", seed=1)
        other = load_scenario("stress_test", seed=2)
        _, base_values = collect_stream(base, num_intervals=1)
        _, other_values = collect_stream(other, num_intervals=1)
        assert not np.array_equal(base_values, other_values)
        assert base.fingerprint() != other.fingerprint()

    def test_reset_rewinds_exactly(self):
        config = load_scenario("adversarial")
        stream = ScenarioStream(config)
        first = stream.chunk(4096)
        stream.reset()
        second = stream.chunk(4096)
        assert first[0].tobytes() == second[0].tobytes()
        assert first[1].tobytes() == second[1].tobytes()

    @pytest.mark.parametrize("preset", PRESETS)
    def test_profiles_identical_across_runs(self, preset):
        config = load_scenario(preset, seed=42)
        spec = config.profile.spec
        runs = [profile_scenario(config, best_single_hash(spec),
                                 num_intervals=2)
                for _ in range(2)]
        assert ([p.candidates for p in runs[0].profiles]
                == [p.candidates for p in runs[1].profiles])


class TestBackendParity:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_all_backends_bit_identical(self, preset):
        config = load_scenario(preset)
        spec = config.profile.spec
        for factory in (best_single_hash, best_multi_hash):
            base = factory(spec, total_entries=512)
            session = ProfilingSession(
                [base.with_backend("scalar"),
                 base.with_backend("vectorized"),
                 base.with_backend("batched")],
                keep_profiles=True)
            outcome = session.run(ScenarioStream(config),
                                  max_intervals=3)
            results = list(outcome.results.values())
            reference = [p.candidates for p in results[0].profiles]
            for result in results[1:]:
                assert [p.candidates for p in result.profiles] \
                    == reference
                assert result.summary.to_dict() \
                    == results[0].summary.to_dict()


class TestTraceStore:
    def test_replay_matches_live_generation(self, tmp_path):
        config = load_scenario("adversarial", seed=11)
        store = TraceStore(str(tmp_path))
        trace = store.get_scenario(config, num_intervals=2)
        live_pcs, live_values = collect_stream(config, num_intervals=2)
        assert np.asarray(trace.pcs).tobytes() == live_pcs.tobytes()
        assert np.asarray(trace.values).tobytes() == live_values.tobytes()

    def test_replay_profiles_bit_identical(self, tmp_path):
        config = load_scenario("stress_test", seed=11)
        spec = config.profile.spec
        store = TraceStore(str(tmp_path))
        trace = store.get_scenario(config, num_intervals=2)
        session = ProfilingSession(best_single_hash(spec),
                                   keep_profiles=True)
        replayed = session.run(trace, max_intervals=2).single()
        live = profile_scenario(config, best_single_hash(spec),
                                num_intervals=2)
        assert ([p.candidates for p in replayed.profiles]
                == [p.candidates for p in live.profiles])

    def test_rematerialization_is_byte_identical(self, tmp_path):
        config = load_scenario("adversarial", seed=11)
        stems = []
        for leg in ("a", "b"):
            store = TraceStore(str(tmp_path / leg))
            store.get_scenario(config, num_intervals=1)
            files = sorted((tmp_path / leg).iterdir())
            stems.append({f.name: f.read_bytes() for f in files})
        assert stems[0] == stems[1]

    def test_scenario_key_includes_fingerprint_and_chunk_pattern(self):
        config = load_scenario("adversarial", seed=11)
        key = ScenarioKey(config.fingerprint(), config.kind,
                          config.profile.interval_length, 1 << 16)
        assert config.fingerprint()[:20] in key.stem
        assert key.stem.startswith("scenario-")
        reseeded = config.with_seed(12)
        other = ScenarioKey(reseeded.fingerprint(), reseeded.kind,
                            reseeded.profile.interval_length, 1 << 16)
        assert other.stem != key.stem
        repatterned = ScenarioKey(config.fingerprint(), config.kind,
                                  config.profile.interval_length, 1 << 10)
        assert repatterned.stem != key.stem

    def test_scenario_stems_disjoint_from_benchmark_stems(self):
        bench = TraceKey("gcc", load_scenario("adversarial").kind,
                         8_000, 7)
        assert not bench.stem.startswith("scenario-")


class TestAccuracyInvariants:
    """Paper-predicted tendencies, pinned to deterministic seeds."""

    SEEDS = range(5)

    @staticmethod
    def _fresh_rate_config(recurring_mass, seed):
        # A fixed hot candidate set and a small above-threshold
        # recurring pool keep the true profile constant; shrinking
        # recurring_mass routes the remainder into fresh tuples.
        return ScenarioConfig(
            name="fresh-sweep", seed=seed,
            stream=StreamSpec(
                bands=({"count": 6, "top_share": 0.04,
                        "bottom_share": 0.02},),
                recurring_mass=recurring_mass, recurring_pool=16),
            profile=ProfilePoint(interval_length=2_000, threshold=0.01,
                                 intervals=10))

    def test_error_degrades_with_fresh_tuple_rate(self):
        means = []
        for recurring_mass in (0.7, 0.5, 0.3):  # fresh rate rises
            errors = []
            for seed in self.SEEDS:
                config = self._fresh_rate_config(recurring_mass, seed)
                result = profile_scenario(
                    config,
                    best_single_hash(config.profile.spec,
                                     total_entries=256))
                errors.append(result.summary.percent())
            means.append(sum(errors) / len(errors))
        assert means[0] < means[1] < means[2], means

    @staticmethod
    def _interval_length_config(interval_length, seed):
        # The warm 30-tuple band sits just under the 1% threshold;
        # counter pollution pushes it over at short intervals, and the
        # noise concentrates away as intervals grow.
        return ScenarioConfig(
            name="interval-sweep", seed=seed,
            stream=StreamSpec(
                bands=({"count": 6, "top_share": 0.05,
                        "bottom_share": 0.03},
                       {"count": 30, "top_share": 0.006,
                        "bottom_share": 0.005}),
                recurring_mass=0.3, recurring_pool=65_536),
            profile=ProfilePoint(interval_length=interval_length,
                                 threshold=0.01, intervals=10))

    def test_error_improves_with_interval_length(self):
        lengths = (500, 1_000, 4_000)
        by_length = []
        for interval_length in lengths:
            errors = []
            for seed in self.SEEDS:
                config = self._interval_length_config(interval_length,
                                                      seed)
                result = profile_scenario(
                    config,
                    best_single_hash(config.profile.spec,
                                     total_entries=256))
                errors.append(result.summary.percent())
            by_length.append(errors)
        means = [sum(errors) / len(errors) for errors in by_length]
        assert means[0] > means[1] > means[2], means
        # And the endpoints are ordered for every individual seed.
        for shortest, longest in zip(by_length[0], by_length[-1]):
            assert shortest > longest

    def test_adversarial_aliasing_hurts_single_hash_strictly_more(self):
        config = load_scenario("adversarial")
        spec = config.profile.spec
        single = profile_scenario(config, best_single_hash(spec))
        multi = profile_scenario(config, best_multi_hash(spec))
        single_error = single.summary.percent()
        multi_error = multi.summary.percent()
        assert multi_error < single_error
        # The cluster is engineered sub-threshold per member; its
        # shared counter makes the single-hash error substantial.
        assert single_error > 1.0

    def test_alias_cluster_collides_single_scatters_multi(self):
        spec = load_scenario("adversarial").aliasing
        pcs, values = alias_cluster(spec)
        assert len(set(zip(pcs.tolist(), values.tolist()))) \
            == spec.cluster
        single = HashFunctionFamily(spec.index_bits,
                                    spec.hash_seed)[spec.ordinal]
        assert len(set(single.index_array(pcs, values).tolist())) == 1
        # best_multi_hash: 4 tables of 512 entries -> 9 index bits,
        # independently seeded; the cluster must scatter in every one.
        for ordinal in range(4):
            table = HashFunctionFamily(9, spec.hash_seed)[ordinal]
            distinct = len(set(table.index_array(pcs, values).tolist()))
            assert distinct > spec.cluster // 2


class TestSessionIntegration:
    def test_scenario_stream_requires_max_intervals(self):
        config = load_scenario("adversarial")
        session = ProfilingSession(best_single_hash(config.profile.spec))
        with pytest.raises(ValueError, match="max_intervals"):
            session.run(ScenarioStream(config))

    def test_scenario_experiment_asserts_parity_and_invariant(self):
        from repro.experiments.base import ExperimentScale
        from repro.experiments.scenarios import run

        report = run(ExperimentScale().tiny())
        assert set(report.data) == set(PRESETS)
        for name, entry in report.data.items():
            digests = {json.dumps(entry["backends"][backend],
                                  sort_keys=True)
                       for backend in entry["backends"]}
            assert len(digests) == 1, f"{name}: backends disagree"
        adversarial = report.data["adversarial"]["backends"]["scalar"]
        from repro.metrics.error import ErrorSummary

        single = ErrorSummary.from_dict(
            adversarial["best_single_hash"]).percent()
        multi = ErrorSummary.from_dict(
            adversarial["best_multi_hash"]).percent()
        assert multi < single


@pytest.mark.parametrize("preset", PRESETS)
def test_golden_scenarios(preset, update_golden):
    """First 256 events + final profile summaries, pinned."""
    config = load_scenario(preset)
    pcs, values = collect_stream(config, num_intervals=2)
    spec = config.profile.spec
    snapshot = {
        "fingerprint": config.fingerprint(),
        "events": [[int(pc), int(value)]
                   for pc, value in zip(pcs[:256], values[:256])],
        "profiles": {},
    }
    for label, factory in (("best_single_hash", best_single_hash),
                           ("best_multi_hash", best_multi_hash)):
        result = profile_scenario(config, factory(spec),
                                  num_intervals=2)
        final = result.profiles[-1]
        snapshot["profiles"][label] = {
            "error_series": [round(point, 12)
                             for point in result.summary.series()],
            "final_interval": {
                "index": final.index,
                "candidates": sorted(
                    [int(pc), int(value), int(count)]
                    for (pc, value), count in final.candidates.items()),
            },
        }

    path = GOLDEN_DIR / f"scenario_{preset}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2) + "\n",
                        encoding="utf-8")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), (
        f"missing fixture {path}; generate it with "
        f"pytest tests/test_scenarios.py --update-golden")
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert snapshot == expected
