"""Tests for instruction definitions (repro.simulator.isa)."""

import pytest

from repro.simulator.isa import (CONDITIONAL_OPCODES, CONTROL_OPCODES,
                                 OPERAND_SHAPES, Instruction, Opcode)


class TestInstructionValidation:
    def test_three_operand_alu(self):
        instruction = Instruction(Opcode.ADD, registers=(1, 2, 3))
        assert not instruction.is_control

    def test_wrong_register_count_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, registers=(1, 2))

    def test_register_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDI, registers=(32,), immediate=0)

    def test_missing_immediate_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDI, registers=(1,))

    def test_unexpected_immediate_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, registers=(1, 2, 3), immediate=5)

    def test_every_opcode_has_a_shape(self):
        assert set(OPERAND_SHAPES) == set(Opcode)


class TestClassification:
    def test_control_opcodes(self):
        assert Opcode.BR in CONTROL_OPCODES
        assert Opcode.RET in CONTROL_OPCODES
        assert Opcode.ADD not in CONTROL_OPCODES

    def test_conditionals_subset_of_control(self):
        assert CONDITIONAL_OPCODES <= CONTROL_OPCODES

    def test_is_conditional(self):
        branch = Instruction(Opcode.BEQZ, registers=(1,), immediate=0x100)
        jump = Instruction(Opcode.BR, immediate=0x100)
        assert branch.is_conditional
        assert not jump.is_conditional


class TestRendering:
    def test_render_alu(self):
        assert Instruction(Opcode.ADD,
                           registers=(1, 2, 3)).render() == "add r1, r2, r3"

    def test_render_with_immediate(self):
        assert Instruction(Opcode.LD, registers=(4, 2),
                           immediate=8).render() == "ld r4, r2, 8"

    def test_render_bare(self):
        assert Instruction(Opcode.HALT).render() == "halt"
