"""Tests for adaptive interval selection (repro.profiling.adaptive)."""

import pytest

from repro.core.tuples import EventKind
from repro.profiling.adaptive import select_interval_length
from repro.workloads.benchmarks import benchmark_generator
from repro.workloads.generators import (HotBand, StreamModel,
                                        TupleStreamGenerator)


def phased_generator(phase_length: int) -> TupleStreamGenerator:
    model = StreamModel(
        name="phased", kind=EventKind.VALUE,
        bands=(HotBand(count=12, top_share=0.06, bottom_share=0.02),),
        recurring_mass=0.1, recurring_pool=50,
        num_phases=4, phase_length=phase_length, phase_overlap=0.0,
        seed=21)
    return TupleStreamGenerator(model)


class TestSelection:
    def test_returns_probed_length(self):
        generator = phased_generator(phase_length=50_000)
        choice = select_interval_length(generator, [2_000, 10_000],
                                        threshold=0.01,
                                        intervals_per_length=4)
        assert choice.selected in (2_000, 10_000)
        assert set(choice.mean_variation) == {2_000, 10_000}

    def test_coarse_phases_prefer_short_intervals(self):
        # Phase changes every 20K events: 10K intervals cross a
        # boundary every other interval (unstable), 2K intervals only
        # every tenth (stable) -> short wins.
        generator = phased_generator(phase_length=20_000)
        choice = select_interval_length(generator, [2_000, 10_000],
                                        threshold=0.01,
                                        intervals_per_length=8,
                                        tolerance=2.0)
        assert choice.selected == 2_000
        assert choice.variation_of(2_000) < choice.variation_of(10_000)

    def test_ties_break_toward_responsiveness(self):
        # No phases at all: every length is equally stable, so the
        # shortest (most responsive) is chosen.
        generator = phased_generator(phase_length=10 ** 9)
        choice = select_interval_length(generator, [10_000, 2_000],
                                        threshold=0.01,
                                        intervals_per_length=4)
        assert choice.selected == 2_000

    def test_generator_rewound_after_selection(self):
        generator = phased_generator(phase_length=50_000)
        select_interval_length(generator, [2_000], threshold=0.01,
                               intervals_per_length=2)
        assert generator._position == 0

    def test_rejects_bad_arguments(self):
        generator = phased_generator(phase_length=50_000)
        with pytest.raises(ValueError):
            select_interval_length(generator, [])
        with pytest.raises(ValueError):
            select_interval_length(generator, [1_000],
                                   intervals_per_length=1)


class TestOnBenchmarks:
    def test_m88ksim_unstable_at_short_intervals(self):
        """Bursty m88ksim needs long intervals to see its candidates
        consistently (Figure 6's top-panel behaviour)."""
        m88 = select_interval_length(benchmark_generator("m88ksim"),
                                     [10_000, 100_000],
                                     intervals_per_length=6,
                                     tolerance=2.0)
        assert m88.variation_of(10_000) > m88.variation_of(100_000)

    def test_deltablue_unstable_at_phase_scale_intervals(self):
        """Coarse-phased deltablue destabilizes once intervals approach
        its phase length (Figure 6's bottom-panel behaviour)."""
        deltablue = select_interval_length(
            benchmark_generator("deltablue"), [100_000, 1_000_000],
            intervals_per_length=4, tolerance=2.0)
        assert deltablue.variation_of(1_000_000) > \
            deltablue.variation_of(100_000)
        assert deltablue.selected == 100_000
