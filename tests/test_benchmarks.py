"""Tests for the calibrated benchmark models (repro.workloads.benchmarks)."""

import pytest

from repro.core.config import SHORT_INTERVAL
from repro.core.tuples import EventKind
from repro.workloads.benchmarks import (BENCHMARK_NAMES, EDGE_TARGETS,
                                        VALUE_TARGETS, all_models,
                                        benchmark_generator,
                                        benchmark_model, benchmark_stream,
                                        benchmark_targets)
from repro.workloads.solver import expected_distinct


class TestRegistry:
    def test_eight_benchmarks_each_kind(self):
        assert len(BENCHMARK_NAMES) == 8
        assert set(VALUE_TARGETS) == set(BENCHMARK_NAMES)
        assert set(EDGE_TARGETS) == set(BENCHMARK_NAMES)

    def test_unknown_benchmark_lists_known(self):
        with pytest.raises(ValueError, match="burg"):
            benchmark_targets("quake")

    def test_all_models_build(self):
        assert len(all_models(EventKind.VALUE)) == 8
        assert len(all_models(EventKind.EDGE)) == 8

    def test_stream_length_exact(self):
        stream = benchmark_stream("li", SHORT_INTERVAL, num_intervals=2)
        assert sum(1 for _ in stream) == 20_000

    def test_generators_independent(self):
        a = benchmark_generator("li")
        b = benchmark_generator("li")
        a.chunk(100)
        # b is unaffected by a's progress.
        assert b._position == 0


class TestPaperCharacterization:
    """Figure 4/5 orderings encoded as invariants of the models."""

    def test_gcc_go_have_most_distinct_tuples(self):
        distinct = {name: expected_distinct(benchmark_model(name), 10_000)
                    for name in BENCHMARK_NAMES}
        ordered = sorted(distinct, key=distinct.get, reverse=True)
        assert set(ordered[:2]) == {"gcc", "go"}
        assert set(ordered[-2:]) == {"li", "m88ksim"}

    def test_distinct_grows_roughly_with_interval_length(self):
        for name in BENCHMARK_NAMES:
            model = benchmark_model(name)
            d10 = expected_distinct(model, 10_000)
            d1m = expected_distinct(model, 1_000_000)
            assert d1m > 5 * d10

    def test_candidate_counts_small_vs_distinct(self):
        for name in BENCHMARK_NAMES:
            model = benchmark_model(name)
            candidates = model.candidates_at(0.001)
            distinct = expected_distinct(model, 10_000)
            assert candidates < 0.2 * distinct

    def test_candidates_match_targets_exactly(self):
        for name in BENCHMARK_NAMES:
            solved = benchmark_targets(name)
            model = benchmark_model(name)
            assert model.candidates_at(0.01) == solved.candidates_1pct
            assert model.candidates_at(0.001) == solved.candidates_01pct

    def test_edge_streams_have_fewer_distinct_tuples(self):
        """Section 6.4.2: 'The edge profiler will see fewer distinct
        tuples than value profiling.'"""
        for name in BENCHMARK_NAMES:
            value = expected_distinct(
                benchmark_model(name, EventKind.VALUE), 10_000)
            edge = expected_distinct(
                benchmark_model(name, EventKind.EDGE), 10_000)
            assert edge < value

    def test_edge_population_nearly_static(self):
        for name in BENCHMARK_NAMES:
            model = benchmark_model(name, EventKind.EDGE)
            assert model.fresh_mass < 0.05

    def test_temporal_character(self):
        # deltablue: coarse phases; m88ksim/vortex: bursty, long phases.
        deltablue = benchmark_targets("deltablue")
        assert deltablue.phase_length >= 1_000_000
        assert deltablue.phase_overlap <= 0.3
        for name in ("m88ksim", "vortex"):
            assert benchmark_targets(name).burstiness >= 0.5
            assert benchmark_targets(name).phase_length >= 5_000_000
