"""Tests for the profiler protocol (repro.core.base)."""

import pytest

from repro.core.base import HardwareProfiler, IntervalProfile, ProfilerStats
from repro.core.config import IntervalSpec


class CountingProfiler(HardwareProfiler):
    """Minimal concrete profiler: exact counting, for protocol tests."""

    def __init__(self, interval):
        super().__init__(interval)
        self._counts = {}

    def observe(self, event):
        self._count_event()
        self._counts[event] = self._counts.get(event, 0) + 1

    def _close_interval(self):
        threshold = self.interval.threshold_count
        report = {event: count for event, count in self._counts.items()
                  if count >= threshold}
        self._counts.clear()
        return report


SPEC = IntervalSpec(length=100, threshold=0.05)


class TestIntervalProfile:
    def test_frequency_defaults_to_zero(self):
        profile = IntervalProfile(index=0, candidates={(1, 1): 7},
                                  events_observed=100)
        assert profile.frequency((1, 1)) == 7
        assert profile.frequency((2, 2)) == 0

    def test_len_is_candidate_count(self):
        profile = IntervalProfile(index=0,
                                  candidates={(1, 1): 7, (2, 2): 9},
                                  events_observed=100)
        assert len(profile) == 2


class TestProtocol:
    def test_run_counts_full_and_partial_intervals(self):
        profiler = CountingProfiler(SPEC)
        profiles = profiler.run(iter([(1, 1)] * 250))
        assert [p.events_observed for p in profiles] == [100, 100, 50]
        assert [p.index for p in profiles] == [0, 1, 2]

    def test_run_empty_stream(self):
        assert CountingProfiler(SPEC).run(iter([])) == []

    def test_stats_track_events_and_intervals(self):
        profiler = CountingProfiler(SPEC)
        profiler.run(iter([(1, 1)] * 150))
        assert profiler.stats.events == 150
        assert profiler.stats.intervals == 2

    def test_default_observe_chunk_falls_back_to_observe(self):
        profiler = CountingProfiler(SPEC)
        profiler.observe_chunk([(1, 1)] * 6, None)
        assert profiler.end_interval().candidates == {(1, 1): 6}

    def test_name_defaults_to_class_name(self):
        assert CountingProfiler(SPEC).name == "CountingProfiler"


class TestProfilerStats:
    def test_as_dict_round_trip(self):
        stats = ProfilerStats(events=10, promotions=2)
        data = stats.as_dict()
        assert data["events"] == 10
        assert data["promotions"] == 2
        assert set(data) == {"events", "accumulator_hits", "hash_updates",
                             "promotions", "rejected_promotions",
                             "evictions", "intervals"}
