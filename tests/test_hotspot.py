"""Tests for the hot-spot detector baseline (repro.core.hotspot)."""

import pytest

from repro.core.config import IntervalSpec
from repro.core.hotspot import HotSpotConfig, HotSpotDetector

SPEC = IntervalSpec(length=2_000, threshold=0.01)  # threshold_count 20


def config(**overrides) -> HotSpotConfig:
    base = dict(interval=SPEC, sets=16, ways=2, candidate_threshold=8,
                hdc_max=64, hdc_decrement=2, hdc_increment=1)
    base.update(overrides)
    return HotSpotConfig(**base)


def loop_stream(branches, repetitions):
    for _ in range(repetitions):
        for branch in branches:
            yield branch


class TestDetection:
    def test_tight_loop_enters_hot_spot(self):
        detector = HotSpotDetector(config())
        branches = [(0x100 + 8 * i, 0x200 + 8 * i) for i in range(4)]
        for event in loop_stream(branches, 100):
            detector.observe(event)
        assert detector.in_hot_spot
        assert detector.hot_fraction() > 0.5

    def test_random_walk_never_hot(self):
        detector = HotSpotDetector(config())
        for i in range(400):
            detector.observe((0x1000 + 8 * i, i))  # all unique
        assert not detector.in_hot_spot
        assert detector.hot_events == 0

    def test_hot_entries_counted_once_per_region(self):
        detector = HotSpotDetector(config())
        branches = [(0x100, 0x200)]
        for event in loop_stream(branches, 200):
            detector.observe(event)
        assert detector.hot_entries == 1

    def test_leaving_the_loop_exits_hot_spot(self):
        detector = HotSpotDetector(config())
        for event in loop_stream([(0x100, 0x200)], 100):
            detector.observe(event)
        assert detector.in_hot_spot
        for i in range(300):
            detector.observe((0x9000 + 8 * i, i))
        assert not detector.in_hot_spot


class TestReporting:
    def test_candidates_reported_at_interval_end(self):
        detector = HotSpotDetector(config())
        for event in loop_stream([(0x100, 0x200), (0x108, 0x300)], 50):
            detector.observe(event)
        profile = detector.end_interval()
        assert profile.candidates == {(0x100, 0x200): 50,
                                      (0x108, 0x300): 50}

    def test_interval_end_resets_detector(self):
        detector = HotSpotDetector(config())
        for event in loop_stream([(0x100, 0x200)], 100):
            detector.observe(event)
        detector.end_interval()
        assert not detector.in_hot_spot
        assert detector.end_interval().candidates == {}

    def test_sub_threshold_candidates_not_reported(self):
        detector = HotSpotDetector(config())
        # Candidate flag fires at 8 executions, but the interval
        # threshold is 20: 10 executions must not be reported.
        for event in loop_stream([(0x100, 0x200)], 10):
            detector.observe(event)
        assert detector.end_interval().candidates == {}


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(sets=3), dict(ways=0), dict(candidate_threshold=0),
        dict(hdc_max=0), dict(hdc_decrement=0), dict(hdc_increment=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            config(**kwargs)
