"""Experiment fabric: parallel parity, result caching, runner plumbing.

The load-bearing guarantee is **bit-identical reports**: for every
registered experiment, running under an active fabric with ``--jobs 4``
must render exactly the serial no-fabric output -- whether cells are
executed in workers, in-process, or served from the result cache.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.core.config import BACKEND_ENV, best_single_hash
from repro.core.tuples import EventKind
from repro.experiments import runner
from repro.experiments.base import EXPERIMENTS, ExperimentScale
from repro.experiments.fabric import ExperimentFabric, SweepCell, activate
from repro.experiments.runner import (build_parser, resolve_names,
                                      scale_from_args)

TINY = ExperimentScale().tiny()
#: Single-benchmark scale for the cheap cache-behaviour tests.
SMALL = replace(TINY, benchmarks=("gcc",))


# ----------------------------------------------------------------------
# Parity: serial == parallel for every experiment
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("fabric-cache"))


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_parallel_run_is_bit_identical_to_serial(name, shared_cache):
    serial = EXPERIMENTS[name](TINY).render()
    with ExperimentFabric(jobs=4, cache_dir=shared_cache) as fabric:
        with activate(fabric):
            parallel = EXPERIMENTS[name](TINY).render()
    assert parallel == serial


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

def _run_fig07(cache_dir, **kwargs):
    with ExperimentFabric(jobs=1, cache_dir=cache_dir,
                          **kwargs) as fabric:
        with activate(fabric):
            rendered = EXPERIMENTS["fig07"](SMALL).render()
        return rendered, fabric.stats


def test_second_run_hits_cache_and_skips_execution(tmp_path):
    first, cold = _run_fig07(str(tmp_path))
    assert cold.executed > 0 and cold.cache_hits == 0
    second, warm = _run_fig07(str(tmp_path))
    assert warm.executed == 0
    assert warm.cache_hits == cold.executed
    assert second == first  # cached results render bit-identically


def test_refresh_recomputes_but_rewrites_cache(tmp_path):
    first, _ = _run_fig07(str(tmp_path))
    refreshed, stats = _run_fig07(str(tmp_path), refresh=True)
    assert stats.executed > 0 and stats.cache_hits == 0
    assert refreshed == first
    _, warm = _run_fig07(str(tmp_path))  # refresh repopulated the cache
    assert warm.executed == 0 and warm.cache_hits > 0


def test_mapped_cells_are_cached_too(tmp_path):
    """fig04 runs through fabric_map, not sweep(); its cells memoize
    under the pickle-based mapped-cell cache."""
    def run():
        with ExperimentFabric(jobs=1,
                              cache_dir=str(tmp_path)) as fabric:
            with activate(fabric):
                rendered = EXPERIMENTS["fig04"](SMALL).render()
            return rendered, fabric.stats
    first, cold = run()
    assert cold.mapped_cells > 0 and cold.mapped_hits == 0
    second, warm = run()
    assert warm.mapped_hits == warm.mapped_cells == cold.mapped_cells
    assert second == first


def test_no_cache_disables_memoization(tmp_path):
    _run_fig07(str(tmp_path), use_result_cache=False)
    _, stats = _run_fig07(str(tmp_path), use_result_cache=False)
    assert stats.executed > 0 and stats.cache_hits == 0
    assert not os.path.exists(str(tmp_path / "results"))


def test_fingerprint_is_stable_and_input_sensitive():
    spec = TINY.short_spec
    config = best_single_hash(spec)
    config = config.with_backend(config.resolved_backend)
    cell = SweepCell(benchmark="gcc", configs=(("BSH", config),),
                     num_intervals=4, kind=EventKind.VALUE, seed=7)
    assert cell.fingerprint() == cell.fingerprint()
    assert len(cell.fingerprint()) == 64
    other = replace(cell, num_intervals=5)
    assert other.fingerprint() != cell.fingerprint()
    assert (replace(cell, benchmark="go").fingerprint()
            != cell.fingerprint())


# ----------------------------------------------------------------------
# Runner plumbing
# ----------------------------------------------------------------------

def test_resolve_names_dedupes_preserving_order():
    assert resolve_names(["fig07", "fig07", "fig04"]) == ["fig07",
                                                          "fig04"]


def test_resolve_names_mixes_all_with_explicit_names():
    names = resolve_names(["fig13", "all"])
    assert names[0] == "fig13"
    assert sorted(names) == sorted(EXPERIMENTS)
    assert names.count("fig13") == 1


def test_backend_flag_threads_through_scale_not_environ():
    before = os.environ.get(BACKEND_ENV)
    args = build_parser().parse_args(["fig07", "--backend", "scalar"])
    scale = scale_from_args(args)
    assert scale.backend == "scalar"
    assert os.environ.get(BACKEND_ENV) == before


def test_unknown_experiment_fails_cleanly(capsys):
    assert runner.main(["definitely-not-real"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_bench_cannot_mix_with_other_names(capsys):
    assert runner.main(["bench", "fig07"]) == 2
    assert "bench" in capsys.readouterr().err
