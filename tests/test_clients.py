"""Tests for the Section 2 optimization clients (repro.clients)."""

import pytest

from repro.clients import (delinquent_loads, evaluate_plan,
                           evaluate_selection, evaluate_traces,
                           form_traces, misprediction_tuple,
                           plan_specializations, select_hard_branches)
from repro.clients.trace_formation import build_edge_graph


class TestValueSpecialization:
    CANDIDATES = {
        (0x100, 7): 90,    # dominant value at 0x100
        (0x100, 8): 10,
        (0x200, 5): 40,    # no dominant value at 0x200
        (0x200, 6): 35,
        (0x200, 9): 25,
    }

    def test_plans_only_dominant_values(self):
        plan = plan_specializations(self.CANDIDATES, min_share=0.6)
        assert len(plan) == 1
        (item,) = plan.specializations
        assert (item.pc, item.value) == (0x100, 7)
        assert item.profiled_share == pytest.approx(0.9)

    def test_share_is_per_pc_not_global(self):
        plan = plan_specializations(self.CANDIDATES, min_share=0.4)
        assert plan.chosen_values()[0x200] == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            plan_specializations({}, min_share=0.0)
        with pytest.raises(ValueError):
            plan_specializations({}, max_values_per_pc=0)

    def test_evaluation_counts_hits_and_cost(self):
        plan = plan_specializations(self.CANDIDATES, min_share=0.6)
        events = [(0x100, 7)] * 8 + [(0x100, 8)] * 2 + [(0x300, 1)] * 5
        outcome = evaluate_plan(plan, events, load_latency=3.0,
                                guard_cost=1.0)
        assert outcome.guarded_loads == 10
        assert outcome.fast_hits == 8
        assert outcome.hit_rate == pytest.approx(0.8)
        assert outcome.cycles_saved == pytest.approx(8 * 3 - 10 * 1)

    def test_bad_plan_shows_net_loss(self):
        # Specializing a value that never recurs costs guard cycles.
        plan = plan_specializations({(0x100, 7): 100}, min_share=0.5)
        outcome = evaluate_plan(plan, [(0x100, 99)] * 20)
        assert outcome.cycles_saved < 0


class TestTraceFormation:
    # A loop: block A branches to B, B back to A; a cold side exit.
    CANDIDATES = {
        (0x1000, 0x1040): 500,   # A -> B
        (0x1060, 0x1000): 480,   # B -> A (branch at 0x1060, in B)
        (0x1000, 0x1004): 20,    # A fall-through (cold)
    }

    def test_forms_the_hot_loop_trace(self):
        plan = form_traces(self.CANDIDATES, max_traces=2)
        assert plan.traces
        hot = plan.traces[0]
        assert hot.edges[0] == (0x1000, 0x1040)
        assert (0x1060, 0x1000) in hot.edges

    def test_coverage_reflects_weight(self):
        plan = form_traces(self.CANDIDATES, max_traces=1,
                           max_trace_edges=4)
        assert plan.coverage > 0.9

    def test_min_weight_filters_cold_edges(self):
        plan = form_traces(self.CANDIDATES, min_edge_weight=100)
        assert (0x1000, 0x1004) not in plan.edge_set()

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            form_traces(self.CANDIDATES, max_traces=0)

    def test_evaluation_on_executed_stream(self):
        plan = form_traces(self.CANDIDATES)
        executed = [(0x1000, 0x1040), (0x1060, 0x1000)] * 10 \
            + [(0x9000, 0x9100)] * 5
        outcome = evaluate_traces(plan, executed)
        assert outcome.executed_edges == 25
        assert outcome.fetch_coverage == pytest.approx(20 / 25)

    def test_graph_builder_accumulates_weights(self):
        graph = build_edge_graph({(1, 2): 5})
        assert graph[1][2]["weight"] == 5


class TestPrefetchClient:
    CANDIDATES = {
        (0x500, 0x8000): 50,
        (0x500, 0x8040): 45,   # same PC, streaming across lines
        (0x600, 0x9000): 30,
        (0x700, 0xA000): 5,
    }

    def test_delinquent_ranking_aggregates_lines(self):
        ranked = delinquent_loads(self.CANDIDATES, top=2)
        assert ranked[0] == (0x500, 95)
        assert ranked[1] == (0x600, 30)

    def test_top_limits_selection(self):
        assert len(delinquent_loads(self.CANDIDATES, top=1)) == 1
        with pytest.raises(ValueError):
            delinquent_loads(self.CANDIDATES, top=0)

    def test_stride_prefetcher_removes_streaming_misses(self):
        from repro.simulator.cache import CacheConfig, SetAssociativeCache
        from repro.clients.prefetch import StridePrefetcher

        cache = SetAssociativeCache(CacheConfig(sets=16, ways=2,
                                                line_words=4))
        prefetcher = StridePrefetcher(cache, pcs=[0x500], degree=2)
        misses = 0
        for i in range(64):
            address = 0x8000 + 4 * i  # one line per access
            if cache.access(address):
                misses += 1
            prefetcher.observe(0x500, address)
        # After the stride locks in, prefetching hides the stream.
        assert misses < 10
        assert prefetcher.stats.issued > 0

    def test_untracked_pcs_ignored(self):
        from repro.simulator.cache import SetAssociativeCache
        from repro.clients.prefetch import StridePrefetcher

        cache = SetAssociativeCache()
        prefetcher = StridePrefetcher(cache, pcs=[0x500])
        prefetcher.observe(0x999, 0x8000)
        assert prefetcher.stats.observed_loads == 0


class TestHardBranches:
    CANDIDATES = {
        misprediction_tuple(0x100, True): 60,
        misprediction_tuple(0x100, False): 55,  # alternating branch
        misprediction_tuple(0x200, True): 30,
        misprediction_tuple(0x300, False): 4,
    }

    def test_selection_aggregates_directions(self):
        selection = select_hard_branches(self.CANDIDATES, max_branches=2)
        assert selection.branches == (0x100, 0x200)
        assert selection.profiled_weight[0x100] == 115

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            select_hard_branches(self.CANDIDATES, max_branches=0)

    def test_coverage_evaluation(self):
        selection = select_hard_branches(self.CANDIDATES, max_branches=1)
        truth = {0x100: 120, 0x200: 35, 0x300: 45}
        outcome = evaluate_selection(selection, truth)
        assert outcome.total_mispredictions == 200
        assert outcome.coverage == pytest.approx(120 / 200)


class TestEndToEndHardBranchPipeline:
    def test_monitor_profiles_feed_selection(self):
        """Run a program with a data-dependent branch, profile its
        mispredictions through the real multi-hash profiler, and check
        the selection covers most stalls."""
        import random

        from repro.clients import MispredictionMonitor
        from repro.core import IntervalSpec, best_multi_hash
        from repro.profiling import ProfilingSession
        from repro.simulator import Machine, assemble
        from repro.workloads import record

        rng = random.Random(8)
        data = ", ".join(str(rng.randrange(2)) for _ in range(256))
        machine = Machine(assemble(f"""
        .data bits {data}
        main:
            ldi r10, 6
        outer:
            beqz r10, done
            ldi r1, bits
            ldi r2, 0
            ldi r3, 256
        loop:
            cmplt r5, r2, r3
            beqz r5, next
            add r6, r1, r2
            ld r7, r6, 0
        hard:
            bnez r7, odd       ; data-dependent: hard to predict
            addi r8, r8, 1
        odd:
            addi r2, r2, 1
            br loop
        next:
            addi r10, r10, -1
            br outer
        done: halt
        """))
        monitor = MispredictionMonitor(machine)
        machine.run()
        monitor.detach()

        hard_pc = machine.program.address_of("hard")
        assert monitor.true_mispredicts.get(hard_pc, 0) > 100

        spec = IntervalSpec(length=256, threshold=0.05)
        result = ProfilingSession(
            best_multi_hash(spec, total_entries=256),
            keep_profiles=True).run(record(monitor.tuples))
        profile = result.single().profiles[0]
        selection = select_hard_branches(profile.candidates,
                                         max_branches=2)
        assert hard_pc in selection.branches
        outcome = evaluate_selection(selection, monitor.true_mispredicts)
        assert outcome.coverage > 0.5
