"""Tests for the SimpleAlpha interpreter (repro.simulator.machine)."""

import pytest

from repro.simulator.assembler import assemble
from repro.simulator.isa import WORD_MASK
from repro.simulator.machine import Machine, MachineFault


def run(source, max_instructions=100_000):
    machine = Machine(assemble(source))
    machine.run(max_instructions)
    return machine


class TestALU:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 7, 5, 12),
        ("sub", 7, 5, 2),
        ("mul", 7, 5, 35),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 3, 4, 48),
        ("shr", 48, 4, 3),
        ("cmplt", 3, 4, 1),
        ("cmplt", 4, 3, 0),
        ("cmpeq", 5, 5, 1),
        ("cmpeq", 5, 6, 0),
    ])
    def test_register_register(self, op, a, b, expected):
        machine = run(f"""
        ldi r1, {a}
        ldi r2, {b}
        {op} r3, r1, r2
        halt
        """)
        assert machine.read_register(3) == expected

    def test_arithmetic_wraps_to_64_bits(self):
        machine = run(f"""
        ldi r1, {WORD_MASK}
        addi r1, r1, 1
        halt
        """)
        assert machine.read_register(1) == 0

    def test_sub_wraps_under_zero(self):
        machine = run("""
        ldi r1, 0
        addi r1, r1, -1
        halt
        """)
        assert machine.read_register(1) == WORD_MASK

    def test_immediates(self):
        machine = run("""
        ldi r1, 10
        addi r2, r1, 5
        muli r3, r1, 3
        andi r4, r1, 2
        xori r5, r1, 0xFF
        halt
        """)
        assert machine.read_register(2) == 15
        assert machine.read_register(3) == 30
        assert machine.read_register(4) == 2
        assert machine.read_register(5) == 10 ^ 0xFF

    def test_shift_amount_masked_to_six_bits(self):
        machine = run("""
        ldi r1, 1
        ldi r2, 65
        shl r3, r1, r2
        halt
        """)
        assert machine.read_register(3) == 2  # 65 & 63 == 1


class TestMemory:
    def test_store_then_load(self):
        machine = run("""
        ldi r1, 0x2000
        ldi r2, 99
        st r2, r1, 0
        ld r3, r1, 0
        halt
        """)
        assert machine.read_register(3) == 99
        assert machine.state.loads == 1
        assert machine.state.stores == 1

    def test_displacement_addressing(self):
        machine = run("""
        .data arr 10, 20, 30
        ldi r1, arr
        ld r2, r1, 2
        halt
        """)
        assert machine.read_register(2) == 30

    def test_unwritten_memory_reads_zero(self):
        machine = run("""
        ldi r1, 0x9999
        ld r2, r1, 0
        halt
        """)
        assert machine.read_register(2) == 0

    def test_initial_data_image_loaded(self):
        machine = Machine(assemble(".data arr 42\nhalt"))
        address = machine.program.address_of("arr")
        assert machine.memory.load(address) == 42


class TestControlFlow:
    def test_conditional_taken_and_fallthrough(self):
        machine = run("""
        ldi r1, 0
        beqz r1, taken
        ldi r2, 111
        halt
        taken: ldi r2, 222
        halt
        """)
        assert machine.read_register(2) == 222

    def test_loop_counts(self):
        machine = run("""
        ldi r1, 5
        ldi r2, 0
        loop: beqz r1, done
        addi r2, r2, 10
        addi r1, r1, -1
        br loop
        done: halt
        """)
        assert machine.read_register(2) == 50

    def test_indirect_jump_through_register(self):
        machine = run("""
        ldi r1, target
        jr r1
        ldi r2, 1
        target: ldi r2, 7
        halt
        """)
        assert machine.read_register(2) == 7

    def test_call_and_ret(self):
        machine = run("""
        call sub
        ldi r2, 5
        halt
        sub: ldi r1, 9
        ret
        """)
        assert machine.read_register(1) == 9
        assert machine.read_register(2) == 5

    def test_branch_statistics(self):
        machine = run("""
        ldi r1, 1
        bnez r1, over
        nop
        over: beqz r1, never
        halt
        never: halt
        """)
        assert machine.state.branches == 2
        assert machine.state.taken_branches == 1


class TestHooksAndFaults:
    def test_load_hook_sees_pc_address_value(self):
        machine = Machine(assemble("""
        .data arr 77
        ldi r1, arr
        ld r2, r1, 0
        halt
        """))
        observed = []
        machine.load_hooks.append(
            lambda pc, address, value: observed.append(
                (pc, address, value)))
        machine.run()
        (event,) = observed
        assert event[1] == machine.program.address_of("arr")
        assert event[2] == 77

    def test_branch_hook_sees_direction(self):
        machine = Machine(assemble("""
        ldi r1, 1
        beqz r1, skip
        skip: halt
        """))
        observed = []
        machine.branch_hooks.append(
            lambda pc, target, taken: observed.append(taken))
        machine.run()
        assert observed == [False]  # fall-through

    def test_fetch_fault_on_bad_jump(self):
        machine = Machine(assemble("ldi r1, 4\njr r1\nhalt"))
        with pytest.raises(MachineFault, match="fetch fault"):
            machine.run()

    def test_instruction_budget_stops_runaway(self):
        machine = Machine(assemble("loop: br loop"))
        state = machine.run(max_instructions=50)
        assert state.instructions == 50
        assert not state.halted

    def test_step_after_halt_is_noop(self):
        machine = Machine(assemble("halt"))
        machine.run()
        assert not machine.step()
        assert machine.state.instructions == 1

    def test_rejects_bad_budget(self):
        machine = Machine(assemble("halt"))
        with pytest.raises(ValueError):
            machine.run(max_instructions=0)
