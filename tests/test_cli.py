"""Tests for the repro-profile CLI (repro.cli)."""

import json
import re

import pytest

from repro.cli import build_parser, config_from_args, main


class TestParsing:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        config = config_from_args(args)
        assert config.num_tables == 4
        assert config.conservative_update
        assert config.interval.length == 10_000

    def test_profiler_flags(self):
        args = build_parser().parse_args([
            "stream", "--tables", "1", "--entries", "512",
            "--interval", "5000", "--threshold", "0.02",
            "--resetting", "--no-retaining"])
        config = config_from_args(args)
        assert config.num_tables == 1
        assert not config.conservative_update  # meaningless at 1 table
        assert config.resetting
        assert not config.retaining
        assert config.interval.threshold == 0.02

    def test_c0_flag(self):
        args = build_parser().parse_args(
            ["stream", "--no-conservative-update"])
        assert not config_from_args(args).conservative_update

    def test_unknown_benchmark_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--benchmark", "quake"])


class TestCommands:
    def test_stream_prints_candidates_and_error(self, capsys):
        code = main(["stream", "--benchmark", "li", "--intervals", "2",
                     "--top", "3", "--entries", "512"])
        out = capsys.readouterr().out
        assert code == 0
        assert "net error" in out
        assert "interval 0" in out

    def test_record_then_trace_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "li.npz")
        assert main(["record", "--benchmark", "li", "--events", "12000",
                     "-o", path]) == 0
        assert main(["trace", path, "--interval", "6000",
                     "--entries", "512"]) == 0
        out = capsys.readouterr().out
        assert "12000 events" in out

    def test_record_program(self, tmp_path, capsys):
        path = str(tmp_path / "prog.npz")
        assert main(["record", "--program", "value", "--kind", "value",
                     "-o", path]) == 0
        assert "program:value" in capsys.readouterr().out

    def test_trace_too_short_fails_cleanly(self, tmp_path, capsys):
        path = str(tmp_path / "short.npz")
        main(["record", "--benchmark", "li", "--events", "100",
              "-o", path])
        assert main(["trace", path, "--interval", "10000"]) == 1

    def test_missing_trace_is_an_error(self, tmp_path):
        assert main(["trace", str(tmp_path / "none.npz")]) == 2

    def test_invalid_config_is_an_error(self, capsys):
        # 2048 counters over 3 tables is not a power-of-two split.
        assert main(["stream", "--tables", "3"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRecordTraceStreamRoundTrip:
    """record -> trace replay must reproduce the live stream exactly.

    A synthetic stream's content depends on how its RNG draws are
    batched, so the recording uses ``--chunk`` to match the live
    session's per-interval chunking; with that pinned, the replayed
    trace and the live stream are the same events and every error
    number agrees to the printed digit.
    """

    #: A deliberately stressed configuration (one tiny table, no
    #: retaining) so the compared summaries are far from 0 % and the
    #: comparison has teeth.
    FLAGS = ["--tables", "1", "--entries", "64", "--no-retaining",
             "--interval", "6000"]

    @staticmethod
    def _net_error_line(out: str) -> str:
        match = re.search(r"net error: [\d.]+%.*", out)
        assert match, f"no net-error line in output:\n{out}"
        return match.group(0)

    def test_trace_replay_matches_live_stream(self, tmp_path, capsys):
        path = str(tmp_path / "gcc.npz")
        assert main(["record", "--benchmark", "gcc", "--seed", "9",
                     "--events", "12000", "--chunk", "6000",
                     "-o", path]) == 0
        capsys.readouterr()

        assert main(["stream", "--benchmark", "gcc", "--seed", "9",
                     "--intervals", "2"] + self.FLAGS) == 0
        live = capsys.readouterr().out

        assert main(["trace", path] + self.FLAGS) == 0
        replay = capsys.readouterr().out

        assert self._net_error_line(live) == self._net_error_line(replay)
        # Per-interval candidate tables agree as well, not just the net.
        live_intervals = re.findall(r"interval \d+: .*", live)
        replay_intervals = re.findall(r"interval \d+: .*", replay)
        assert live_intervals == replay_intervals

    def test_unmatched_chunking_documents_the_flag(self, tmp_path,
                                                   capsys):
        # Without --chunk the recording draws in different batches and
        # is a *different* (equally valid) stream -- the reason the
        # flag exists.  It must still replay cleanly.
        path = str(tmp_path / "gcc-default.npz")
        assert main(["record", "--benchmark", "gcc", "--seed", "9",
                     "--events", "12000", "-o", path]) == 0
        assert main(["trace", path] + self.FLAGS) == 0
        out = capsys.readouterr().out
        assert "net error" in out


class TestServiceCommands:
    def test_push_and_snapshot_against_live_server(self, capsys):
        from repro.service import ProfileServer

        with ProfileServer(num_workers=2) as server:
            port = str(server.port)
            assert main(["push", "--port", port, "--stream", "cli-s1",
                         "--benchmark", "li", "--events", "8000",
                         "--interval", "2000", "--entries", "256",
                         "--batch", "1000", "--keep-open",
                         "--top", "3"]) == 0
            pushed = capsys.readouterr().out
            assert "opened stream cli-s1" in pushed
            assert "4 intervals complete" in pushed
            assert "net error" in pushed

            assert main(["snapshot", "--port", port,
                         "--stream", "cli-s1"]) == 0
            assert "cli-s1" in capsys.readouterr().out

            assert main(["snapshot", "--port", port, "--stats"]) == 0
            stats = capsys.readouterr().out
            assert '"streams_open": 1' in stats

    def test_push_close_prints_final_snapshot(self, capsys):
        from repro.service import ProfileServer

        with ProfileServer(num_workers=1) as server:
            assert main(["push", "--port", str(server.port),
                         "--stream", "cli-s2", "--benchmark", "li",
                         "--events", "5000", "--interval", "2000",
                         "--entries", "256"]) == 0
            out = capsys.readouterr().out
            assert "final" in out
            assert "flushed partial interval" in out

    def test_snapshot_unknown_stream_is_an_error(self, capsys):
        from repro.service import ProfileServer

        with ProfileServer(num_workers=1) as server:
            assert main(["snapshot", "--port", str(server.port),
                         "--stream", "ghost"]) == 2
            assert "unknown-stream" in capsys.readouterr().err

    def test_connection_refused_is_an_error(self, capsys):
        # Nothing listens on port 1; the CLI must fail cleanly with a
        # diagnostic, not a traceback.
        assert main(["snapshot", "--port", "1", "--stream", "x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_snapshot_requires_stream_or_stats(self, capsys):
        assert main(["snapshot", "--port", "7071"]) == 2
        assert "--stream" in capsys.readouterr().err


class TestBench:
    @pytest.mark.slow
    def test_bench_quick_writes_report(self, tmp_path, capsys):
        path = tmp_path / "BENCH_kernels.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        report = json.loads(path.read_text())
        assert report["quick"]
        assert len(report["workloads"]) == 4
        for workload in report["workloads"]:
            rows = workload["rows"]
            assert set(rows) == {"scalar", "scalar-chunked",
                                 "vectorized"}
            for row in rows.values():
                assert row["events_per_second"] > 0
        assert set(report["speedups"]) == set(report["chunked_speedups"])
        # Even at smoke scale the kernels clear the per-event reference
        # by a wide margin.
        assert all(value > 2.0 for value in report["speedups"].values())
