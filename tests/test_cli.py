"""Tests for the repro-profile CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, config_from_args, main


class TestParsing:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        config = config_from_args(args)
        assert config.num_tables == 4
        assert config.conservative_update
        assert config.interval.length == 10_000

    def test_profiler_flags(self):
        args = build_parser().parse_args([
            "stream", "--tables", "1", "--entries", "512",
            "--interval", "5000", "--threshold", "0.02",
            "--resetting", "--no-retaining"])
        config = config_from_args(args)
        assert config.num_tables == 1
        assert not config.conservative_update  # meaningless at 1 table
        assert config.resetting
        assert not config.retaining
        assert config.interval.threshold == 0.02

    def test_c0_flag(self):
        args = build_parser().parse_args(
            ["stream", "--no-conservative-update"])
        assert not config_from_args(args).conservative_update

    def test_unknown_benchmark_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--benchmark", "quake"])


class TestCommands:
    def test_stream_prints_candidates_and_error(self, capsys):
        code = main(["stream", "--benchmark", "li", "--intervals", "2",
                     "--top", "3", "--entries", "512"])
        out = capsys.readouterr().out
        assert code == 0
        assert "net error" in out
        assert "interval 0" in out

    def test_record_then_trace_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "li.npz")
        assert main(["record", "--benchmark", "li", "--events", "12000",
                     "-o", path]) == 0
        assert main(["trace", path, "--interval", "6000",
                     "--entries", "512"]) == 0
        out = capsys.readouterr().out
        assert "12000 events" in out

    def test_record_program(self, tmp_path, capsys):
        path = str(tmp_path / "prog.npz")
        assert main(["record", "--program", "value", "--kind", "value",
                     "-o", path]) == 0
        assert "program:value" in capsys.readouterr().out

    def test_trace_too_short_fails_cleanly(self, tmp_path, capsys):
        path = str(tmp_path / "short.npz")
        main(["record", "--benchmark", "li", "--events", "100",
              "-o", path])
        assert main(["trace", path, "--interval", "10000"]) == 1

    def test_missing_trace_is_an_error(self, tmp_path):
        assert main(["trace", str(tmp_path / "none.npz")]) == 2

    def test_invalid_config_is_an_error(self, capsys):
        # 2048 counters over 3 tables is not a power-of-two split.
        assert main(["stream", "--tables", "3"]) == 2
        assert "error:" in capsys.readouterr().err
