"""Tests for profiler configuration (repro.core.config)."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import (LONG_INTERVAL, SHORT_INTERVAL, IntervalSpec,
                               ProfilerConfig, best_multi_hash,
                               best_single_hash)


class TestIntervalSpec:
    def test_paper_short_point(self):
        assert SHORT_INTERVAL.length == 10_000
        assert SHORT_INTERVAL.threshold_count == 100
        assert SHORT_INTERVAL.max_candidates == 100

    def test_paper_long_point(self):
        assert LONG_INTERVAL.length == 1_000_000
        assert LONG_INTERVAL.threshold_count == 1_000
        assert LONG_INTERVAL.max_candidates == 1_000

    def test_threshold_count_rounds_up(self):
        spec = IntervalSpec(length=1_500, threshold=0.001)
        assert spec.threshold_count == 2

    def test_scaled_preserves_threshold_fraction(self):
        scaled = LONG_INTERVAL.scaled(0.2)
        assert scaled.length == 200_000
        assert scaled.threshold == LONG_INTERVAL.threshold

    @pytest.mark.parametrize("length,threshold", [
        (0, 0.01), (-5, 0.01), (100, 0.0), (100, 1.5), (100, 0.001),
    ])
    def test_rejects_invalid(self, length, threshold):
        with pytest.raises(ValueError):
            IntervalSpec(length=length, threshold=threshold)

    def test_hashable_for_session_grouping(self):
        assert {SHORT_INTERVAL, IntervalSpec(10_000, 0.01)} == {
            SHORT_INTERVAL}


class TestProfilerConfig:
    def test_default_is_paper_hardware(self):
        config = ProfilerConfig()
        assert config.total_entries == 2048
        assert config.counter_bits == 24  # 3-byte counters

    def test_entries_split_evenly(self):
        config = ProfilerConfig(num_tables=4)
        assert config.entries_per_table == 512
        assert config.index_bits == 9

    def test_accumulator_defaults_to_worst_case(self):
        assert ProfilerConfig().accumulator_capacity == 100
        assert ProfilerConfig(
            interval=LONG_INTERVAL).accumulator_capacity == 1000

    def test_accumulator_override(self):
        config = ProfilerConfig(accumulator_entries=17)
        assert config.accumulator_capacity == 17

    def test_rejects_non_power_of_two_split(self):
        with pytest.raises(ValueError):
            ProfilerConfig(total_entries=2048, num_tables=3)

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            ProfilerConfig(num_tables=0)

    def test_label_shorthand(self):
        assert ProfilerConfig().label == "SH-R0-P1"
        assert best_single_hash().label == "SH-R1-P1"
        assert best_multi_hash().label == "MH4-C1-R0-P1"

    def test_with_tables_copies(self):
        base = best_multi_hash()
        other = base.with_tables(8)
        assert other.num_tables == 8
        assert base.num_tables == 4

    def test_with_interval_copies(self):
        other = best_multi_hash().with_interval(LONG_INTERVAL)
        assert other.interval == LONG_INTERVAL


#: Interval specs honouring threshold * length >= 1.
interval_specs = st.builds(
    IntervalSpec,
    length=st.integers(min_value=1_000, max_value=2_000_000),
    threshold=st.sampled_from([0.001, 0.002, 0.005, 0.01, 0.02, 0.1]))


@st.composite
def profiler_configs(draw):
    """Valid configs: per-table entry counts stay powers of two."""
    num_tables = draw(st.sampled_from([1, 2, 4, 8]))
    per_table = 1 << draw(st.integers(min_value=3, max_value=11))
    return ProfilerConfig(
        interval=draw(interval_specs),
        total_entries=per_table * num_tables,
        num_tables=num_tables,
        counter_bits=draw(st.sampled_from([16, 24, 32])),
        retaining=draw(st.booleans()),
        resetting=draw(st.booleans()),
        conservative_update=draw(st.booleans()),
        shielding=draw(st.booleans()),
        accumulator_entries=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=2048))),
        hash_seed=draw(st.integers(min_value=0, max_value=2**32 - 1)))


class TestSerialization:
    def test_interval_round_trip(self):
        assert IntervalSpec.from_dict(
            SHORT_INTERVAL.to_dict()) == SHORT_INTERVAL

    def test_config_round_trip_defaults(self):
        config = ProfilerConfig()
        assert ProfilerConfig.from_dict(config.to_dict()) == config

    def test_dict_is_json_safe(self):
        config = best_multi_hash(interval=LONG_INTERVAL)
        wire = json.loads(json.dumps(config.to_dict()))
        assert ProfilerConfig.from_dict(wire) == config

    def test_missing_keys_use_defaults(self):
        config = ProfilerConfig.from_dict({"num_tables": 2})
        assert config.num_tables == 2
        assert config.interval == SHORT_INTERVAL

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown ProfilerConfig"):
            ProfilerConfig.from_dict({"tablez": 4})
        with pytest.raises(ValueError, match="unknown IntervalSpec"):
            IntervalSpec.from_dict({"length": 100, "thresh": 0.1})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            ProfilerConfig.from_dict({"num_tables": 3})

    @given(profiler_configs())
    def test_round_trip_property(self, config):
        assert ProfilerConfig.from_dict(config.to_dict()) == config

    @given(profiler_configs())
    def test_json_round_trip_property(self, config):
        wire = json.loads(json.dumps(config.to_dict()))
        assert ProfilerConfig.from_dict(wire) == config


class TestBestConfigs:
    def test_best_single_hash_is_p1_r1(self):
        config = best_single_hash()
        assert config.retaining and config.resetting
        assert config.num_tables == 1

    def test_best_multi_hash_is_c1_r0_four_tables(self):
        config = best_multi_hash()
        assert config.conservative_update
        assert not config.resetting
        assert config.retaining
        assert config.num_tables == 4
