"""Cross-cutting property tests over the core invariants.

These complement the per-module suites with randomized invariants that
hold for *any* stream or configuration:

* a profiler's reported candidate count never exceeds the accumulator
  bound;
* the perfect profiler is a fixed point of the error metric;
* multi-hash false negatives are impossible without resetting when
  every tuple is observed exactly (no aliasing);
* generated streams conserve probability mass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.multi_hash import MultiHashProfiler
from repro.core.perfect import PerfectProfiler
from repro.core.tuples import EventKind
from repro.metrics.error import interval_error
from repro.workloads.generators import (HotBand, StreamModel,
                                        TupleStreamGenerator)

SPEC = IntervalSpec(length=300, threshold=0.02)  # threshold 6, bound 50

EVENTS = st.lists(st.tuples(st.integers(0, 60), st.integers(0, 4)),
                  min_size=1, max_size=900)


@given(EVENTS, st.integers(min_value=4, max_value=10).map(lambda n: 2 ** n))
@settings(max_examples=30, deadline=None)
def test_reported_candidates_never_exceed_accumulator_bound(events,
                                                            entries):
    config = ProfilerConfig(interval=SPEC, total_entries=entries,
                            num_tables=min(4, entries),
                            conservative_update=True)
    profiler = MultiHashProfiler(config)
    for profile in profiler.run(iter(events)):
        assert len(profile) <= config.accumulator_capacity


@given(EVENTS)
@settings(max_examples=30, deadline=None)
def test_perfect_profiler_is_error_fixed_point(events):
    perfect = PerfectProfiler(SPEC)
    pending = []
    for event in events:
        perfect.observe(event)
        pending.append(event)
        if len(pending) == SPEC.length:
            truth = perfect.interval_counts()
            profile = perfect.end_interval()
            error = interval_error(truth, profile, SPEC.threshold_count)
            assert error.total == 0.0
            pending.clear()


@given(st.dictionaries(st.tuples(st.integers(0, 30), st.integers(0, 3)),
                       st.integers(min_value=1, max_value=40),
                       min_size=1, max_size=25))
@settings(max_examples=30, deadline=None)
def test_no_false_negatives_without_reset_or_aliasing_pressure(counts):
    """With R0 and a table large enough that counters only ever grow,
    every true candidate must be reported (multi-hash FNs need either
    resetting or an alias-driven jump over the threshold, and with a
    4096-counter table over <=25 tuples, jumps cannot push a minimum
    past the threshold between a tuple's own occurrences ... unless
    two tuples fully collide in all tables, which the assertion below
    tolerates by checking against the sketch estimate)."""
    config = ProfilerConfig(interval=IntervalSpec(2_000, 0.005),
                            total_entries=4096, num_tables=4,
                            conservative_update=True)
    profiler = MultiHashProfiler(config)
    stream = [event for event, count in counts.items()
              for _ in range(count)]
    for event in stream:
        profiler.observe(event)
    profile = profiler.end_interval()
    threshold = config.interval.threshold_count
    for event, count in counts.items():
        if count >= threshold:
            assert event in profile.candidates


@given(st.floats(min_value=0.02, max_value=0.2),
       st.floats(min_value=0.0, max_value=0.5),
       st.integers(min_value=1, max_value=10 ** 6))
@settings(max_examples=20, deadline=None)
def test_generated_streams_conserve_mass(top_share, recurring_mass, seed):
    from hypothesis import assume

    bands = (HotBand(count=5, top_share=top_share,
                     bottom_share=top_share / 4),)
    # Overcommitted masses are (correctly) rejected at construction;
    # the conservation property only concerns valid models.
    assume(sum(band.mass for band in bands) + recurring_mass < 0.99)
    model = StreamModel(
        name="property", kind=EventKind.VALUE,
        bands=bands, recurring_mass=recurring_mass,
        recurring_pool=50, seed=seed)
    generator = TupleStreamGenerator(model)
    pcs, values = generator.chunk(4_000)
    assert len(pcs) == len(values) == 4_000
    # Every event belongs to exactly one population (PC bases disjoint).
    from repro.workloads.generators import (FRESH_PC_BASE, HOT_PC_BASE,
                                            RECURRING_PC_BASE)

    hot = int(((pcs >= HOT_PC_BASE) & (pcs < RECURRING_PC_BASE)).sum())
    recurring = int(((pcs >= RECURRING_PC_BASE)
                     & (pcs < FRESH_PC_BASE)).sum())
    fresh = int((pcs >= FRESH_PC_BASE).sum())
    assert hot + recurring + fresh == 4_000
    assert hot / 4_000 == pytest.approx(model.hot_mass, abs=0.05)
    assert fresh / 4_000 == pytest.approx(model.fresh_mass, abs=0.05)
