"""Tests for the Section 6.2 analysis (repro.core.theory)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.theory import (FIGURE9_ENTRY_CURVES, FIGURE9_TABLE_COUNTS,
                               continuous_optimal_table_count,
                               false_positive_curve,
                               false_positive_probability, figure9_curves,
                               optimal_table_count)


class TestFalsePositiveProbability:
    def test_single_table_formula(self):
        # p = 100 / (t Z): 2000 entries at 1% -> 5%.
        assert false_positive_probability(1, 2000, 1.0) == pytest.approx(
            0.05)

    def test_paper_example_1000_entries(self):
        # Figure 9: 1000 entries degrade beyond 4 tables.
        curve = false_positive_curve(1000, 1.0, range(1, 9))
        assert min(range(8), key=curve.__getitem__) == 3  # 4 tables

    def test_formula_shape(self):
        # (100 n / t Z)^n, hand-checked for n=2, Z=2000, t=1.
        assert false_positive_probability(2, 2000, 1.0) == pytest.approx(
            (200 / 2000) ** 2)

    def test_clamped_to_one(self):
        assert false_positive_probability(8, 500, 1.0) == 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(num_tables=0, total_entries=100, threshold_percent=1.0),
        dict(num_tables=8, total_entries=4, threshold_percent=1.0),
        dict(num_tables=1, total_entries=100, threshold_percent=0.0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            false_positive_probability(**kwargs)

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=64, max_value=65536))
    def test_probability_in_unit_interval(self, tables, entries):
        if entries < tables:
            return
        p = false_positive_probability(tables, entries, 1.0)
        assert 0.0 <= p <= 1.0


class TestCurves:
    def test_figure9_covers_all_budgets(self):
        curves = figure9_curves()
        assert set(curves) == set(FIGURE9_ENTRY_CURVES)
        assert all(len(c) == len(FIGURE9_TABLE_COUNTS)
                   for c in curves.values())

    def test_curves_fall_then_rise(self):
        """Each Figure 9 curve is U-shaped (monotone down to its
        optimum, then monotone up) once clamping is ignored."""
        for entries in (1000, 2000, 4000):
            curve = false_positive_curve(entries, 1.0, range(1, 17))
            best = min(range(16), key=curve.__getitem__)
            assert all(curve[i] >= curve[i + 1] - 1e-12
                       for i in range(best))
            assert all(curve[i] <= curve[i + 1] + 1e-12
                       for i in range(best, 15))

    def test_optimum_moves_right_with_budget(self):
        optima = [optimal_table_count(entries)
                  for entries in FIGURE9_ENTRY_CURVES]
        assert optima == sorted(optima)

    def test_integer_optimum_near_continuous(self):
        for entries in FIGURE9_ENTRY_CURVES:
            integer = optimal_table_count(entries, max_tables=64)
            continuous = continuous_optimal_table_count(entries)
            assert abs(integer - continuous) <= 1.0
