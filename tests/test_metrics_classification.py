"""Tests for the Figure 3 classification (repro.metrics.classification)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.base import IntervalProfile
from repro.metrics.classification import (Category, by_category,
                                          classify_candidate,
                                          classify_interval,
                                          classify_interval_with_truth)

T = 10  # threshold used throughout


class TestClassifyCandidate:
    def test_false_positive(self):
        assert classify_candidate(3, 12, T) is Category.FALSE_POSITIVE

    def test_false_negative(self):
        assert classify_candidate(15, 0, T) is Category.FALSE_NEGATIVE

    def test_neutral_positive(self):
        assert classify_candidate(12, 20, T) is Category.NEUTRAL_POSITIVE

    def test_neutral_negative(self):
        assert classify_candidate(20, 12, T) is Category.NEUTRAL_NEGATIVE

    def test_exact_agreement(self):
        assert classify_candidate(15, 15, T) is Category.EXACT

    def test_dont_care_rejected(self):
        with pytest.raises(ValueError):
            classify_candidate(3, 4, T)

    def test_boundary_at_threshold_is_in(self):
        # f == T counts as "in" ("greater than or equal", Section 5.1).
        assert classify_candidate(T, 0, T) is Category.FALSE_NEGATIVE
        assert classify_candidate(0, T, T) is Category.FALSE_POSITIVE

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_total_function_above_threshold(self, fp, fh):
        if fp < T and fh < T:
            return  # don't-care quadrant
        category = classify_candidate(fp, fh, T)
        assert isinstance(category, Category)


class TestClassifyInterval:
    def _profile(self, candidates, index=0):
        return IntervalProfile(index=index, candidates=candidates,
                               events_observed=100)

    def test_uses_true_subthreshold_counts_for_false_positives(self):
        truth = {(1, 1): 15, (2, 2): 7}
        hardware = self._profile({(1, 1): 15, (2, 2): 12})
        classified = classify_interval_with_truth(truth, hardware, T)
        false_positive = next(c for c in classified
                              if c.event == (2, 2))
        assert false_positive.category is Category.FALSE_POSITIVE
        assert false_positive.perfect_frequency == 7
        assert false_positive.absolute_error == 5

    def test_universe_is_union_of_candidates(self):
        truth = {(1, 1): 15, (3, 3): 20, (4, 4): 2}
        hardware = self._profile({(1, 1): 15, (2, 2): 11})
        classified = classify_interval_with_truth(truth, hardware, T)
        events = {c.event for c in classified}
        # (4,4) is below threshold in both -> don't care, excluded.
        assert events == {(1, 1), (2, 2), (3, 3)}

    def test_missing_hardware_tuple_scores_zero(self):
        truth = {(1, 1): 15}
        hardware = self._profile({})
        (candidate,) = classify_interval_with_truth(truth, hardware, T)
        assert candidate.hardware_frequency == 0
        assert candidate.category is Category.FALSE_NEGATIVE

    def test_classify_interval_from_reports_alone(self):
        perfect = self._profile({(1, 1): 15})
        hardware = self._profile({(1, 1): 14, (9, 9): 11})
        classified = classify_interval(perfect, hardware, T)
        categories = {c.event: c.category for c in classified}
        assert categories[(1, 1)] is Category.NEUTRAL_NEGATIVE
        assert categories[(9, 9)] is Category.FALSE_POSITIVE


class TestByCategory:
    def test_groups_cover_all_inputs(self):
        truth = {(1, 1): 15, (2, 2): 20}
        hardware = IntervalProfile(index=0,
                                   candidates={(1, 1): 15, (2, 2): 25},
                                   events_observed=100)
        groups = by_category(
            classify_interval_with_truth(truth, hardware, T))
        assert len(groups[Category.EXACT]) == 1
        assert len(groups[Category.NEUTRAL_POSITIVE]) == 1
        assert sum(len(v) for v in groups.values()) == 2
