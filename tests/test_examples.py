"""Smoke tests: the example scripts run and tell their stories.

Each example is imported by path and its ``main()`` executed; quick
sanity checks on the printed output keep the examples from silently
rotting.  The two long-running showcases (the design-space tour and the
online-adaptive run) are exercised by their own subsystem tests and are
only import-checked here.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": "net error",
    "value_profile_program.py": "frequent <load PC, value> tuples",
    "edge_profile_dispatch.py": "hot-edge recall",
    "cache_miss_candidates.py": "thrashing chase",
    "prefetch_delinquent_loads.py": "reduction",
    "trace_formation_demo.py": "fetch coverage",
    "value_specialization_plan.py": "cycles saved",
}

SLOW_EXAMPLES = ["design_space_tour.py", "online_adaptive_intervals.py"]


def load_example(name):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name,marker", sorted(FAST_EXAMPLES.items()))
def test_fast_example_runs(name, marker, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert marker in output


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_importable(name):
    module = load_example(name)
    assert callable(module.main)
