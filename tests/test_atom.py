"""Tests for instrumentation (repro.profiling.atom, .events)."""

import pytest

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.perfect import PerfectProfiler
from repro.core.tuples import EventKind
from repro.profiling.atom import Instrumenter, trace_events
from repro.profiling.events import (BranchEvent, LoadEvent, StoreEvent,
                                    tuple_for)
from repro.simulator.assembler import assemble
from repro.simulator.machine import Machine
from repro.simulator.synth import value_locality_program


class TestEventRecords:
    def test_load_event_tuples(self):
        event = LoadEvent(pc=0x1000, address=0x2000, value=42)
        assert event.value_tuple() == (0x1000, 42)
        assert event.address_tuple() == (0x1000, 0x2000)

    def test_branch_event_edge(self):
        event = BranchEvent(pc=0x1000, target=0x1040, taken=True)
        assert event.edge_tuple() == (0x1000, 0x1040)

    def test_tuple_for_dispatch(self):
        load = LoadEvent(pc=1, address=2, value=3)
        branch = BranchEvent(pc=1, target=2, taken=True)
        store = StoreEvent(pc=1, address=2, value=3)
        assert tuple_for(EventKind.VALUE, load) == (1, 3)
        assert tuple_for(EventKind.VALUE, store) == (1, 3)
        assert tuple_for(EventKind.EDGE, branch) == (1, 2)
        assert tuple_for(EventKind.CACHE_MISS, load) == (1, 2)

    def test_tuple_for_rejects_mismatches(self):
        branch = BranchEvent(pc=1, target=2, taken=True)
        with pytest.raises(TypeError):
            tuple_for(EventKind.VALUE, branch)
        load = LoadEvent(pc=1, address=2, value=3)
        with pytest.raises(TypeError):
            tuple_for(EventKind.EDGE, load)


PROGRAM = """
.data arr 7, 7, 9
main:
    ldi r1, arr
    ld r2, r1, 0
    ld r3, r1, 1
    ld r4, r1, 2
    beqz r0, skip
    nop
skip:
    ldi r0, 0
    halt
"""


class TestInstrumenter:
    def test_collect_gathers_all_event_kinds(self):
        machine = Machine(assemble(PROGRAM))
        log = Instrumenter(machine).collect()
        assert [event.value for event in log.loads] == [7, 7, 9]
        assert len(log.branches) == 1

    def test_collect_detaches_hooks(self):
        machine = Machine(assemble(PROGRAM))
        Instrumenter(machine).collect()
        assert machine.load_hooks == []
        assert machine.branch_hooks == []
        assert machine.store_hooks == []

    def test_event_log_tuples(self):
        machine = Machine(assemble(PROGRAM))
        log = Instrumenter(machine).collect()
        tuples = log.tuples(EventKind.VALUE)
        assert len(tuples) == 3
        assert tuples[0][1] == 7

    def test_stream_to_profiler_live(self):
        machine = Machine(assemble(PROGRAM))
        profiler = PerfectProfiler(IntervalSpec(100, 0.01))
        Instrumenter(machine).stream_to(profiler, EventKind.VALUE)
        counts = profiler.interval_counts()
        assert sum(counts.values()) == 3

    def test_stream_to_rejects_unknown_kind(self):
        machine = Machine(assemble(PROGRAM))
        profiler = PerfectProfiler(IntervalSpec(100, 0.01))
        with pytest.raises(ValueError):
            Instrumenter(machine).stream_to(profiler, "bogus")


class TestTraceEvents:
    def test_value_trace_matches_execution(self):
        program = value_locality_program(array_size=16, iterations=2)
        trace = trace_events(program, EventKind.VALUE)
        assert len(trace) == 32
        assert trace.kind is EventKind.VALUE
        # A single load PC produces all events.
        assert len({pc for pc, _ in trace.events()}) == 1

    def test_edge_trace_nonempty(self):
        program = value_locality_program(array_size=8, iterations=1)
        trace = trace_events(program, EventKind.EDGE)
        assert len(trace) > 0

    def test_trace_replay_through_profiler(self):
        from repro.profiling.session import ProfilingSession

        program = value_locality_program(array_size=50, iterations=4,
                                         hot_values=(3,), hot_mass=1.0)
        trace = trace_events(program, EventKind.VALUE)
        config = ProfilerConfig(interval=IntervalSpec(100, 0.05),
                                total_entries=64, num_tables=2,
                                conservative_update=True)
        result = ProfilingSession(config).run(trace)
        # One load PC always reading 3: a single, perfectly counted
        # candidate -> zero error in every interval.
        assert result.summary.total_error == 0.0
