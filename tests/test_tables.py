"""Tests for counter and accumulator tables (repro.core.tables)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tables import AccumulatorTable, CounterTable


class TestCounterTable:
    def test_starts_zeroed(self):
        table = CounterTable(16)
        assert all(value == 0 for value in table)

    def test_increment_returns_new_value(self):
        table = CounterTable(16)
        assert table.increment(3) == 1
        assert table.increment(3) == 2
        assert table.read(3) == 2

    def test_saturates_instead_of_wrapping(self):
        table = CounterTable(4, counter_bits=3)
        for _ in range(20):
            table.increment(0)
        assert table.read(0) == 7

    def test_increment_amount_saturates(self):
        table = CounterTable(4, counter_bits=3)
        assert table.increment(1, amount=100) == 7

    def test_reset_single_counter(self):
        table = CounterTable(8)
        table.increment(2)
        table.increment(5)
        table.reset(2)
        assert table.read(2) == 0
        assert table.read(5) == 1

    def test_flush_zeroes_everything(self):
        table = CounterTable(8)
        for index in range(8):
            table.increment(index)
        table.flush()
        assert table.occupancy() == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            CounterTable(0)
        with pytest.raises(ValueError):
            CounterTable(8, counter_bits=0)

    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                    max_size=300))
    def test_counts_match_reference(self, indices):
        table = CounterTable(16, counter_bits=24)
        reference = [0] * 16
        for index in indices:
            table.increment(index)
            reference[index] += 1
        assert list(table) == reference


class TestAccumulatorInsertion:
    def test_insert_and_lookup(self):
        table = AccumulatorTable(4)
        assert table.insert((1, 1), initial_count=10)
        entry = table.lookup((1, 1))
        assert entry.count == 10
        assert not entry.replaceable

    def test_duplicate_insert_rejected(self):
        table = AccumulatorTable(4)
        table.insert((1, 1), initial_count=1)
        with pytest.raises(ValueError):
            table.insert((1, 1), initial_count=1)

    def test_full_of_pinned_entries_rejects(self):
        table = AccumulatorTable(2)
        assert table.insert((1, 1), 5)
        assert table.insert((2, 2), 5)
        assert not table.insert((3, 3), 5)
        assert table.rejected_inserts == 1
        assert (3, 3) not in table

    def test_record_hit_increments(self):
        table = AccumulatorTable(2)
        table.insert((1, 1), 5)
        assert table.record_hit((1, 1), threshold_count=10) == 6


class TestAccumulatorEviction:
    def test_replaceable_entry_is_evicted_for_new_insert(self):
        table = AccumulatorTable(1)
        table.insert((1, 1), 10)
        table.end_interval(threshold_count=5, retaining=True)
        # (1,1) survived as replaceable with count 0.
        assert table.insert((2, 2), 5)
        assert (1, 1) not in table
        assert table.evictions == 1

    def test_lowest_count_replaceable_evicted_first(self):
        table = AccumulatorTable(2)
        table.insert((1, 1), 10)
        table.insert((2, 2), 10)
        table.end_interval(threshold_count=5, retaining=True)
        table.record_hit((1, 1), threshold_count=100)  # count 1 > 0
        table.insert((3, 3), 5)
        assert (2, 2) not in table  # count 0 lost the tie
        assert (1, 1) in table

    def test_rethreshold_crossing_unpins_retained_entry(self):
        table = AccumulatorTable(1)
        table.insert((1, 1), 10)
        table.end_interval(threshold_count=5, retaining=True)
        for _ in range(5):
            table.record_hit((1, 1), threshold_count=5)
        # Re-crossed the threshold: no longer replaceable.
        assert not table.insert((2, 2), 5)


class TestAccumulatorEndInterval:
    def test_reports_only_above_threshold(self):
        table = AccumulatorTable(4)
        table.insert((1, 1), 12)
        table.insert((2, 2), 3)
        report = table.end_interval(threshold_count=10, retaining=False)
        assert report == {(1, 1): 12}
        assert len(table) == 0

    def test_retaining_keeps_candidates_with_zeroed_counts(self):
        table = AccumulatorTable(4)
        table.insert((1, 1), 12)
        table.insert((2, 2), 3)
        table.end_interval(threshold_count=10, retaining=True)
        assert (1, 1) in table
        assert (2, 2) not in table
        entry = table.lookup((1, 1))
        assert entry.count == 0
        assert entry.replaceable

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            AccumulatorTable(0)


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),
              st.integers(min_value=1, max_value=30)),
    max_size=200))
@settings(max_examples=50, deadline=None)
def test_accumulator_never_exceeds_capacity(operations):
    """Property: whatever the insert/hit sequence, occupancy stays
    within capacity and resident counts are non-negative."""
    table = AccumulatorTable(5)
    for key, count in operations:
        event = (key, key)
        if event in table:
            table.record_hit(event, threshold_count=15)
        else:
            table.insert(event, initial_count=count)
        assert len(table) <= 5
        if len(operations) % 7 == 0:
            table.end_interval(threshold_count=15, retaining=True)
            assert len(table) <= 5
