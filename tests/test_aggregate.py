"""Tests for profile aggregation (repro.metrics.aggregate)."""

import pytest

from repro.core.base import IntervalProfile
from repro.metrics.aggregate import merge_profiles, stability, top_tuples


def profile(index, candidates):
    return IntervalProfile(index=index, candidates=candidates,
                           events_observed=1_000)


class TestMerge:
    def test_plain_sum(self):
        merged = merge_profiles([
            profile(0, {(1, 1): 10, (2, 2): 5}),
            profile(1, {(1, 1): 20}),
        ])
        assert merged == {(1, 1): 30.0, (2, 2): 5.0}

    def test_decay_discounts_older_intervals(self):
        merged = merge_profiles([
            profile(0, {(1, 1): 100}),
            profile(1, {(2, 2): 100}),
        ], decay=0.5)
        assert merged[(2, 2)] == pytest.approx(100.0)
        assert merged[(1, 1)] == pytest.approx(50.0)

    def test_decay_by_interval_index_not_position(self):
        merged = merge_profiles([
            profile(5, {(2, 2): 100}),
            profile(3, {(1, 1): 100}),  # two intervals older
        ], decay=0.5)
        assert merged[(1, 1)] == pytest.approx(25.0)

    def test_empty(self):
        assert merge_profiles([]) == {}

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            merge_profiles([], decay=0.0)
        with pytest.raises(ValueError):
            merge_profiles([], decay=1.5)


class TestTopTuples:
    def test_descending_order_and_limit(self):
        ranked = top_tuples({(1, 1): 5.0, (2, 2): 9.0, (3, 3): 1.0},
                            count=2)
        assert ranked == [((2, 2), 9.0), ((1, 1), 5.0)]

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            top_tuples({}, count=0)


class TestStability:
    PROFILES = [
        profile(0, {(1, 1): 10, (2, 2): 10}),
        profile(1, {(1, 1): 12}),
        profile(2, {(1, 1): 11, (2, 2): 9}),
        profile(3, {(1, 1): 13}),
    ]

    def test_persistence_fractions(self):
        report = stability(self.PROFILES)
        assert report.persistence_of((1, 1)) == 1.0
        assert report.persistence_of((2, 2)) == 0.5
        assert report.persistence_of((9, 9)) == 0.0

    def test_stable_set_threshold(self):
        assert stability(self.PROFILES,
                         min_persistence=0.75).stable == ((1, 1),)
        both = stability(self.PROFILES, min_persistence=0.5).stable
        assert set(both) == {(1, 1), (2, 2)}
        assert both[0] == (1, 1)  # most persistent first

    def test_empty_window(self):
        report = stability([])
        assert report.intervals == 0
        assert report.stable == ()

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            stability(self.PROFILES, min_persistence=0.0)


class TestEndToEnd:
    def test_aggregated_plan_is_more_stable_than_single_interval(self):
        """Aggregating a window before planning keeps only tuples that
        persist across phases."""
        from repro.core.config import IntervalSpec, best_multi_hash
        from repro.profiling.session import ProfilingSession
        from repro.workloads.benchmarks import benchmark_generator

        spec = IntervalSpec(10_000, 0.01)
        session = ProfilingSession(best_multi_hash(spec),
                                   keep_profiles=True)
        result = session.run(benchmark_generator("m88ksim"),
                             max_intervals=12)
        profiles = result.single().profiles
        report = stability(profiles, min_persistence=0.9)
        # m88ksim is bursty: some per-interval candidates do not
        # persist, and the stable core is non-empty but smaller than
        # any single interval's candidate list.
        assert 0 < len(report.stable) <= max(
            len(profile) for profile in profiles)
        union = {event for profile in profiles
                 for event in profile.candidates}
        assert len(report.stable) < len(union)
