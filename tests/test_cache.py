"""Tests for the set-associative cache model (repro.simulator.cache)."""

import pytest

from repro.simulator.assembler import assemble
from repro.simulator.cache import (CacheConfig, CachedMachineMemory,
                                   SetAssociativeCache)
from repro.simulator.machine import Machine


def cache(**overrides) -> SetAssociativeCache:
    base = dict(sets=4, ways=2, line_words=4)
    base.update(overrides)
    return SetAssociativeCache(CacheConfig(**base))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(sets=3), dict(sets=0), dict(ways=0), dict(line_words=3),
    ])
    def test_rejects_bad_geometry(self, kwargs):
        with pytest.raises(ValueError):
            CacheConfig(**kwargs)

    def test_capacity(self):
        config = CacheConfig(sets=4, ways=2, line_words=4)
        assert config.total_lines == 8
        assert config.capacity_words == 32


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        model = cache()
        assert model.access(0) is True
        assert model.access(0) is False
        assert model.access(3) is False   # same line
        assert model.access(4) is True    # next line

    def test_lru_within_set(self):
        model = cache(sets=1, ways=2, line_words=1)
        model.access(0)  # line 0
        model.access(1)  # line 1
        model.access(0)  # refresh 0
        model.access(2)  # evicts LRU (line 1)
        assert model.access(0) is False
        assert model.access(1) is True

    def test_sets_are_independent(self):
        model = cache(sets=2, ways=1, line_words=1)
        model.access(0)  # set 0
        model.access(1)  # set 1
        assert model.access(0) is False
        assert model.access(1) is False

    def test_stats(self):
        model = cache()
        model.access(0)
        model.access(0)
        assert model.stats.accesses == 2
        assert model.stats.misses == 1
        assert model.stats.hits == 1
        assert model.stats.miss_rate == 0.5

    def test_flush_preserves_stats(self):
        model = cache()
        model.access(0)
        model.flush()
        assert model.access(0) is True
        assert model.stats.misses == 2

    def test_contains_without_side_effects(self):
        model = cache()
        model.access(0)
        accesses = model.stats.accesses
        assert model.contains(0)
        assert not model.contains(100)
        assert model.stats.accesses == accesses


class TestPrefetch:
    def test_prefetch_avoids_later_miss(self):
        model = cache()
        assert model.prefetch(0) is True
        assert model.access(0) is False
        assert model.stats.prefetch_hits == 1
        assert model.stats.prefetch_accuracy == 1.0

    def test_prefetch_of_resident_line_is_free(self):
        model = cache()
        model.access(0)
        assert model.prefetch(0) is False
        assert model.stats.prefetches_issued == 0

    def test_useless_prefetch_counted(self):
        model = cache(sets=1, ways=1, line_words=1)
        model.prefetch(5)
        model.access(6)  # evicts the prefetched line unused
        assert model.stats.prefetch_accuracy == 0.0

    def test_line_address(self):
        model = cache(line_words=4)
        assert model.line_address(7) == 4
        assert model.line_address(4) == 4


class TestCachedMachineMemory:
    PROGRAM = """
    .data arr 1, 2, 3, 4, 5, 6, 7, 8
    main:
        ldi r1, arr
        ldi r2, 0
        ldi r3, 8
    loop:
        cmplt r5, r2, r3
        beqz r5, done
        add r6, r1, r2
        ld r7, r6, 0
        addi r2, r2, 1
        br loop
    done: halt
    """

    def test_classifies_loads(self):
        machine = Machine(assemble(self.PROGRAM))
        attached = CachedMachineMemory(
            machine, SetAssociativeCache(CacheConfig(sets=4, ways=1,
                                                     line_words=4)))
        machine.run()
        # 8 sequential words over 4-word lines: 2 cold misses.
        assert attached.cache.stats.accesses == 8
        assert attached.cache.stats.misses == 2

    def test_on_miss_callback_and_detach(self):
        machine = Machine(assemble(self.PROGRAM))
        seen = []
        attached = CachedMachineMemory(
            machine, on_miss=lambda pc, address, value: seen.append(address))
        attached.detach()
        machine.run()
        assert seen == []  # detached before execution
