"""Golden regression fixtures for the paper's headline workloads.

The parity harness (``tests/test_kernel_parity.py``) proves scalar and
vectorized agree with *each other*; these tests pin both against
checked-in fixtures so an identical-in-both-backends behaviour change
still trips a failure.  Each fixture records per-interval candidate
profiles, cumulative profiler stats, and the per-interval error series
for a scaled-down fig07 (best single-hash) and fig12 (best multi-hash)
run over a deterministic gcc-calibrated stream.

Regenerate intentionally with::

    pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.config import (IntervalSpec, best_multi_hash,
                               best_single_hash)
from repro.profiling.session import ProfilingSession
from repro.workloads.benchmarks import benchmark_generator

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Scaled-down operating point: 2K-event intervals at 1 % keep the
#: fixture files small while exercising promotion, eviction and reset.
SPEC = IntervalSpec(length=2_000, threshold=0.01)
INTERVALS = 5
SEED = 13

WORKLOADS = {
    "fig07_single_hash": lambda: best_single_hash(SPEC, total_entries=256),
    "fig12_multi_hash": lambda: best_multi_hash(SPEC, total_entries=256),
}


def run_workload(config):
    """Every backend over the fixture stream; returns their snapshots."""
    session = ProfilingSession([config.with_backend("scalar"),
                                config.with_backend("vectorized"),
                                config.with_backend("batched")],
                               keep_profiles=True)
    outcome = session.run(benchmark_generator("gcc", seed=SEED),
                          max_intervals=INTERVALS)
    return {
        name: {
            "intervals": [
                {
                    "index": profile.index,
                    "candidates": sorted(
                        [int(pc), int(value), int(count)]
                        for (pc, value), count
                        in profile.candidates.items()),
                }
                for profile in result.profiles
            ],
            "stats": result.profiler.stats.as_dict(),
            "error_series": [round(point, 12)
                             for point in result.summary.series()],
        }
        for name, result in outcome.results.items()
    }


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_golden_profiles(workload, update_golden):
    observed = run_workload(WORKLOADS[workload]())
    backends = list(observed)
    assert len(backends) == 3
    # Cross-backend agreement first: a fixture must never capture a
    # backend divergence as "expected".
    for other in backends[1:]:
        assert observed[other] == observed[backends[0]]
    snapshot = observed[backends[0]]

    path = GOLDEN_DIR / f"{workload}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2) + "\n",
                        encoding="utf-8")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), (
        f"missing fixture {path}; generate it with "
        f"pytest tests/test_golden.py --update-golden")
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert snapshot == expected
