"""Property tests: the batched fast paths equal the reference paths.

The chunked ``observe_chunk`` implementations exist purely for speed;
these properties pin them to the per-event ``observe`` semantics on
randomized streams covering aliasing, promotion, retention and interval
boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IntervalSpec, ProfilerConfig
from repro.core.multi_hash import MultiHashProfiler
from repro.core.single_hash import SingleHashProfiler

SPEC = IntervalSpec(length=200, threshold=0.05)  # threshold_count 10

# Streams drawn from a small tuple universe so aliasing and promotion
# are frequent at a 16..64-entry table.
EVENTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=600)

CONFIG_FLAGS = st.tuples(st.booleans(), st.booleans(), st.booleans())


def _run_reference(profiler, events):
    profiles = []
    for position, event in enumerate(events, start=1):
        profiler.observe(event)
        if position % SPEC.length == 0:
            profiles.append(profiler.end_interval())
    return profiles


def _run_chunked(profiler, events, functions, chunk_size):
    profiles = []
    position = 0
    while position < len(events):
        take = min(chunk_size, SPEC.length - (position % SPEC.length),
                   len(events) - position)
        chunk = events[position:position + take]
        index_lists = [[function(event) for event in chunk]
                       for function in functions]
        profiler.observe_chunk(chunk, index_lists)
        position += take
        if position % SPEC.length == 0:
            profiles.append(profiler.end_interval())
    return profiles


@given(EVENTS, CONFIG_FLAGS, st.integers(min_value=1, max_value=77))
@settings(max_examples=40, deadline=None)
def test_single_hash_chunked_equals_reference(events, flags, chunk_size):
    retaining, resetting, shielding = flags
    config = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=1,
                            retaining=retaining, resetting=resetting,
                            shielding=shielding)
    reference = SingleHashProfiler(config)
    chunked = SingleHashProfiler(config)
    reference_profiles = _run_reference(reference, events)
    chunked_profiles = _run_chunked(chunked, events,
                                    [chunked.hash_function], chunk_size)
    assert [p.candidates for p in reference_profiles] == \
           [p.candidates for p in chunked_profiles]
    assert reference.stats.as_dict() == chunked.stats.as_dict()


@given(EVENTS, CONFIG_FLAGS, st.booleans(),
       st.integers(min_value=1, max_value=77))
@settings(max_examples=40, deadline=None)
def test_multi_hash_chunked_equals_reference(events, flags, conservative,
                                             chunk_size):
    retaining, resetting, shielding = flags
    config = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=4,
                            retaining=retaining, resetting=resetting,
                            shielding=shielding,
                            conservative_update=conservative)
    reference = MultiHashProfiler(config)
    chunked = MultiHashProfiler(config)
    reference_profiles = _run_reference(reference, events)
    chunked_profiles = _run_chunked(chunked, events,
                                    chunked.hash_functions, chunk_size)
    assert [p.candidates for p in reference_profiles] == \
           [p.candidates for p in chunked_profiles]
    assert reference.stats.as_dict() == chunked.stats.as_dict()


@given(EVENTS)
@settings(max_examples=20, deadline=None)
def test_chunked_without_indices_falls_back(events):
    config = ProfilerConfig(interval=SPEC, total_entries=16, num_tables=2)
    reference = MultiHashProfiler(config)
    fallback = MultiHashProfiler(config)
    for event in events:
        reference.observe(event)
    fallback.observe_chunk(list(events), None)
    assert reference.end_interval().candidates == \
           fallback.end_interval().candidates


def test_multi_hash_estimate_never_undercounts():
    """Count-min property: the sketch estimate upper-bounds the true
    per-interval count for every observed tuple."""
    import random

    rng = random.Random(3)
    config = ProfilerConfig(interval=IntervalSpec(5_000, 0.01),
                            total_entries=64, num_tables=4,
                            conservative_update=True, shielding=False,
                            accumulator_entries=1)
    profiler = MultiHashProfiler(config)
    counts = {}
    for _ in range(3_000):
        event = (rng.randrange(50), 0)
        profiler.observe(event)
        counts[event] = counts.get(event, 0) + 1
    for event, true_count in counts.items():
        assert profiler.estimate(event) >= true_count
