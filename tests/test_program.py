"""Tests for the program container (repro.simulator.program)."""

import pytest

from repro.simulator.isa import INSTRUCTION_BYTES, Instruction, Opcode
from repro.simulator.program import Program


def program(count=3, base=0x1000) -> Program:
    return Program(instructions=[Instruction(Opcode.NOP)] * count,
                   code_base=base)


class TestLayout:
    def test_entry_point_is_code_base(self):
        assert program(base=0x2000).entry_point == 0x2000

    def test_pc_of_spacing(self):
        p = program()
        assert p.pc_of(1) - p.pc_of(0) == INSTRUCTION_BYTES

    def test_end_pc(self):
        p = program(count=3)
        assert p.end_pc == p.code_base + 3 * INSTRUCTION_BYTES

    def test_pc_of_range_checked(self):
        with pytest.raises(IndexError):
            program(count=3).pc_of(3)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program(instructions=[])


class TestFetch:
    def test_fetch_decodes(self):
        p = Program(instructions=[Instruction(Opcode.HALT)])
        assert p.fetch(p.entry_point).opcode is Opcode.HALT

    def test_fetch_outside_segment_faults(self):
        p = program(count=2)
        with pytest.raises(ValueError, match="outside code segment"):
            p.fetch(p.end_pc)
        with pytest.raises(ValueError, match="outside code segment"):
            p.fetch(p.code_base - INSTRUCTION_BYTES)

    def test_fetch_misaligned_faults(self):
        p = program(count=2)
        with pytest.raises(ValueError, match="misaligned"):
            p.fetch(p.code_base + 1)


class TestSymbols:
    def test_address_of_known(self):
        p = Program(instructions=[Instruction(Opcode.NOP)],
                    symbols={"main": 0x1000})
        assert p.address_of("main") == 0x1000

    def test_address_of_unknown_lists_known(self):
        p = Program(instructions=[Instruction(Opcode.NOP)],
                    symbols={"main": 0x1000})
        with pytest.raises(KeyError, match="main"):
            p.address_of("zzz")

    def test_listing_contains_every_instruction(self):
        p = Program(instructions=[Instruction(Opcode.NOP),
                                  Instruction(Opcode.HALT)],
                    symbols={"main": 0x1000})
        listing = p.listing()
        assert listing.count("\n") >= 2
        assert "nop" in listing and "halt" in listing
        assert "main:" in listing
