"""Tests for the paper's hash function family (repro.core.hashing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (HashFunctionFamily, TupleHashFunction, flip,
                                xor_fold)

U64 = st.integers(min_value=0, max_value=2 ** 64 - 1)


class TestXorFold:
    def test_value_below_width_is_identity(self):
        assert xor_fold(0x1F, 9) == 0x1F

    def test_folds_chunks(self):
        # Two 8-bit chunks: 0xAB ^ 0xCD.
        assert xor_fold(0xABCD, 8) == 0xAB ^ 0xCD

    def test_zero(self):
        assert xor_fold(0, 11) == 0

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            xor_fold(5, 0)

    @given(U64, st.integers(min_value=1, max_value=30))
    def test_result_within_width(self, value, bits):
        assert 0 <= xor_fold(value, bits) < (1 << bits)

    @given(U64, U64, st.integers(min_value=1, max_value=30))
    def test_linear_over_xor(self, a, b, bits):
        # xor-fold is a GF(2)-linear map, so it distributes over XOR.
        assert (xor_fold(a, bits) ^ xor_fold(b, bits)
                == xor_fold(a ^ b, bits))


class TestFlip:
    def test_reverses_bytes(self):
        assert flip(0x0102030405060708) == 0x0807060504030201

    @given(U64)
    def test_involution(self, value):
        assert flip(flip(value)) == value

    def test_moves_low_byte_high(self):
        assert flip(0xFF) == 0xFF << 56


class TestTupleHashFunction:
    def test_index_in_range(self):
        function = TupleHashFunction(index_bits=9, seed=1)
        for event in [(0, 0), (0x1000, 42), (2 ** 64 - 1, 2 ** 64 - 1)]:
            assert 0 <= function(event) < 512

    def test_deterministic_per_seed(self):
        a = TupleHashFunction(9, seed=7)
        b = TupleHashFunction(9, seed=7)
        events = [(i * 8, i * i) for i in range(100)]
        assert [a(e) for e in events] == [b(e) for e in events]

    def test_different_seeds_differ(self):
        a = TupleHashFunction(9, seed=7)
        b = TupleHashFunction(9, seed=8)
        events = [(i * 8, i * i) for i in range(200)]
        assert [a(e) for e in events] != [b(e) for e in events]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            TupleHashFunction(0, seed=1)
        with pytest.raises(ValueError):
            TupleHashFunction(31, seed=1)

    def test_distribution_is_balanced(self):
        # Section 5.3: "a very even distribution using the above hash
        # function".  Hash 8K distinct tuples into 256 buckets and check
        # occupancy against a loose chi-square-style bound.
        function = TupleHashFunction(8, seed=3)
        counts = [0] * 256
        for i in range(8192):
            counts[function((0x1000 + 8 * i, i * 2654435761))] += 1
        mean = 8192 / 256
        # Poisson-ish spread: no bucket wildly over- or under-loaded.
        assert max(counts) < mean * 2.2
        assert min(counts) > mean * 0.2

    @given(st.lists(st.tuples(U64, U64), min_size=1, max_size=50,
                    unique=True))
    @settings(max_examples=25, deadline=None)
    def test_vectorized_matches_scalar(self, events):
        function = TupleHashFunction(10, seed=11)
        pcs = np.array([e[0] for e in events], dtype=np.uint64)
        values = np.array([e[1] for e in events], dtype=np.uint64)
        vectorized = function.index_array(pcs, values).tolist()
        assert vectorized == [function(e) for e in events]


class TestHashFunctionFamily:
    def test_members_are_pairwise_independent_ish(self):
        family = HashFunctionFamily(index_bits=8, seed=42)
        first, second = family.take(2)
        events = [(i * 8, i) for i in range(1000)]
        collisions = sum(1 for e in events if first(e) == second(e))
        # Two independent 8-bit functions agree ~1/256 of the time.
        assert collisions < 1000 * (4 / 256)

    def test_reproducible(self):
        one = HashFunctionFamily(9, seed=5).take(3)
        two = HashFunctionFamily(9, seed=5).take(3)
        event = (0xDEAD, 0xBEEF)
        assert [f(event) for f in one] == [f(event) for f in two]

    def test_grows_lazily(self):
        family = HashFunctionFamily(9, seed=5)
        assert family[4].index_bits == 9
        assert len(family.take(5)) == 5

    def test_rejects_negative_index(self):
        with pytest.raises(IndexError):
            HashFunctionFamily(9)[(-1)]
