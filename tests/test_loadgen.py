"""Tests for the service load harness (repro.loadgen).

The expensive full-scale comparisons live in ``make bench-service``;
here every run is scaled down to a few tenants so the suite stays
fast, while still exercising the real embedded server down both data
planes, the digest machinery, and slow-reader shedding end to end.
"""

import dataclasses

import pytest

from repro.loadgen import (
    HEADLINE_STREAMS,
    PROFILES,
    LoadProfile,
    compare_profiles,
    get_profile,
    list_profiles,
    profile_digest,
    run_profile,
)


class TestProfileRegistry:
    def test_shipped_profiles(self):
        names = list_profiles()
        for expected in ("steady", "bursty", "fan_in", "mixed",
                         "scenario_stress", "scenario_adversarial",
                         "scenario_heavy_hitters"):
            assert expected in names
        assert names == sorted(names)

    def test_headline_profiles_run_at_256_streams(self):
        assert HEADLINE_STREAMS == 256
        for name in ("steady", "bursty", "mixed"):
            assert get_profile(name).streams == HEADLINE_STREAMS

    def test_get_profile_unknown_name(self):
        with pytest.raises(ValueError, match="unknown load profile"):
            get_profile("nope")

    def test_registry_matches_list(self):
        assert sorted(PROFILES) == list_profiles()

    def test_scaled_caps_everything(self):
        profile = dataclasses.replace(get_profile("steady"),
                                      slow_readers=4)
        small = profile.scaled(streams_cap=8, events_cap=100)
        assert small.streams == 8
        assert small.events_per_stream == 100
        assert small.connections <= small.streams
        assert small.slow_readers <= small.streams
        assert small.total_events == 800

    def test_scaled_is_a_noop_when_under_caps(self):
        profile = get_profile("steady")
        assert profile.scaled(10_000, 1_000_000) == profile

    def test_validation_rejects_bad_shapes(self):
        good = get_profile("steady")
        with pytest.raises(ValueError, match="streams"):
            dataclasses.replace(good, streams=0)
        with pytest.raises(ValueError, match="connections"):
            dataclasses.replace(good, connections=good.streams + 1)
        with pytest.raises(ValueError, match="coalesce"):
            dataclasses.replace(good, coalesce=0)
        with pytest.raises(ValueError, match="preset"):
            dataclasses.replace(good, source="scenario", scenario="")


class TestProfileDigest:
    def test_ignores_framing_dependent_fields(self):
        base = {"t0": {"profiler": "conprof", "events": 100,
                       "intervals": [], "summary": {"x": 1},
                       "batches": 4, "pending_events": 7}}
        reframed = {"t0": dict(base["t0"], batches=1,
                               pending_events=0)}
        assert profile_digest(base) == profile_digest(reframed)

    def test_sensitive_to_content(self):
        base = {"t0": {"events": 100, "summary": {"x": 1}}}
        other = {"t0": {"events": 101, "summary": {"x": 1}}}
        assert profile_digest(base) != profile_digest(other)


class TestHarness:
    def test_compare_planes_small_steady(self):
        profile = get_profile("steady").scaled(streams_cap=8,
                                               events_cap=512)
        report = compare_profiles([profile])
        assert len(report["rows"]) == 2
        legacy, fast = report["rows"]
        assert legacy["data_plane"] == "legacy"
        assert fast["data_plane"] == "fast"
        for row in report["rows"]:
            assert row["events"] == profile.total_events
            assert row["failures"] == 0
            assert row["events_per_second"] > 0
            assert row["push_latency"]["samples"] > 0
        # The legacy leg frames one chunk per request; the fast leg
        # coalesces, so it must issue strictly fewer requests.
        assert fast["requests"] < legacy["requests"]
        (comparison,) = report["comparisons"]
        assert comparison["digest_match"] is True
        assert comparison["speedup"] > 0

    def test_scenario_profile_round_trip(self):
        profile = get_profile("scenario_heavy_hitters").scaled(
            streams_cap=4, events_cap=512)
        row = run_profile(profile)
        assert row["events"] == profile.total_events
        assert row["failures"] == 0
        assert row["digest"]

    def test_run_profile_is_deterministic(self):
        profile = get_profile("steady").scaled(streams_cap=4,
                                               events_cap=256)
        first = run_profile(profile)
        second = run_profile(profile)
        assert first["digest"] == second["digest"]

    def test_mixed_profile_collects_live_snapshots(self):
        profile = get_profile("mixed").scaled(streams_cap=4,
                                              events_cap=2048)
        row = run_profile(profile)
        # Final snapshots plus at least one mid-run snapshot each.
        assert (row["snapshot_latency"]["samples"]
                > profile.streams)


class TestSlowReaderShedding:
    def test_slow_readers_shed_without_stalling_tenants(self):
        profile = LoadProfile(
            name="shed_test",
            description="slow readers next to regular tenants",
            streams=6, events_per_stream=1024,
            batch_events=128, coalesce=4, connections=3,
            slow_readers=2)
        row = run_profile(profile, drain_timeout=0.5)
        # Every misbehaving client was shed by the drain timeout...
        assert row["slow_readers_shed"] == 2
        assert row["slow_readers_survived"] == 0
        assert row["server"]["slow_client_sheds"] >= 1
        # ...and no regular tenant was harmed: zero failed requests,
        # every event accounted for, and final snapshots stayed
        # responsive (the shed path must not stall the event loop).
        assert row["failures"] == 0
        assert row["failure_rate"] == 0.0
        assert row["events"] == profile.total_events
        assert row["snapshot_latency"]["p99_ms"] < 5000.0
