#!/usr/bin/env python
"""Find the loads behind most cache misses (the Section 2 motivation).

"In many cases a large percentage of data cache misses are caused by a
very small number of instructions."  This example builds that scenario:
a SimpleAlpha program mixes a cache-friendly scan with a thrashing
pointer chase, a tiny direct-mapped cache model classifies each load,
and the Multi-Hash profiler -- fed one tuple per *missing* load --
identifies the troublesome instructions a prefetcher would target.

Tuple choice (Section 3 leaves it to the use case): a prefetch engine
cares about *which instruction* misses, so the event name is
``<load PC, load PC>`` -- aggregating misses per instruction.
"""

from collections import Counter

from repro.core import IntervalSpec, best_multi_hash
from repro.profiling import Instrumenter, ProfilingSession
from repro.simulator import Machine, assemble
from repro.workloads import record

PROGRAM = """
; A friendly scan over one resident line, then a chase thrashing a
; single cache set with 128 distinct lines.
.dbase 0x100040              ; keep the scan line out of the chase's set
.data small 1, 2, 3, 4, 5, 6, 7, 8
main:
    ldi  r10, 400            ; outer iterations
outer:
    beqz r10, done
    ldi  r2, 0
    ldi  r3, 8
    ldi  r1, small
scan:                        ; 8 friendly loads per iteration
    cmplt r5, r2, r3
    beqz r5, chase
    add  r6, r1, r2
friendly_load:
    ld   r7, r6, 0
    addi r2, r2, 1
    br   scan
chase:                       ; 4 thrashing loads per iteration
    ldi  r4, 0x800000
    andi r8, r10, 31
    muli r8, r8, 4096
    add  r4, r4, r8
chase_load:
    ld   r9, r4, 0
    ld   r9, r4, 1024
    ld   r9, r4, 2048
    ld   r9, r4, 3072
    addi r10, r10, -1
    br   outer
done:
    halt
"""


class DirectMappedCache:
    """A tiny direct-mapped data cache (64 lines of 8 words)."""

    def __init__(self, lines: int = 64, words_per_line: int = 8) -> None:
        self.lines = lines
        self.words_per_line = words_per_line
        self.tags = [None] * lines
        self.misses = 0
        self.accesses = 0

    def access(self, address: int) -> bool:
        """Access one word; returns True on a miss."""
        self.accesses += 1
        line_number = address // self.words_per_line
        slot = line_number % self.lines
        if self.tags[slot] != line_number:
            self.tags[slot] = line_number
            self.misses += 1
            return True
        return False


def main() -> None:
    machine = Machine(assemble(PROGRAM))
    cache = DirectMappedCache()
    miss_tuples = []
    true_miss_pcs = Counter()

    def on_load(event):
        if cache.access(event.address):
            miss_tuples.append((event.pc, event.pc))
            true_miss_pcs[event.pc] += 1

    instrumenter = Instrumenter(machine)
    instrumenter.on_load(on_load)
    machine.run()
    instrumenter.detach()

    miss_rate = cache.misses / cache.accesses
    print(f"{cache.accesses} loads, {cache.misses} misses "
          f"({100 * miss_rate:.1f}% miss rate)")

    spec = IntervalSpec(length=400, threshold=0.02)
    config = best_multi_hash(spec, total_entries=512)
    result = ProfilingSession(config, keep_profiles=True).run(
        record(miss_tuples))
    profile = result.single().profiles[0]

    chase_pc = machine.program.address_of("chase_load")
    friendly_pc = machine.program.address_of("friendly_load")
    print("\nmiss-dominating load PCs found by the hardware profiler:")
    for (pc, _), count in sorted(profile.candidates.items(),
                                 key=lambda kv: -kv[1]):
        marker = ""
        if chase_pc <= pc < chase_pc + 16:
            marker = "  <- the thrashing chase"
        elif pc == friendly_pc:
            marker = "  <- the friendly scan (should be absent)"
        print(f"  pc={pc:#07x} profiled misses={count}{marker}")

    chase_share = sum(count for (pc, _), count in
                      profile.candidates.items()
                      if chase_pc <= pc < chase_pc + 16) \
        / max(1, sum(profile.candidates.values()))
    print(f"\nshare of profiled misses attributed to the chase loads: "
          f"{100 * chase_share:.0f}%")
    assert friendly_pc not in {pc for pc, _ in profile.candidates}


if __name__ == "__main__":
    main()
