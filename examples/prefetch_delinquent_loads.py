#!/usr/bin/env python
"""Profile-guided prefetching: close the Section 2 loop.

1. Run a streaming program; a set-associative cache classifies loads,
   and misses feed the Multi-Hash profiler named per instruction
   (``<load PC, load PC>`` -- streaming loads miss on ever-new lines,
   so the PC is the recurring identity) -- pure hardware, no software
   in the loop.
2. The captured profile ranks the delinquent loads.
3. A stride prefetcher is armed for exactly those PCs and the program
   re-runs: the profiler's output directly buys a miss-rate reduction.
"""

from repro.clients import delinquent_loads, run_with_prefetcher
from repro.core import IntervalSpec, best_multi_hash
from repro.profiling import ProfilingSession
from repro.simulator import (CacheConfig, Machine, SetAssociativeCache,
                             assemble)
from repro.workloads import record

PROGRAM = """
; two streaming walks with different strides plus a resident scan
.data small 1, 2, 3, 4, 5, 6, 7, 8
main:
    ldi  r10, 200
outer:
    beqz r10, done
    ldi  r1, small
    ldi  r2, 0
    ldi  r3, 8
scan:
    cmplt r5, r2, r3
    beqz r5, streamA
    add  r6, r1, r2
resident_load:
    ld   r7, r6, 0
    addi r2, r2, 1
    br   scan
streamA:
    muli r4, r10, 64
    addi r4, r4, 0x10000
streamA_load:
    ld   r9, r4, 0          ; stride-64 stream
streamB:
    muli r4, r10, 24
    addi r4, r4, 0x400000
streamB_load:
    ld   r9, r4, 0          ; stride-24 stream
    addi r10, r10, -1
    br   outer
done:
    halt
"""


def main() -> None:
    program = assemble(PROGRAM)
    cache = SetAssociativeCache(CacheConfig(sets=16, ways=2,
                                            line_words=8))
    miss_tuples = []

    machine = Machine(program)

    def classify(pc, address, value):
        if cache.access(address):
            miss_tuples.append((pc, pc))

    machine.load_hooks.append(classify)
    machine.run()
    print(f"baseline: {cache.stats.accesses} loads, "
          f"{cache.stats.misses} misses "
          f"({100 * cache.stats.miss_rate:.1f}%)")

    spec = IntervalSpec(length=200, threshold=0.02)
    result = ProfilingSession(
        best_multi_hash(spec, total_entries=512),
        keep_profiles=True).run(record(miss_tuples))
    profile = result.single().profiles[0]
    ranked = delinquent_loads(profile.candidates, top=4)

    symbols = program.symbols
    names = {symbols[name]: name for name in
             ("streamA_load", "streamB_load", "resident_load")}
    print("\ndelinquent loads from the hardware profile:")
    for pc, weight in ranked:
        print(f"  pc={pc:#07x} ({names.get(pc, '?'):14s}) "
              f"profiled miss weight={weight}")

    outcome = run_with_prefetcher(
        program, profile.candidates,
        cache_factory=lambda: SetAssociativeCache(
            CacheConfig(sets=16, ways=2, line_words=8)),
        top=4, degree=2)
    print(f"\nwith profile-guided stride prefetching:")
    print(f"  misses {outcome.baseline_misses} -> "
          f"{outcome.prefetched_misses} "
          f"({100 * outcome.miss_reduction:.0f}% reduction)")
    print(f"  {outcome.issued} prefetches issued, "
          f"{100 * outcome.prefetch_accuracy:.0f}% useful")


if __name__ == "__main__":
    main()
