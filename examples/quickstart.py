#!/usr/bin/env python
"""Quickstart: profile a workload with the Multi-Hash architecture.

Builds the paper's best configuration (4 hash tables, conservative
update, no immediate reset, retaining) at the 10 K-event / 1 % operating
point, runs the calibrated ``gcc`` value-profiling stream through it
alongside a perfect profiler, and prints the captured candidates and
the resulting error breakdown.
"""

from repro import SHORT_INTERVAL, best_multi_hash
from repro.profiling import ProfilingSession
from repro.workloads import benchmark_generator


def main() -> None:
    config = best_multi_hash(SHORT_INTERVAL)
    print(f"profiler     : {config.label}")
    print(f"hash tables  : {config.num_tables} x "
          f"{config.entries_per_table} counters")
    print(f"accumulator  : {config.accumulator_capacity} entries")
    print(f"interval     : {config.interval.length:,} events @ "
          f"{100 * config.interval.threshold:g}% threshold")
    print()

    session = ProfilingSession(config, keep_profiles=True)
    result = session.run(benchmark_generator("gcc"), max_intervals=20)

    summary = result.summary
    print(f"profiled 20 intervals of the 'gcc' value stream")
    print(f"net error    : {summary.percent():.3f}%")
    for category, share in summary.breakdown_percent().items():
        print(f"  {category:16s}: {share:.3f}%")

    last = result.single().profiles[-1]
    top = sorted(last.candidates.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop candidates of the final interval (pc, value) -> count:")
    for (pc, value), count in top:
        print(f"  ({pc:#x}, {value:#x}) -> {count}")


if __name__ == "__main__":
    main()
