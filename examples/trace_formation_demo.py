#!/usr/bin/env python
"""Hot-trace formation from a hardware edge profile (Section 2).

A dispatch-style program runs; the edge profiler captures its frequent
``<branch PC, target PC>`` edges in hardware; the trace-formation
client grows hot traces from the captured profile and we measure how
much of the program's actual control flow the formed traces would let
a trace cache fetch.
"""

from repro.clients import evaluate_traces, form_traces
from repro.core import IntervalSpec, best_multi_hash
from repro.core.tuples import EventKind
from repro.profiling import ProfilingSession, trace_events
from repro.simulator import dispatch_program


def main() -> None:
    program = dispatch_program(num_handlers=8, code_length=192,
                               iterations=40, hot_mass=0.85, seed=14)
    edge_trace = trace_events(program, EventKind.EDGE)
    print(f"executed {len(edge_trace)} control transfers")

    spec = IntervalSpec(length=8_000, threshold=0.005)
    result = ProfilingSession(
        best_multi_hash(spec, total_entries=1024),
        keep_profiles=True).run(edge_trace)
    profile = result.single().profiles[0]
    print(f"profiler captured {len(profile.candidates)} hot edges "
          f"(error vs perfect: {result.summary.percent():.2f}%)")

    plan = form_traces(profile.candidates, max_traces=6,
                       max_trace_edges=6)
    print(f"\nformed {len(plan.traces)} traces covering "
          f"{100 * plan.coverage:.0f}% of profiled edge weight:")
    for position, trace in enumerate(plan.traces):
        path = " -> ".join(f"{pc:#x}" for pc, _ in trace.edges)
        path += f" -> {trace.edges[-1][1]:#x}"
        print(f"  T{position}: weight={trace.weight:5d}  {path}")

    outcome = evaluate_traces(plan, edge_trace.slice(0, spec.length))
    print(f"\nfetch coverage on the executed stream: "
          f"{100 * outcome.fetch_coverage:.0f}% of transfers fall "
          f"inside a formed trace")


if __name__ == "__main__":
    main()
