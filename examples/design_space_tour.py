#!/usr/bin/env python
"""Tour the profiler design space on one workload.

Reproduces the paper's design-space narrative on the stressed ``go``
stream: single hash with and without retaining/resetting (Figure 7),
then the multi-hash family showing the conservative-update win and the
table-count sweet spot (Figures 10-12), all at identical hardware cost
(2 K counters; the area model prints the budget).
"""

from repro.core import IntervalSpec, ProfilerConfig, best_single_hash
from repro.core.area import profiler_area
from repro.profiling import ProfilingSession
from repro.workloads import benchmark_generator

SPEC = IntervalSpec(length=100_000, threshold=0.001)
INTERVALS = 5


def run_family(title, configs):
    print(f"\n== {title}")
    session = ProfilingSession([config for _, config in configs])
    outcome = session.run(benchmark_generator("go"),
                          max_intervals=INTERVALS)
    for (label, config), result in zip(configs,
                                       outcome.results.values()):
        breakdown = result.summary.breakdown_percent()
        area = profiler_area(config).total_kilobytes
        print(f"  {label:12s} total={result.summary.percent():7.2f}%  "
              f"FP={breakdown['false_positive']:6.2f}  "
              f"FN={breakdown['false_negative']:6.2f}  "
              f"[{area:.1f} KB]")


def main() -> None:
    print(f"workload: 'go' value stream, {INTERVALS} intervals of "
          f"{SPEC.length:,} events @ {100 * SPEC.threshold:g}%")

    run_family("single hash: retaining (P) x resetting (R)", [
        (f"P{int(p)}-R{int(r)}",
         ProfilerConfig(interval=SPEC, retaining=p, resetting=r))
        for p in (False, True) for r in (False, True)])

    run_family("multi-hash: conservative update at 4 tables", [
        ("C0-R0", ProfilerConfig(interval=SPEC, num_tables=4)),
        ("C0-R1", ProfilerConfig(interval=SPEC, num_tables=4,
                                 resetting=True)),
        ("C1-R0", ProfilerConfig(interval=SPEC, num_tables=4,
                                 conservative_update=True)),
        ("C1-R1", ProfilerConfig(interval=SPEC, num_tables=4,
                                 conservative_update=True,
                                 resetting=True)),
    ])

    run_family("table count at fixed 2K-counter budget (C1-R0)", [
        ("BSH", best_single_hash(SPEC)),
        *((f"MH{n}", ProfilerConfig(interval=SPEC, num_tables=n,
                                    conservative_update=True))
          for n in (2, 4, 8, 16)),
    ])

    print("\nConclusions to look for (Sections 5.6.2, 6.3, 6.4):")
    print("  - retaining and resetting each cut single-hash error;")
    print("  - conservative update is the decisive multi-hash win;")
    print("  - ~4 tables is the sweet spot; 16 tiny tables collapse.")


if __name__ == "__main__":
    main()
