#!/usr/bin/env python
"""Value specialization from a hardware value profile (Section 2).

Calder et al. profiled values offline with ATOM; here the Multi-Hash
profiler captures the same information online and in hardware.  A scan
loop reads an array dominated by a few values; the captured profile
plans guarded specializations, and the plan is evaluated on the *next*
interval of execution (profile in one interval, optimize the next --
the deployment the paper proposes in Section 5.6.1).
"""

from repro.clients import evaluate_plan, plan_specializations
from repro.core import IntervalSpec, best_multi_hash
from repro.core.tuples import EventKind
from repro.profiling import ProfilingSession, trace_events
from repro.simulator import value_locality_program


def main() -> None:
    program = value_locality_program(array_size=400, iterations=6,
                                     hot_values=(42, 7, 99),
                                     hot_mass=0.8, seed=15)
    trace = trace_events(program, EventKind.VALUE)
    spec = IntervalSpec(length=800, threshold=0.02)

    result = ProfilingSession(
        best_multi_hash(spec, total_entries=512),
        keep_profiles=True).run(trace)
    first_interval = result.single().profiles[0]
    print(f"interval 0 profile: {len(first_interval.candidates)} "
          f"candidate <pc, value> tuples")

    plan = plan_specializations(first_interval.candidates,
                                min_share=0.35)
    print(f"\nplanned specializations (>=35% share of their load):")
    for item in plan.specializations:
        print(f"  pc={item.pc:#07x} value={item.value:<6d} "
              f"share={100 * item.profiled_share:.0f}% "
              f"(profiled {item.profiled_count}x)")

    next_interval = list(trace.slice(spec.length,
                                     2 * spec.length).events())
    outcome = evaluate_plan(plan, next_interval,
                            load_latency=3.0, guard_cost=1.0)
    print(f"\nevaluated on the next interval:")
    print(f"  guarded loads : {outcome.guarded_loads}")
    print(f"  fast-path hits: {outcome.fast_hits} "
          f"({100 * outcome.hit_rate:.0f}%)")
    print(f"  cycles saved  : {outcome.cycles_saved:.0f} "
          f"(latency 3, guard 1)")


if __name__ == "__main__":
    main()
