#!/usr/bin/env python
"""Online interval-length adaptation (Section 5.6.1, realized).

The paper notes that "different interval lengths suit different
programs" and suggests adapting the length at run time.  Here the
online controller watches the candidate churn between intervals of the
bursty ``m88ksim`` stream: short intervals see its candidates flicker
(high churn), so the controller grows the interval until the burst
structure averages out — then holds.
"""

from repro.core import IntervalSpec, ProfilerConfig
from repro.metrics import stability
from repro.profiling.online_adaptive import (AdaptivePolicy,
                                             OnlineAdaptiveProfiler)
from repro.workloads import benchmark_generator


def main() -> None:
    config = ProfilerConfig(interval=IntervalSpec(10_000, 0.01),
                            num_tables=4, conservative_update=True)
    policy = AdaptivePolicy(min_length=10_000, max_length=640_000,
                            grow_threshold=25.0, shrink_threshold=5.0,
                            scale_factor=4)
    adaptive = OnlineAdaptiveProfiler(config, policy)

    generator = benchmark_generator("m88ksim")
    profiles = adaptive.run(generator.events(4_000_000))

    print(f"profiled {len(profiles)} intervals over 4M events")
    print(f"interval length: started {config.interval.length:,}, "
          f"ended {adaptive.current_length:,}")
    print("\ncontroller decisions:")
    for event in adaptive.adaptations:
        direction = ("grew" if event.new_length > event.old_length
                     else "shrank")
        print(f"  after interval {event.at_interval}: churn "
              f"{event.churn:.0f}% -> {direction} "
              f"{event.old_length:,} -> {event.new_length:,}")

    # Candidate stability at the start (short intervals) versus the
    # final stretch (adapted intervals): the fraction of seen
    # candidates that persist should rise once bursts are averaged out.
    window = max(4, min(10, len(profiles) // 3))
    early = stability(profiles[:window], min_persistence=0.8)
    late = stability(profiles[-window:], min_persistence=0.8)
    print(f"\ncandidates persisting in >=80% of a {window}-interval "
          f"window:")
    print(f"  first window (short intervals): {len(early.stable)} of "
          f"{len(early.persistence)} seen "
          f"({100 * len(early.stable) / max(1, len(early.persistence)):.0f}%)")
    print(f"  last window (adapted intervals): {len(late.stable)} of "
          f"{len(late.persistence)} seen "
          f"({100 * len(late.stable) / max(1, len(late.persistence)):.0f}%)")


if __name__ == "__main__":
    main()
